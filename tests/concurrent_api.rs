//! Lock-free serving under concurrency: a shared [`ProbaseApi`] hammered
//! from 8 threads must return exactly the single-threaded answers.
//!
//! The frozen snapshot has no interior mutability (the old serving path
//! memoized ancestors behind a mutex), so the only thing threads share is
//! immutable data — this test locks that claim in, via both
//! `std::thread::scope` and the shared [`cn_probase::runtime::Runtime`]
//! worker pool every pipeline stage runs on.

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::taxonomy::{IsAMeta, Source, TaxonomyStore};
use cn_probase::{
    FrozenTaxonomy, ListOptions, ProbaseApi, Query, QueryResponse, Response, TaxonomyService,
};
use std::sync::atomic::{AtomicBool, Ordering};

const THREADS: usize = 8;

struct Golden {
    api: ProbaseApi,
    mentions: Vec<String>,
    concepts: Vec<String>,
    /// Per-mention single-threaded answers: senses and transitive concepts.
    men2ent: Vec<Vec<String>>,
    get_concept: Vec<Vec<String>>,
    /// Per-concept single-threaded `getEntity` answers.
    get_entity: Vec<Vec<String>>,
}

fn build_golden() -> Golden {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(9)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let api = ProbaseApi::from_frozen(outcome.freeze());
    let mentions: Vec<String> = corpus.pages.iter().map(|p| p.name.clone()).collect();
    let concepts: Vec<String> = api
        .frozen()
        .concept_ids()
        .map(|c| api.frozen().concept_name(c).to_string())
        .collect();
    let men2ent = mentions
        .iter()
        .map(|m| api.men2ent(m).into_iter().map(|s| s.key).collect())
        .collect();
    let get_concept = mentions
        .iter()
        .map(|m| api.get_concept_by_mention(m, true))
        .collect();
    let get_entity = concepts
        .iter()
        .map(|c| api.get_entity(c, true, 50))
        .collect();
    Golden {
        api,
        mentions,
        concepts,
        men2ent,
        get_concept,
        get_entity,
    }
}

/// One worker pass over every query, asserting against the golden answers.
/// Offsetting the start index per thread makes the threads interleave
/// different queries instead of marching in lockstep.
fn hammer(g: &Golden, offset: usize) {
    let n = g.mentions.len();
    for i in 0..n {
        let i = (i + offset) % n;
        let m = &g.mentions[i];
        let senses: Vec<String> = g.api.men2ent(m).into_iter().map(|s| s.key).collect();
        assert_eq!(senses, g.men2ent[i], "men2ent({m}) diverged across threads");
        assert_eq!(
            g.api.get_concept_by_mention(m, true),
            g.get_concept[i],
            "getConcept({m}) diverged across threads"
        );
    }
    let nc = g.concepts.len();
    for j in 0..nc {
        let j = (j + offset) % nc;
        assert_eq!(
            g.api.get_entity(&g.concepts[j], true, 50),
            g.get_entity[j],
            "getEntity({}) diverged across threads",
            g.concepts[j]
        );
    }
}

#[test]
fn eight_std_threads_match_single_threaded_answers() {
    let g = build_golden();
    assert!(g.mentions.len() > 100 && g.concepts.len() > 20);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let g = &g;
            s.spawn(move || hammer(g, t * 37));
        }
    });
}

#[test]
fn runtime_workers_match_single_threaded_answers() {
    let g = build_golden();
    let rt = cn_probase::runtime::Runtime::new(THREADS);
    // Enough tasks that every worker runs several hammer passes.
    rt.par_tasks(4 * THREADS, |t| hammer(&g, t * 53));
}

/// Snapshot-boot concurrency: persist the frozen taxonomy (format v2),
/// boot a fresh `ProbaseApi` from the file, and hammer it from 8 threads
/// against the answers of the directly-frozen single-threaded API. The
/// disk round-trip must be invisible to concurrent Table II traffic.
#[test]
fn snapshot_booted_api_matches_across_threads() {
    let g = build_golden();
    let dir = std::env::temp_dir().join("cnp_concurrent_api_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("boot.cnpb");
    g.api.frozen().save_to_file(&path).expect("save snapshot");
    let booted = ProbaseApi::from_snapshot_file(&path).expect("boot from snapshot");
    std::fs::remove_file(&path).ok();
    // Same golden answers, snapshot-booted service.
    let g = Golden { api: booted, ..g };
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let g = &g;
            s.spawn(move || hammer(g, t * 41));
        }
    });
}

// ----- hot-swap under load (ISSUE 5 satellite) -----------------------------

/// World A: 刘德华 sings, 张学友 is unknown.
fn swap_store_a() -> TaxonomyStore {
    let mut s = TaxonomyStore::new();
    let liu = s.add_entity("刘德华", None);
    let singer = s.add_concept("歌手");
    let person = s.add_concept("人物");
    s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
    s
}

/// World B: 张学友 exists and out-ranks 刘德华 in 歌手's hyponym row, and
/// 歌手 gains a second ancestor — every probe below answers differently
/// than in world A.
fn swap_store_b() -> TaxonomyStore {
    let mut s = swap_store_a();
    let zhang = s.add_entity("张学友", None);
    let singer = s.find_concept("歌手").unwrap();
    s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.95));
    let artist = s.add_concept("艺人");
    s.add_concept_is_a(singer, artist, IsAMeta::new(Source::SubConcept, 0.8));
    s
}

/// The per-generation golden answers of the probe queries.
#[derive(PartialEq, Debug)]
struct SwapGolden {
    men2ent_zhang: usize,
    get_entity_singer: Vec<String>,
    get_concept_liu: Vec<String>,
}

fn swap_golden(frozen: &FrozenTaxonomy) -> SwapGolden {
    let api = ProbaseApi::from_frozen(frozen.clone());
    SwapGolden {
        men2ent_zhang: api.men2ent("张学友").len(),
        get_entity_singer: api.get_entity("歌手", true, usize::MAX),
        get_concept_liu: api.get_concept_by_mention("刘德华", true),
    }
}

fn swap_probes() -> Vec<Query> {
    vec![
        Query::men2ent("张学友"),
        Query::GetEntity {
            concept: "歌手".to_string(),
            options: ListOptions::transitive(),
        },
        Query::GetConceptByMention {
            mention: "刘德华".to_string(),
            options: ListOptions::transitive(),
        },
    ]
}

/// Asserts one response is internally consistent with exactly one
/// generation: the payload must equal the golden answer of the world its
/// generation stamp names (generation parity: odd = A, even = B) — and
/// since every probe differs between the worlds, a torn read (stamp from
/// one generation, payload from the other) cannot pass.
fn assert_swap_consistent(i: usize, r: &QueryResponse, a: &SwapGolden, b: &SwapGolden) {
    let want = if r.generation % 2 == 1 { a } else { b };
    match (i, &r.result) {
        (0, Ok(Response::Senses(senses))) => {
            assert_eq!(senses.len(), want.men2ent_zhang, "gen {}", r.generation)
        }
        (0, Err(_)) => assert_eq!(0, want.men2ent_zhang, "gen {}", r.generation),
        (1, Ok(Response::Entities(page))) => {
            let keys: Vec<String> = page.items.iter().map(|h| h.key.clone()).collect();
            assert_eq!(keys, want.get_entity_singer, "gen {}", r.generation);
        }
        (2, Ok(Response::Concepts(page))) => {
            let names: Vec<String> = page.items.iter().map(|h| h.name.clone()).collect();
            assert_eq!(names, want.get_concept_liu, "gen {}", r.generation);
        }
        other => panic!("probe {i}: unexpected response {other:?}"),
    }
}

/// 8 reader threads hammer the service (singles and batches) while a
/// writer thread swaps between two snapshots. Every response must be
/// internally consistent with exactly one generation, and a batch must
/// answer entirely from one pinned generation.
#[test]
fn hot_swap_under_load_never_tears_a_generation() {
    const SWAPS: u64 = 200;
    let frozen_a = FrozenTaxonomy::freeze(&swap_store_a());
    let frozen_b = FrozenTaxonomy::freeze(&swap_store_b());
    let golden_a = swap_golden(&frozen_a);
    let golden_b = swap_golden(&frozen_b);
    assert_ne!(
        golden_a, golden_b,
        "the two worlds must answer every probe differently"
    );
    let probes = swap_probes();
    let service =
        TaxonomyService::with_runtime(frozen_a.clone(), cn_probase::runtime::Runtime::new(2));
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Writer: generation g serves A when g is odd, B when even.
        s.spawn(|| {
            for i in 0..SWAPS {
                let next = if i % 2 == 0 { &frozen_b } else { &frozen_a };
                let gen = service.swap(next.clone());
                assert_eq!(gen, i + 2, "generations are sequential");
            }
            stop.store(true, Ordering::Release);
        });
        for t in 0..THREADS {
            let (service, probes, stop) = (&service, &probes, &stop);
            let (golden_a, golden_b) = (&golden_a, &golden_b);
            s.spawn(move || {
                let mut rounds = 0usize;
                while !stop.load(Ordering::Acquire) || rounds < 20 {
                    // Singles: each pins its own generation.
                    for (i, q) in probes.iter().enumerate() {
                        let r = service.execute(q);
                        assert!(r.generation >= 1 && r.generation <= SWAPS + 1);
                        assert_swap_consistent(i, &r, golden_a, golden_b);
                    }
                    // A batch must pin exactly one generation for all its
                    // queries, interleaved probe order included.
                    let batch: Vec<Query> = probes
                        .iter()
                        .cycle()
                        .take(probes.len() * (2 + t % 3))
                        .cloned()
                        .collect();
                    let responses = service.execute_batch(&batch);
                    let gen = responses[0].generation;
                    for (j, r) in responses.iter().enumerate() {
                        assert_eq!(r.generation, gen, "batch answered from two generations");
                        assert_swap_consistent(j % probes.len(), r, golden_a, golden_b);
                    }
                    rounds += 1;
                }
            });
        }
    });
    assert_eq!(service.generation(), SWAPS + 1);
}
