//! Lock-free serving under concurrency: a shared [`ProbaseApi`] hammered
//! from 8 threads must return exactly the single-threaded answers.
//!
//! The frozen snapshot has no interior mutability (the old serving path
//! memoized ancestors behind a mutex), so the only thing threads share is
//! immutable data — this test locks that claim in, via both
//! `std::thread::scope` and the shared [`cn_probase::runtime::Runtime`]
//! worker pool every pipeline stage runs on.

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::ProbaseApi;

const THREADS: usize = 8;

struct Golden {
    api: ProbaseApi,
    mentions: Vec<String>,
    concepts: Vec<String>,
    /// Per-mention single-threaded answers: senses and transitive concepts.
    men2ent: Vec<Vec<String>>,
    get_concept: Vec<Vec<String>>,
    /// Per-concept single-threaded `getEntity` answers.
    get_entity: Vec<Vec<String>>,
}

fn build_golden() -> Golden {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(9)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let api = ProbaseApi::from_frozen(outcome.freeze());
    let mentions: Vec<String> = corpus.pages.iter().map(|p| p.name.clone()).collect();
    let concepts: Vec<String> = api
        .frozen()
        .concept_ids()
        .map(|c| api.frozen().concept_name(c).to_string())
        .collect();
    let men2ent = mentions
        .iter()
        .map(|m| api.men2ent(m).into_iter().map(|s| s.key).collect())
        .collect();
    let get_concept = mentions
        .iter()
        .map(|m| api.get_concept_by_mention(m, true))
        .collect();
    let get_entity = concepts
        .iter()
        .map(|c| api.get_entity(c, true, 50))
        .collect();
    Golden {
        api,
        mentions,
        concepts,
        men2ent,
        get_concept,
        get_entity,
    }
}

/// One worker pass over every query, asserting against the golden answers.
/// Offsetting the start index per thread makes the threads interleave
/// different queries instead of marching in lockstep.
fn hammer(g: &Golden, offset: usize) {
    let n = g.mentions.len();
    for i in 0..n {
        let i = (i + offset) % n;
        let m = &g.mentions[i];
        let senses: Vec<String> = g.api.men2ent(m).into_iter().map(|s| s.key).collect();
        assert_eq!(senses, g.men2ent[i], "men2ent({m}) diverged across threads");
        assert_eq!(
            g.api.get_concept_by_mention(m, true),
            g.get_concept[i],
            "getConcept({m}) diverged across threads"
        );
    }
    let nc = g.concepts.len();
    for j in 0..nc {
        let j = (j + offset) % nc;
        assert_eq!(
            g.api.get_entity(&g.concepts[j], true, 50),
            g.get_entity[j],
            "getEntity({}) diverged across threads",
            g.concepts[j]
        );
    }
}

#[test]
fn eight_std_threads_match_single_threaded_answers() {
    let g = build_golden();
    assert!(g.mentions.len() > 100 && g.concepts.len() > 20);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let g = &g;
            s.spawn(move || hammer(g, t * 37));
        }
    });
}

#[test]
fn runtime_workers_match_single_threaded_answers() {
    let g = build_golden();
    let rt = cn_probase::runtime::Runtime::new(THREADS);
    // Enough tasks that every worker runs several hammer passes.
    rt.par_tasks(4 * THREADS, |t| hammer(&g, t * 53));
}

/// Snapshot-boot concurrency: persist the frozen taxonomy (format v2),
/// boot a fresh `ProbaseApi` from the file, and hammer it from 8 threads
/// against the answers of the directly-frozen single-threaded API. The
/// disk round-trip must be invisible to concurrent Table II traffic.
#[test]
fn snapshot_booted_api_matches_across_threads() {
    let g = build_golden();
    let dir = std::env::temp_dir().join("cnp_concurrent_api_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("boot.cnpb");
    g.api.frozen().save_to_file(&path).expect("save snapshot");
    let booted = ProbaseApi::from_snapshot_file(&path).expect("boot from snapshot");
    std::fs::remove_file(&path).ok();
    // Same golden answers, snapshot-booted service.
    let g = Golden { api: booted, ..g };
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let g = &g;
            s.spawn(move || hammer(g, t * 41));
        }
    });
}
