//! Workspace-level integration test for the `cn_probase` facade: every
//! documented re-export must resolve, and the README/lib.rs quickstart must
//! work exactly as written.

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};

/// Each facade module path resolves to the member crate's public API.
/// A type/function per module keeps this a compile-time check with a
/// runtime smoke assertion where construction is cheap.
#[test]
fn reexported_modules_resolve() {
    // text → cnp_text
    let dict = cn_probase::text::Dictionary::base();
    let seg = cn_probase::text::Segmenter::new(dict);
    assert!(!seg.words("中国演员").is_empty());

    // nn → cnp_nn
    let vocab = cn_probase::nn::Vocab::new();
    assert!(vocab.len() >= 4, "PAD/BOS/EOS/UNK reserved entries");

    // encyclopedia → cnp_encyclopedia
    let config = cn_probase::encyclopedia::CorpusConfig::tiny(1);
    let _generator = cn_probase::encyclopedia::CorpusGenerator::new(config);

    // taxonomy → cnp_taxonomy
    let store = cn_probase::taxonomy::TaxonomyStore::new();
    assert_eq!(store.num_is_a(), 0);
    // The submodules integration code depends on must stay public.
    let empty = cn_probase::taxonomy::persist::encode(&store);
    assert!(cn_probase::taxonomy::persist::decode(&empty).is_ok());
    // The serving types are re-exported at the crate root.
    let frozen: cn_probase::FrozenTaxonomy = cn_probase::taxonomy::FrozenTaxonomy::freeze(&store);
    assert_eq!(frozen.num_is_a(), 0);
    let api = cn_probase::ProbaseApi::from_frozen(frozen.clone());
    assert!(api.men2ent("刘德华").is_empty());

    // serve → cnp_serve: the Serving API v1 protocol at the crate root.
    let service: cn_probase::TaxonomyService = cn_probase::serve::TaxonomyService::new(frozen);
    assert_eq!(service.generation(), 1);
    let response: cn_probase::QueryResponse =
        service.execute(&cn_probase::Query::men2ent("刘德华"));
    assert!(matches!(
        response.result,
        Err(cn_probase::QueryError::UnknownMention(_))
    ));
    let options =
        cn_probase::ListOptions::transitive().with_page(cn_probase::PageRequest::first(5));
    let _query = cn_probase::Query::GetEntity {
        concept: "人物".to_string(),
        options,
    };
    assert!(matches!(
        cn_probase::Cursor::decode("not a cursor"),
        Err(cn_probase::serve::CursorError::Malformed)
    ));
    let _response_ty: Option<cn_probase::Response> = None;

    // tag → cnp_tag: the tagging workload at the crate root.
    let tagger: cn_probase::Tagger<cn_probase::FrozenTaxonomy> =
        cn_probase::tag::Tagger::new(std::sync::Arc::new(cn_probase::FrozenTaxonomy::freeze(
            &cn_probase::taxonomy::TaxonomyStore::new(),
        )));
    let output: cn_probase::TagOutput = tagger.tag("刘德华", &cn_probase::TagOptions::default());
    assert!(
        output.concepts.is_empty(),
        "an empty taxonomy yields no concept mass (the NER gate may still surface spans)"
    );

    // pipeline → cnp_core
    let _config = cn_probase::pipeline::PipelineConfig::fast();

    // eval → cnp_eval
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(1)).generate();
    let questions = cn_probase::eval::generate_questions(&corpus, 5, 9);
    assert_eq!(questions.len(), 5);
}

/// The quickstart from the facade's crate docs, verbatim.
#[test]
fn quickstart_builds_a_nonempty_taxonomy() {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(7)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    assert!(outcome.taxonomy.num_is_a() > 0);
}
