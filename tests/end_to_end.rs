//! End-to-end integration tests spanning all crates: corpus → pipeline →
//! taxonomy → APIs → evaluation, with the paper's headline claims asserted
//! as *shape* invariants (not point values).

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::eval;
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::taxonomy::{closure, persist, Source};
use cn_probase::ProbaseApi;

fn small_outcome() -> (
    cn_probase::encyclopedia::Corpus,
    cn_probase::pipeline::PipelineOutcome,
) {
    let corpus = CorpusGenerator::new(CorpusConfig::small(2025)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    (corpus, outcome)
}

#[test]
fn headline_precision_is_high() {
    let (corpus, outcome) = small_outcome();
    let est = eval::estimate(&outcome.candidates, &corpus.gold, 2_000, 1);
    assert!(
        est.precision() > 0.90,
        "final precision {:.3} below the paper's ballpark (95%)",
        est.precision()
    );
    assert!(est.sampled >= 1_000, "sample too small: {}", est.sampled);
}

#[test]
fn bracket_and_tag_are_the_most_precise_sources() {
    let (corpus, outcome) = small_outcome();
    let by_source = eval::per_source(&outcome.candidates, &corpus.gold);
    let get = |s: Source| {
        by_source
            .iter()
            .find(|(src, _)| *src == s)
            .map(|(_, e)| e.precision())
            .unwrap()
    };
    // Paper: bracket 96.2%, tag 97.4% — our verified sources must clear 90%.
    assert!(
        get(Source::Bracket) > 0.90,
        "bracket {:.3}",
        get(Source::Bracket)
    );
    assert!(get(Source::Tag) > 0.92, "tag {:.3}", get(Source::Tag));
    assert!(
        get(Source::Infobox) > 0.85,
        "infobox {:.3}",
        get(Source::Infobox)
    );
}

#[test]
fn taxonomy_is_a_dag_with_subconcept_relations() {
    let (_, outcome) = small_outcome();
    assert!(closure::is_dag(&outcome.taxonomy));
    assert!(
        outcome.taxonomy.num_concept_is_a() > 0,
        "no subconcept-concept relations were built"
    );
    assert!(outcome.taxonomy.num_entity_is_a() > outcome.taxonomy.num_concept_is_a());
}

#[test]
fn api_answers_are_consistent_with_the_store() {
    let (corpus, outcome) = small_outcome();
    let api = ProbaseApi::new(outcome.taxonomy);
    let mut checked = 0;
    for page in corpus.pages.iter().take(300) {
        for sense in api.men2ent(&page.name) {
            let direct = api.get_concept(sense.id, false);
            let transitive = api.get_concept(sense.id, true);
            assert!(transitive.len() >= direct.len());
            for concept in &direct {
                // Reverse direction: the entity must appear under the concept.
                let hyponyms = api.get_entity(concept, false, usize::MAX);
                assert!(
                    hyponyms.contains(&sense.key),
                    "{} missing from getEntity({concept})",
                    sense.key
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "too few edges checked: {checked}");
}

#[test]
fn snapshot_roundtrip_preserves_the_taxonomy() {
    let (_, outcome) = small_outcome();
    let bytes = persist::encode(&outcome.taxonomy);
    let loaded = persist::decode(&bytes).expect("decode");
    assert_eq!(outcome.taxonomy.num_entities(), loaded.num_entities());
    assert_eq!(outcome.taxonomy.num_concepts(), loaded.num_concepts());
    assert_eq!(outcome.taxonomy.num_is_a(), loaded.num_is_a());
    // Spot-check an entity's edges.
    if let Some(e) = outcome.taxonomy.entity_ids().next() {
        let orig: Vec<&str> = outcome
            .taxonomy
            .concepts_of(e)
            .iter()
            .map(|(c, _)| outcome.taxonomy.concept_name(*c))
            .collect();
        let re: Vec<&str> = loaded
            .concepts_of(e)
            .iter()
            .map(|(c, _)| loaded.concept_name(*c))
            .collect();
        assert_eq!(orig, re);
    }
}

#[test]
fn pipeline_is_deterministic_for_equal_seeds() {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(77)).generate();
    let a = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let b = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    assert_eq!(a.report.merged_candidates, b.report.merged_candidates);
    assert_eq!(a.report.final_candidates, b.report.final_candidates);
    assert_eq!(a.taxonomy.num_is_a(), b.taxonomy.num_is_a());
}

#[test]
fn verification_trades_little_coverage_for_precision() {
    let corpus = CorpusGenerator::new(CorpusConfig::small(2026)).generate();
    let verified = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let unverified = Pipeline::new(PipelineConfig::unverified()).run(&corpus);
    let p_v = eval::estimate(&verified.candidates, &corpus.gold, 2_000, 3).precision();
    let p_u = eval::estimate(&unverified.candidates, &corpus.gold, 2_000, 3).precision();
    assert!(
        p_v > p_u,
        "verification must raise precision ({p_v:.3} vs {p_u:.3})"
    );
    // Coverage cost bounded: at least 85% of edges survive.
    assert!(
        verified.candidates.len() * 100 >= unverified.candidates.len() * 85,
        "verification removed too much: {} of {}",
        verified.candidates.len(),
        unverified.candidates.len()
    );
}
