//! The runtime's determinism contract, asserted end to end: a pipeline run
//! with `threads = 1`, `2` and `8` must produce **identical** output —
//! same taxonomy statistics, same verified candidate sequence, same
//! bracket chains, and an equivalent frozen serving snapshot.
//!
//! This is what makes `PipelineConfig::threads` a pure performance knob:
//! chunk boundaries depend only on input length, reductions fold in chunk
//! order, and sharded accumulators restore first-occurrence order (see
//! `cnp_runtime`).

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use cn_probase::runtime::Runtime;
use cn_probase::taxonomy::persist::encode_frozen;
use cn_probase::{FrozenTaxonomy, IngestDelta, OverlayView};

fn run_with_threads(corpus: &cn_probase::encyclopedia::Corpus, threads: usize) -> PipelineOutcome {
    let config = PipelineConfig {
        threads,
        ..PipelineConfig::fast()
    };
    Pipeline::new(config).run(corpus)
}

fn assert_frozen_equivalent(a: &FrozenTaxonomy, b: &FrozenTaxonomy, label: &str) {
    assert_eq!(a.num_entities(), b.num_entities(), "{label}: entities");
    assert_eq!(a.num_concepts(), b.num_concepts(), "{label}: concepts");
    assert_eq!(a.num_is_a(), b.num_is_a(), "{label}: isA edges");
    assert_eq!(a.num_mentions(), b.num_mentions(), "{label}: mentions");
    assert_eq!(a.topo_order(), b.topo_order(), "{label}: topo order");
    for c in a.concept_ids() {
        assert_eq!(a.concept_name(c), b.concept_name(c), "{label}: name {c:?}");
        assert_eq!(
            a.ancestors_of(c),
            b.ancestors_of(c),
            "{label}: ancestors {c:?}"
        );
        assert_eq!(a.depth(c), b.depth(c), "{label}: depth {c:?}");
        assert_eq!(a.entities_of(c), b.entities_of(c), "{label}: extent {c:?}");
    }
    for e in a.entity_ids() {
        assert_eq!(
            a.concepts_of(e),
            b.concepts_of(e),
            "{label}: concepts {e:?}"
        );
        assert_eq!(a.entity_key(e), b.entity_key(e), "{label}: key {e:?}");
    }
}

#[test]
fn pipeline_output_is_identical_at_1_2_and_8_threads() {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(901)).generate();
    let base = run_with_threads(&corpus, 1);
    let base_frozen = base.freeze();
    assert!(base.report.final_candidates > 0, "empty baseline run");

    for threads in [2, 8] {
        let other = run_with_threads(&corpus, threads);
        // Construction statistics: every Figure 2 counter.
        assert_eq!(
            other.report.stats, base.report.stats,
            "TaxonomyStats diverged at {threads} threads"
        );
        assert_eq!(other.report.pages, base.report.pages);
        assert_eq!(
            other.report.bracket_candidates,
            base.report.bracket_candidates
        );
        assert_eq!(
            other.report.abstract_candidates,
            base.report.abstract_candidates
        );
        assert_eq!(
            other.report.infobox_candidates,
            base.report.infobox_candidates
        );
        assert_eq!(other.report.tag_candidates, base.report.tag_candidates);
        assert_eq!(
            other.report.merged_candidates,
            base.report.merged_candidates
        );
        assert_eq!(other.report.verification, base.report.verification);
        assert_eq!(other.report.final_candidates, base.report.final_candidates);
        assert_eq!(
            other.report.predicates_selected,
            base.report.predicates_selected
        );
        assert_eq!(
            other.report.cycle_edges_removed,
            base.report.cycle_edges_removed
        );
        // The verified candidate set: same candidates, same order.
        assert_eq!(
            other.candidates.items, base.candidates.items,
            "verified candidates diverged at {threads} threads"
        );
        assert_eq!(
            other.chains, base.chains,
            "chains diverged at {threads} threads"
        );
        // The frozen serving snapshot answers every query identically.
        assert_frozen_equivalent(&other.freeze(), &base_frozen, &format!("{threads} threads"));
    }
}

#[test]
fn incremental_mode_is_thread_count_independent_too() {
    let batch1 = CorpusGenerator::new(CorpusConfig::tiny(902)).generate();
    let batch2 = CorpusGenerator::new(CorpusConfig::tiny(903)).generate();
    let run_both = |threads: usize| {
        let config = PipelineConfig {
            threads,
            ..PipelineConfig::fast()
        };
        let pipeline = Pipeline::new(config);
        let mut store = pipeline.run(&batch1).taxonomy;
        let (report, _) = pipeline.run_into(&batch2, &mut store);
        (
            report.stats,
            FrozenTaxonomy::freeze_with(&store, &Runtime::new(threads)),
        )
    };
    let (stats1, frozen1) = run_both(1);
    let (stats8, frozen8) = run_both(8);
    assert_eq!(stats1, stats8);
    assert_frozen_equivalent(&frozen1, &frozen8, "incremental 1 vs 8");
}

/// The write path's determinism contract: folding a delta overlay into its
/// base (compaction) produces the **byte-identical** snapshot a from-scratch
/// freeze of the same logical content produces, at every thread count.
#[test]
fn compaction_is_byte_identical_to_a_fresh_freeze_at_any_thread_count() {
    let batch1 = CorpusGenerator::new(CorpusConfig::tiny(904)).generate();
    let batch2 = CorpusGenerator::new(CorpusConfig::tiny(905)).generate();
    for threads in [1, 2, 8] {
        let config = PipelineConfig {
            threads,
            ..PipelineConfig::fast()
        };
        let pipeline = Pipeline::new(config);
        let rt = Runtime::new(threads);
        let outcome1 = pipeline.run(&batch1);
        let base = FrozenTaxonomy::freeze_with(&outcome1.taxonomy, &rt);
        let outcome2 = pipeline.run(&batch2);
        let delta = outcome2.delta_against(&base);
        assert!(!delta.is_empty(), "disjoint batch produced no delta");

        // Serve base + delta through an overlay, then fold it down.
        let view = OverlayView::new(base).apply(&delta);
        let compacted = view.compacted(&rt).expect("compaction failed");
        assert_eq!(compacted.overlay_depth(), 0, "fold left an overlay");

        // A from-scratch freeze of the same logical content...
        let mut union = outcome1.taxonomy.clone();
        delta.apply_to_store(&mut union);
        let fresh = FrozenTaxonomy::freeze_with(&union, &rt);

        // ...is byte-identical, not merely query-identical.
        assert_eq!(
            encode_frozen(compacted.base()),
            encode_frozen(&fresh),
            "compacted snapshot diverges from fresh freeze at {threads} threads"
        );
        assert_frozen_equivalent(
            compacted.base(),
            &fresh,
            &format!("compacted vs fresh, {threads} threads"),
        );
    }
}

/// Same contract with a *stack* of overlays (never-ending mode: each corpus
/// batch lands as one delta) — one fold collapses the whole stack, and the
/// result does not depend on the thread count either.
#[test]
fn stacked_overlays_compact_identically_across_thread_counts() {
    let batches: Vec<_> = [906, 907, 908]
        .iter()
        .map(|&seed| CorpusGenerator::new(CorpusConfig::tiny(seed)).generate())
        .collect();
    let mut encodings = Vec::new();
    for threads in [1, 2, 8] {
        let config = PipelineConfig {
            threads,
            ..PipelineConfig::fast()
        };
        let pipeline = Pipeline::new(config);
        let rt = Runtime::new(threads);
        let outcome1 = pipeline.run(&batches[0]);
        let base = FrozenTaxonomy::freeze_with(&outcome1.taxonomy, &rt);
        let mut view = OverlayView::new(base);
        let mut union = outcome1.taxonomy.clone();
        for batch in &batches[1..] {
            let outcome = pipeline.run(batch);
            // Diff against the *live overlay* — exactly what a producer
            // talking to a serving node between compactions sees.
            let delta = outcome.delta_against(&view);
            delta.apply_to_store(&mut union);
            view = view.apply(&delta);
        }
        assert_eq!(view.overlay_depth(), 2);
        let compacted = view.compacted(&rt).expect("compaction failed");
        let fresh = FrozenTaxonomy::freeze_with(&union, &rt);
        let bytes = encode_frozen(compacted.base());
        assert_eq!(
            bytes,
            encode_frozen(&fresh),
            "stacked compaction diverges from fresh freeze at {threads} threads"
        );
        encodings.push(bytes);
    }
    assert!(
        encodings.windows(2).all(|w| w[0] == w[1]),
        "compacted bytes differ across thread counts"
    );
}
