//! Serving API v1 equivalence (ISSUE 5 acceptance).
//!
//! The `ProbaseApi` compatibility wrapper and the typed `TaxonomyService`
//! must return identical answers for every Table II operation — locked in
//! here on the committed golden fixture (known world, exact expectations)
//! and on a pipeline-built corpus (breadth). Also locks the pagination
//! contract: stitching cursor-walked pages reproduces the unpaged result,
//! and stale or foreign cursors are rejected as typed errors, never
//! mis-sliced.

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::serve::{CursorError, EntityHit, Paged};
use cn_probase::taxonomy::EntityId;
use cn_probase::{
    FrozenTaxonomy, ListOptions, OverlayView, PageRequest, ProbaseApi, Query, QueryError, Response,
    TaxonomyService,
};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v2.cnpb")
}

fn senses_of(service: &TaxonomyService, mention: &str) -> Option<Vec<EntityId>> {
    match service.execute(&Query::men2ent(mention)).result {
        Ok(Response::Senses(s)) => Some(s.into_iter().map(|x| x.id).collect()),
        Err(QueryError::UnknownMention(_)) => None,
        other => panic!("men2ent({mention}): unexpected {other:?}"),
    }
}

fn concept_names(service: &TaxonomyService, query: &Query) -> Option<Vec<String>> {
    match service.execute(query).result {
        Ok(Response::Concepts(page)) => Some(page.items.into_iter().map(|h| h.name).collect()),
        Err(QueryError::UnknownMention(_)) | Err(QueryError::UnknownEntity(_)) => None,
        other => panic!("{query:?}: unexpected {other:?}"),
    }
}

fn entity_keys(service: &TaxonomyService, query: &Query) -> Option<Vec<String>> {
    match service.execute(query).result {
        Ok(Response::Entities(page)) => Some(page.items.into_iter().map(|h| h.key).collect()),
        Err(QueryError::UnknownConcept(_)) => None,
        other => panic!("{query:?}: unexpected {other:?}"),
    }
}

/// Asserts wrapper ≡ service for every Table II operation over the given
/// mention/concept probe sets.
fn assert_equivalent(api: &ProbaseApi, service: &TaxonomyService, probes: &[String]) {
    let f = api.frozen();
    for m in probes {
        // men2ent: same senses, same order; unknown mention ≡ empty vec.
        let wrapper: Vec<EntityId> = api.men2ent(m).into_iter().map(|s| s.id).collect();
        let typed = senses_of(service, m).unwrap_or_default();
        assert_eq!(wrapper, typed, "men2ent({m})");

        // getConcept by mention, both transitive flags.
        for transitive in [false, true] {
            let query = Query::GetConceptByMention {
                mention: m.clone(),
                options: ListOptions {
                    transitive,
                    ..Default::default()
                },
            };
            assert_eq!(
                api.get_concept_by_mention(m, transitive),
                concept_names(service, &query).unwrap_or_default(),
                "getConceptByMention({m}, {transitive})"
            );
        }
    }

    // getConcept by entity key, every entity, both transitive flags.
    for e in f.entity_ids() {
        let key = f.entity_key(e);
        for transitive in [false, true] {
            let query = Query::GetConcept {
                entity: key.clone(),
                options: ListOptions {
                    transitive,
                    ..Default::default()
                },
            };
            assert_eq!(
                api.get_concept(e, transitive),
                concept_names(service, &query).expect("known entity"),
                "getConcept({key}, {transitive})"
            );
        }
    }

    // getEntity, every concept plus an unknown, several limits.
    let mut concepts: Vec<String> = f
        .concept_ids()
        .map(|c| f.concept_name(c).to_string())
        .collect();
    concepts.push("绝对不存在的概念".to_string());
    for name in &concepts {
        for transitive in [false, true] {
            for limit in [1usize, 2, usize::MAX] {
                let query = Query::GetEntity {
                    concept: name.clone(),
                    options: ListOptions {
                        transitive,
                        min_confidence: 0.0,
                        page: PageRequest::first(limit),
                    },
                };
                assert_eq!(
                    api.get_entity(name, transitive, limit),
                    entity_keys(service, &query).unwrap_or_default(),
                    "getEntity({name}, {transitive}, {limit})"
                );
            }
        }
    }
}

#[test]
fn wrapper_and_service_agree_on_golden_fixture() {
    let api = ProbaseApi::from_snapshot_file(&fixture_path()).expect("boot wrapper");
    let service = TaxonomyService::from_snapshot_file(&fixture_path()).expect("boot service");
    let mut probes = vec![
        "刘德华".to_string(),
        "刘德华（中国香港男演员）".to_string(),
        "张学友".to_string(),
        "Andy Lau".to_string(),
        "不存在".to_string(),
        "不存在（也不存在）".to_string(),
    ];
    probes.sort();
    assert_equivalent(&api, &service, &probes);

    // Known-answer spot checks for the protocol-only queries.
    let r = service.execute(&Query::IsA {
        sub: "刘德华（中国香港男演员）".to_string(),
        sup: "人物".to_string(),
        transitive: true,
    });
    assert_eq!(r.result, Ok(Response::IsA { holds: true }));
    let r = service.execute(&Query::IsA {
        sub: "男演员".to_string(),
        sup: "人物".to_string(),
        transitive: false,
    });
    assert_eq!(r.result, Ok(Response::IsA { holds: false }), "direct only");
    let r = service.execute(&Query::AncestorsOf {
        concept: "男演员".to_string(),
    });
    let Ok(Response::Ancestors(ancestors)) = r.result else {
        panic!("ancestors");
    };
    let names: Vec<&str> = ancestors.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(names, ["演员", "人物"], "nearest-first");
    assert!(ancestors[0].direct && ancestors[0].confidence.is_some());
    assert!(!ancestors[1].direct && ancestors[1].confidence.is_none());
    let r = service.execute(&Query::MentionSenses {
        mention: "刘德华".to_string(),
    });
    let Ok(Response::SenseConcepts(senses)) = r.result else {
        panic!("mention senses");
    };
    assert_eq!(senses.len(), 2);
    assert!(senses.iter().any(|s| s.sense.disambig.is_some()));
    assert!(senses.iter().all(|s| !s.concepts.is_empty()));
}

#[test]
fn wrapper_and_service_agree_on_generated_corpus() {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(9)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let frozen = outcome.freeze();
    let api = ProbaseApi::from_frozen(frozen.clone());
    let service = TaxonomyService::new(frozen);
    let probes: Vec<String> = corpus.pages.iter().map(|p| p.name.clone()).collect();
    assert!(probes.len() > 100, "corpus too small to be meaningful");
    assert_equivalent(&api, &service, &probes);
}

#[test]
fn cursor_walk_stitches_back_to_the_unpaged_result() {
    let service = TaxonomyService::from_snapshot_file(&fixture_path()).expect("boot service");
    let unpaged_query = Query::GetEntity {
        concept: "人物".to_string(),
        options: ListOptions::transitive(),
    };
    let Ok(Response::Entities(unpaged)) = service.execute(&unpaged_query).result else {
        panic!("unpaged");
    };
    assert!(unpaged.total >= 3 && unpaged.next.is_none());

    // Walk one item at a time; the concatenation must reproduce the
    // unpaged enumeration exactly — no skips, no repeats.
    let mut stitched: Vec<EntityHit> = Vec::new();
    let mut cursor = None;
    loop {
        let query = Query::GetEntity {
            concept: "人物".to_string(),
            options: ListOptions::transitive().with_page(PageRequest { limit: 1, cursor }),
        };
        let Ok(Response::Entities(page)) = service.execute(&query).result else {
            panic!("page");
        };
        assert_eq!(page.total, unpaged.total, "total is page-invariant");
        assert!(page.items.len() <= 1);
        stitched.extend(page.items);
        match page.next {
            Some(next) => {
                // The wire token round-trips through encode/decode.
                let token = next.encode();
                cursor = Some(cn_probase::Cursor::decode(&token).expect("token round-trip"));
            }
            None => break,
        }
    }
    assert_eq!(stitched, unpaged.items);
}

#[test]
fn foreign_and_stale_cursors_are_typed_errors() {
    let service = TaxonomyService::from_snapshot_file(&fixture_path()).expect("boot service");
    let query_for = |concept: &str, cursor: Option<cn_probase::Cursor>| Query::GetEntity {
        concept: concept.to_string(),
        options: ListOptions::transitive().with_page(PageRequest { limit: 1, cursor }),
    };
    let Ok(Response::Entities(Paged {
        next: Some(cursor), ..
    })) = service.execute(&query_for("人物", None)).result
    else {
        panic!("need a continuation cursor");
    };

    // Replayed against a different query: rejected, not mis-sliced.
    let foreign = service.execute(&query_for("歌手", Some(cursor))).result;
    assert_eq!(
        foreign,
        Err(QueryError::InvalidCursor(CursorError::WrongQuery))
    );

    // Replayed after a hot-swap: the generation no longer matches.
    let swapped_in = ProbaseApi::from_snapshot_file(&fixture_path())
        .unwrap()
        .frozen()
        .clone();
    assert_eq!(service.swap(swapped_in), 2);
    let stale = service.execute(&query_for("人物", Some(cursor))).result;
    assert_eq!(
        stale,
        Err(QueryError::InvalidCursor(CursorError::WrongGeneration {
            cursor: 1,
            serving: 2
        }))
    );

    // A fresh first page works fine on the new generation.
    let fresh = service.execute(&query_for("人物", None));
    assert_eq!(fresh.generation, 2);
    assert!(fresh.result.is_ok());
}

/// Serving `base + delta` through an [`OverlayView`] must answer every
/// query identically — same ids, same order, same confidences — to a
/// snapshot materialised from the merged content. Ids line up because the
/// overlay mints them in log order, exactly the ids a compaction replay
/// assigns.
#[test]
fn overlay_answers_match_the_materialised_snapshot() {
    let batch1 = CorpusGenerator::new(CorpusConfig::tiny(921)).generate();
    let batch2 = CorpusGenerator::new(CorpusConfig::tiny(922)).generate();
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let outcome1 = pipeline.run(&batch1);
    let base = outcome1.freeze();
    let delta = pipeline.run(&batch2).delta_against(&base);
    assert!(!delta.is_empty(), "disjoint batch produced no delta");

    let overlaid = TaxonomyService::new(OverlayView::new(base).apply(&delta));
    let mut union = outcome1.taxonomy.clone();
    delta.apply_to_store(&mut union);
    let materialised = TaxonomyService::new(FrozenTaxonomy::freeze(&union));

    let f = materialised.pin();
    let f = f.frozen();
    let mut queries: Vec<Query> = Vec::new();
    for corpus in [&batch1, &batch2] {
        for page in &corpus.pages {
            queries.push(Query::men2ent(&page.name));
            queries.push(Query::MentionSenses {
                mention: page.name.clone(),
            });
            for transitive in [false, true] {
                queries.push(Query::GetConceptByMention {
                    mention: page.name.clone(),
                    options: ListOptions {
                        transitive,
                        ..Default::default()
                    },
                });
            }
        }
    }
    for e in f.entity_ids() {
        queries.push(Query::GetConcept {
            entity: f.entity_key(e),
            options: ListOptions::transitive(),
        });
    }
    for c in f.concept_ids() {
        let name = f.concept_name(c).to_string();
        queries.push(Query::AncestorsOf {
            concept: name.clone(),
        });
        for limit in [2usize, usize::MAX] {
            queries.push(Query::GetEntity {
                concept: name.clone(),
                options: ListOptions {
                    transitive: true,
                    min_confidence: 0.0,
                    page: PageRequest::first(limit),
                },
            });
        }
    }
    assert!(queries.len() > 500, "probe battery too small");
    for query in &queries {
        assert_eq!(
            overlaid.execute(query).result,
            materialised.execute(query).result,
            "overlay and materialised snapshot disagree on {query:?}"
        );
    }
}

/// An `/admin/ingest`-style overlay apply is a generation bump like any
/// other swap: cursors minted before it are rejected with the typed
/// `WrongGeneration` error afterwards, and a fresh walk on the new
/// generation stitches the post-ingest enumeration.
#[test]
fn cursor_walks_are_generation_bound_across_ingest() {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(923)).generate();
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let outcome = pipeline.run(&corpus);
    let base = outcome.freeze();
    let concept = {
        // Pick the concept with the largest transitive extent so every
        // walk below needs several pages.
        let c = base
            .concept_ids()
            .max_by_key(|&c| base.descendants(c).len())
            .expect("nonempty taxonomy");
        base.concept_name(c).to_string()
    };
    let service = TaxonomyService::new(OverlayView::new(base));

    let query_for = |cursor: Option<cn_probase::Cursor>| Query::GetEntity {
        concept: concept.clone(),
        options: ListOptions::transitive().with_page(PageRequest { limit: 2, cursor }),
    };
    let first = service.execute(&query_for(None));
    assert_eq!(first.generation, 1);
    let Ok(Response::Entities(Paged {
        next: Some(cursor), ..
    })) = first.result
    else {
        panic!("need a continuation cursor");
    };

    // Ingest a second batch; the swap bumps the generation.
    let batch2 = CorpusGenerator::new(CorpusConfig::tiny(924)).generate();
    let delta = pipeline.run(&batch2).delta_against(service.pin().frozen());
    assert_eq!(service.ingest(&delta).expect("ingest"), 2);

    // The pre-ingest cursor is now typed-stale, never mis-sliced.
    let stale = service.execute(&query_for(Some(cursor))).result;
    assert_eq!(
        stale,
        Err(QueryError::InvalidCursor(CursorError::WrongGeneration {
            cursor: 1,
            serving: 2
        }))
    );

    // A fresh walk on generation 2 stitches back to the unpaged
    // post-ingest result.
    let unpaged_query = Query::GetEntity {
        concept: concept.clone(),
        options: ListOptions::transitive(),
    };
    let Ok(Response::Entities(unpaged)) = service.execute(&unpaged_query).result else {
        panic!("unpaged");
    };
    let mut stitched: Vec<EntityHit> = Vec::new();
    let mut cursor = None;
    loop {
        let response = service.execute(&query_for(cursor.take()));
        assert_eq!(response.generation, 2);
        let Ok(Response::Entities(page)) = response.result else {
            panic!("page");
        };
        assert_eq!(page.total, unpaged.total, "total is page-invariant");
        stitched.extend(page.items);
        match page.next {
            Some(next) => cursor = Some(next),
            None => break,
        }
    }
    assert_eq!(stitched, unpaged.items);
}
