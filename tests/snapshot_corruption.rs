//! Hostile-input suite for the snapshot codecs (ISSUE 4 satellite).
//!
//! A serving fleet reloads snapshots constantly; a truncated upload, a
//! bit-flipped block or a hand-crafted hostile file must produce an
//! `Err(PersistError::…)` — never a panic, and never an OOM from trusting
//! a length field. The v2 and v3 suites are exhaustive: *every* truncation
//! prefix and *every* single-byte flip of a valid snapshot must fail
//! decode (the FNV-1a content checksum guarantees flips are caught even
//! where the structure would still parse). The v3 suite additionally
//! re-seals hostile varint/length fields under a *valid* checksum, so the
//! structural bounds checks are what rejects them — proving no
//! allocation-before-validation window hides behind the checksum.

use cn_probase::taxonomy::persist::{self, PersistError};
use cn_probase::taxonomy::{FrozenTaxonomy, IsAMeta, Snapshot, Source, TaxonomyStore};

/// Small but section-complete store: a disambiguated sense, an alias, an
/// attribute, entity edges from three sources and a concept chain.
fn demo_store() -> TaxonomyStore {
    let mut s = TaxonomyStore::new();
    let liu = s.add_entity("刘德华", Some("中国香港男演员"));
    let liu_bare = s.add_entity("刘德华", None);
    let zhang = s.add_entity("张学友", None);
    s.add_alias(liu, "Andy Lau");
    s.add_attribute(liu, "职业");
    let male_actor = s.add_concept("男演员");
    let actor = s.add_concept("演员");
    let singer = s.add_concept("歌手");
    let person = s.add_concept("人物");
    s.add_concept_is_a(male_actor, actor, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_entity_is_a(liu, male_actor, IsAMeta::new(Source::Bracket, 0.95));
    s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
    s.add_entity_is_a(liu_bare, singer, IsAMeta::new(Source::Tag, 0.5));
    s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Infobox, 0.9));
    s
}

fn v2_bytes() -> Vec<u8> {
    FrozenTaxonomy::freeze(&demo_store()).encode().to_vec()
}

#[test]
fn v2_every_truncation_prefix_errors() {
    let bytes = v2_bytes();
    assert!(FrozenTaxonomy::decode(&bytes).is_ok(), "baseline decodes");
    for cut in 0..bytes.len() {
        let res = FrozenTaxonomy::decode(&bytes[..cut]);
        assert!(res.is_err(), "truncation at {cut}/{} decoded", bytes.len());
    }
}

#[test]
fn v2_every_single_byte_flip_errors() {
    let bytes = v2_bytes();
    let mut mutated = bytes.clone();
    for i in 0..bytes.len() {
        mutated[i] ^= 0xFF;
        let res = FrozenTaxonomy::decode(&mutated);
        assert!(res.is_err(), "byte flip at {i}/{} decoded", bytes.len());
        mutated[i] = bytes[i];
    }
}

/// Single-byte flips restricted to section *headers* (tag + length words),
/// the locations a framing bug would mis-handle most catastrophically.
#[test]
fn v2_section_header_flips_error() {
    let bytes = v2_bytes();
    // Walk the section framing to find every header's byte range.
    let mut headers: Vec<std::ops::Range<usize>> = Vec::new();
    let mut pos = 8; // skip magic + version
    while pos + 12 <= bytes.len() {
        headers.push(pos..pos + 12);
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        pos += 12 + len as usize;
    }
    assert_eq!(pos, bytes.len(), "section framing walk must consume all");
    assert!(headers.len() >= 14, "all sections present");
    let mut mutated = bytes.clone();
    for header in headers {
        for i in header {
            for flip in [0x01, 0x80, 0xFF] {
                mutated[i] ^= flip;
                assert!(
                    FrozenTaxonomy::decode(&mutated).is_err(),
                    "header byte {i} ^ {flip:#04x} decoded"
                );
                mutated[i] = bytes[i];
            }
        }
    }
}

/// Hostile length fields must be rejected by bounds checks before any
/// allocation proportional to the claimed size (no OOM on a 16-byte file
/// claiming u64::MAX bytes of payload).
#[test]
fn v2_hostile_lengths_do_not_overallocate() {
    let mut base = b"CNPB".to_vec();
    base.extend_from_slice(&2u32.to_le_bytes());
    for (tag, claimed) in [
        (*b"INTR", u64::MAX),
        (*b"ANCS", u64::MAX / 2),
        (*b"ENTS", u64::from(u32::MAX)),
    ] {
        let mut bytes = base.clone();
        bytes.extend_from_slice(&tag);
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]); // far less body than claimed
        assert!(
            matches!(
                FrozenTaxonomy::decode(&bytes),
                Err(PersistError::Truncated(_))
            ),
            "claimed length {claimed} accepted"
        );
    }
}

#[test]
fn v1_every_truncation_prefix_errors() {
    let bytes = persist::encode(&demo_store()).to_vec();
    assert!(persist::decode(&bytes).is_ok(), "baseline decodes");
    for cut in 0..bytes.len() {
        let res = persist::decode(&bytes[..cut]);
        assert!(res.is_err(), "truncation at {cut}/{} decoded", bytes.len());
    }
}

/// Regression for the v1 pre-allocation bug: count fields used to be
/// trusted before bounds-checking the remaining buffer, so a hostile
/// count triggered a giant `Vec::with_capacity`. Allocations are now
/// clamped by the bytes actually remaining.
#[test]
fn v1_hostile_counts_error_without_overallocating() {
    let mut bytes = b"CNPB".to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // string count
    assert!(matches!(
        persist::decode(&bytes),
        Err(PersistError::Truncated(_))
    ));
}

#[test]
fn snapshot_load_rejects_garbage() {
    assert!(matches!(
        Snapshot::load(b"not a snapshot at all"),
        Err(PersistError::BadMagic)
    ));
    assert!(matches!(
        Snapshot::load(b"CNPB"),
        Err(PersistError::Truncated(_))
    ));
    let mut v99 = b"CNPB".to_vec();
    v99.extend_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Snapshot::load(&v99),
        Err(PersistError::BadVersion(99))
    ));
}

// ----- v3: the zero-copy view format ----------------------------------------

fn v3_bytes() -> Vec<u8> {
    persist::encode_frozen_v3(&FrozenTaxonomy::freeze(&demo_store())).to_vec()
}

/// `(tag, payload_range)` for every section of a well-formed snapshot.
fn v3_sections(bytes: &[u8]) -> Vec<([u8; 4], std::ops::Range<usize>)> {
    let mut sections = Vec::new();
    let mut pos = 8; // skip magic + version
    while pos + 12 <= bytes.len() {
        let tag: [u8; 4] = bytes[pos..pos + 4].try_into().unwrap();
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        sections.push((tag, pos + 12..pos + 12 + len));
        pos += 12 + len;
    }
    assert_eq!(pos, bytes.len(), "section framing walk must consume all");
    sections
}

/// Recomputes the trailing CKSM digest after a mutation, so the checksum
/// is *valid* and structural validation alone must reject the content.
fn reseal_v3(bytes: &mut [u8]) {
    let digest_at = bytes.len() - 8;
    let cksm_tag_at = bytes.len() - 20;
    let digest = cn_probase::runtime::stable_hash(&bytes[..cksm_tag_at]);
    bytes[digest_at..].copy_from_slice(&digest.to_le_bytes());
}

#[test]
fn v3_every_truncation_prefix_errors() {
    let bytes = v3_bytes();
    assert!(Snapshot::load(&bytes).is_ok(), "baseline decodes");
    for cut in 0..bytes.len() {
        let res = Snapshot::load(&bytes[..cut]);
        assert!(res.is_err(), "truncation at {cut}/{} decoded", bytes.len());
    }
}

#[test]
fn v3_every_single_byte_flip_errors() {
    let bytes = v3_bytes();
    let mut mutated = bytes.clone();
    for i in 0..bytes.len() {
        mutated[i] ^= 0xFF;
        let res = Snapshot::load(&mutated);
        assert!(res.is_err(), "byte flip at {i}/{} decoded", bytes.len());
        mutated[i] = bytes[i];
    }
}

/// Flips restricted to section headers (tag + length words), re-run with
/// the three flip masks the v2 suite uses.
#[test]
fn v3_section_header_flips_error() {
    let bytes = v3_bytes();
    let sections = v3_sections(&bytes);
    assert!(sections.len() >= 16, "v3 writes 15 sections + CKSM");
    let mut mutated = bytes.clone();
    for (_, payload) in &sections {
        for i in payload.start - 12..payload.start {
            for flip in [0x01, 0x80, 0xFF] {
                mutated[i] ^= flip;
                assert!(
                    Snapshot::load(&mutated).is_err(),
                    "header byte {i} ^ {flip:#04x} decoded"
                );
                mutated[i] = bytes[i];
            }
        }
    }
}

/// Hostile section lengths claiming more payload than the file holds must
/// be rejected by the framing walk, before any allocation.
#[test]
fn v3_hostile_lengths_do_not_overallocate() {
    let mut base = b"CNPB".to_vec();
    base.extend_from_slice(&3u32.to_le_bytes());
    for (tag, claimed) in [
        (*b"INTR", u64::MAX),
        (*b"ANCC", u64::MAX / 2),
        (*b"ECON", u64::from(u32::MAX)),
    ] {
        let mut bytes = base.clone();
        bytes.extend_from_slice(&tag);
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]); // far less body than claimed
        assert!(
            Snapshot::load(&bytes).is_err(),
            "claimed length {claimed} accepted"
        );
    }
}

/// Hostile *count* fields under a valid checksum: the first word of every
/// table and varint-CSR section (string count, row count) and the second
/// word of every VCSR (entry count) are set to `u32::MAX`, the checksum is
/// re-sealed, and the load must fail on bounds checks — never OOM on the
/// claimed size, never panic.
#[test]
fn v3_hostile_counts_error_without_overallocating() {
    let bytes = v3_bytes();
    let vcsr_tags: &[[u8; 4]] = &[
        *b"ECON", *b"CENT", *b"CPAR", *b"CCHD", *b"EATT", *b"EALS", *b"ANCC", *b"MENT",
    ];
    for (tag, payload) in v3_sections(&bytes) {
        if tag == *b"CKSM" {
            continue;
        }
        // Word 0: the leading count of INTR/ENTS/CNPT/TOPO/DPTH and the
        // row count of every VCSR (SSRT/CSRT have no leading count — the
        // flip lands in table content and must still be rejected).
        let mut word_offsets = vec![0usize];
        if vcsr_tags.contains(&tag) {
            word_offsets.push(4); // the VCSR entry count
        }
        for off in word_offsets {
            if payload.start + off + 4 > payload.end {
                continue;
            }
            let mut mutated = bytes.clone();
            mutated[payload.start + off..payload.start + off + 4]
                .copy_from_slice(&u32::MAX.to_le_bytes());
            reseal_v3(&mut mutated);
            let res = Snapshot::load(&mutated);
            assert!(
                res.is_err(),
                "{} word at +{off} = u32::MAX decoded",
                String::from_utf8_lossy(&tag)
            );
        }
    }
}

/// Hostile varint row bodies under a valid checksum: overwrite the first
/// bytes of a VCSR payload with maximal continuation bytes (a varint
/// claiming a huge row length) and with an overlong encoding; both must be
/// typed errors.
#[test]
fn v3_hostile_varints_error_cleanly() {
    let bytes = v3_bytes();
    for (tag, payload) in v3_sections(&bytes) {
        if !matches!(&tag, b"ECON" | b"MENT" | b"ANCC") {
            continue;
        }
        // The payload area sits after rows/entries words + directory;
        // stomp the *last* 4 bytes of the section, which always land
        // inside row data for these non-empty sections.
        for stomp in [[0xFF, 0xFF, 0xFF, 0xFF], [0x80, 0x80, 0x80, 0x80]] {
            if payload.len() < 4 {
                continue;
            }
            let mut mutated = bytes.clone();
            mutated[payload.end - 4..payload.end].copy_from_slice(&stomp);
            reseal_v3(&mut mutated);
            assert!(
                Snapshot::load(&mutated).is_err(),
                "{} with stomped varint tail decoded",
                String::from_utf8_lossy(&tag)
            );
        }
    }
}
