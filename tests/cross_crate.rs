//! Cross-crate integration: dump round-trips feeding the pipeline, QA
//! coverage over a built taxonomy, bracket chains becoming subconcept
//! edges, and mention disambiguation through the full stack.

use cn_probase::encyclopedia::{dump, CorpusConfig, CorpusGenerator};
use cn_probase::eval::{coverage, generate_questions};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::ProbaseApi;

#[test]
fn dump_roundtrip_feeds_an_identical_pipeline_run() {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(88)).generate();
    // Serialize pages to the CN-DBpedia-style dump and read them back.
    let mut buf = Vec::new();
    dump::write_pages(&corpus.pages, &mut buf).expect("write dump");
    let reloaded = dump::read_pages(&buf[..]).expect("read dump");
    assert_eq!(corpus.pages, reloaded);

    // A corpus built from the reloaded pages produces identical candidates.
    let mut corpus2 = corpus.clone();
    corpus2.pages = reloaded;
    let a = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let b = Pipeline::new(PipelineConfig::fast()).run(&corpus2);
    assert_eq!(a.report.merged_candidates, b.report.merged_candidates);
    assert_eq!(a.taxonomy.num_is_a(), b.taxonomy.num_is_a());
}

#[test]
fn qa_coverage_matches_the_papers_shape() {
    let corpus = CorpusGenerator::new(CorpusConfig::small(89)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let api = ProbaseApi::new(outcome.taxonomy);
    let questions = generate_questions(&corpus, 3_000, 11);
    let result = coverage(&api, &questions);
    // Paper: 91.68% coverage; our generator embeds ~92% mention questions.
    assert!(
        (0.80..=1.0).contains(&result.coverage()),
        "coverage {:.3} outside band",
        result.coverage()
    );
    // Paper: 2.14 concepts per covered entity — ours must exceed 1.
    assert!(
        result.avg_concepts_per_entity > 1.0,
        "avg concepts {:.2}",
        result.avg_concepts_per_entity
    );
}

#[test]
fn chief_title_chains_become_subconcept_edges() {
    // Find a corpus seed that generates 首席X brackets, then verify the
    // chain 首席X → X landed in the taxonomy as a subconcept edge.
    let corpus = CorpusGenerator::new(CorpusConfig::small(90)).generate();
    let has_chief_bracket = corpus
        .pages
        .iter()
        .any(|p| p.bracket.as_deref().is_some_and(|b| b.contains("首席")));
    assert!(has_chief_bracket, "corpus lacks 首席 brackets");
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let store = &outcome.taxonomy;
    let chief_chain = store.concept_ids().any(|c| {
        let name = store.concept_name(c);
        name.starts_with("首席")
            && store.parents_of(c).iter().any(|(p, _)| {
                let parent = store.concept_name(*p);
                name.ends_with(parent)
            })
    });
    assert!(chief_chain, "no 首席X → X subconcept chain in the taxonomy");
}

#[test]
fn ambiguous_mentions_resolve_to_multiple_senses() {
    let corpus = CorpusGenerator::new(CorpusConfig::small(91)).generate();
    // The generator forces brackets onto colliding names.
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for p in &corpus.pages {
        if !corpus.gold.is_concept(&p.name) {
            *counts.entry(p.name.as_str()).or_insert(0) += 1;
        }
    }
    let ambiguous: Vec<&str> = counts
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(name, _)| *name)
        .collect();
    assert!(!ambiguous.is_empty(), "no ambiguous names generated");

    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let api = ProbaseApi::new(outcome.taxonomy);
    let mut multi_sense_seen = false;
    for name in ambiguous {
        if api.men2ent(name).len() > 1 {
            multi_sense_seen = true;
            // Each sense key must be the full disambiguated form.
            for sense in api.men2ent(name) {
                assert!(sense.key.starts_with(name));
            }
        }
    }
    assert!(multi_sense_seen, "men2ent never returned multiple senses");
}

#[test]
fn thematic_tags_never_survive_as_concepts() {
    let corpus = CorpusGenerator::new(CorpusConfig::small(92)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    for c in outcome.taxonomy.concept_ids() {
        let name = outcome.taxonomy.concept_name(c);
        assert!(
            !cn_probase::text::lexicons::is_thematic(name),
            "thematic word {name} survived as a concept"
        );
    }
}
