//! Equivalence of the frozen serving snapshot and the mutable-store path.
//!
//! Builds a taxonomy with the full pipeline over a generated corpus, then
//! checks that [`FrozenTaxonomy`]/[`ProbaseApi`] answer `men2ent`,
//! `getConcept(transitive)`, `getEntity`, `depth` and `wu_palmer` exactly
//! like the build-time `TaxonomyStore` primitives (`MentionIndex`,
//! `closure::ancestors`/`descendants`, `query::*`).

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::taxonomy::mention::MentionIndex;
use cn_probase::taxonomy::store::EntityId;
use cn_probase::taxonomy::{closure, query, TaxonomyStore};
use cn_probase::ProbaseApi;

fn build() -> (TaxonomyStore, ProbaseApi) {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(42)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let api = ProbaseApi::from_frozen(outcome.freeze());
    (outcome.taxonomy, api)
}

#[test]
fn frozen_matches_mutable_store_on_generated_corpus() {
    let (mut store, api) = build();
    let frozen = api.frozen();
    assert!(
        store.num_entities() > 50,
        "corpus too small to be meaningful"
    );

    // --- men2ent: every name, full key and alias resolves identically ---
    let mentions: Vec<String> = store
        .entity_ids()
        .flat_map(|e| {
            let mut ms = vec![
                store.resolve(store.entity(e).name).to_string(),
                store.entity_key(e),
            ];
            for &a in store.aliases_of(e) {
                ms.push(store.resolve(a).to_string());
            }
            ms
        })
        .collect();
    let index = MentionIndex::build(&mut store);
    for m in &mentions {
        assert_eq!(
            frozen.men2ent(m),
            index.men2ent(&store, m).as_slice(),
            "men2ent({m})"
        );
    }
    // API layer agrees with the raw ids.
    for m in mentions.iter().take(200) {
        let senses: Vec<EntityId> = api.men2ent(m).into_iter().map(|s| s.id).collect();
        assert_eq!(senses.as_slice(), frozen.men2ent(m));
    }

    // --- getConcept(transitive): direct edges + BFS closure ---
    for e in store.entity_ids() {
        let direct: Vec<_> = store.concepts_of(e).iter().map(|&(c, _)| c).collect();
        let mut expected: Vec<String> = direct
            .iter()
            .map(|&c| store.concept_name(c).to_string())
            .collect();
        for &c in &direct {
            for a in closure::ancestors(&store, c) {
                let name = store.concept_name(a).to_string();
                if !expected.contains(&name) {
                    expected.push(name);
                }
            }
        }
        let mut got = api.get_concept(e, true);
        // The transitive tails are ordered differently (BFS vs sorted
        // closure rows); compare as sets, and the direct prefix exactly.
        assert_eq!(got[..direct.len()], expected[..direct.len()]);
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "getConcept({e:?}, transitive)");
    }

    // --- getEntity: identical including the ranked-row BFS order and
    // dedup. Hyponym rows are confidence-ranked in the snapshot, so the
    // expectation walks the store's own rank order
    // (`TaxonomyStore::ranked_entities_of`). ---
    for c in store.concept_ids() {
        let name = store.concept_name(c).to_string();
        let mut expected: Vec<String> = Vec::new();
        let mut seen: Vec<EntityId> = Vec::new();
        for e in store.ranked_entities_of(c) {
            if !seen.contains(&e) {
                seen.push(e);
                expected.push(store.entity_key(e));
            }
        }
        for sub in closure::descendants(&store, c) {
            for e in store.ranked_entities_of(sub) {
                if !seen.contains(&e) {
                    seen.push(e);
                    expected.push(store.entity_key(e));
                }
            }
        }
        assert_eq!(
            api.get_entity(&name, true, usize::MAX),
            expected,
            "getEntity({name})"
        );
    }

    // --- depth: one exact pass vs the frozen array ---
    let depths = query::depths(&store);
    for c in store.concept_ids() {
        assert_eq!(frozen.depth(c), depths[c.index()] as usize, "depth({c:?})");
    }

    // --- wu_palmer (and its LCA machinery) on sampled pairs ---
    let ids: Vec<_> = store.concept_ids().collect();
    for &a in ids.iter().step_by(7) {
        for &b in ids.iter().step_by(11) {
            assert_eq!(
                frozen.wu_palmer(a, b),
                query::wu_palmer(&store, a, b),
                "wu_palmer({a:?}, {b:?})"
            );
            assert_eq!(
                frozen.lowest_common_ancestors(a, b),
                query::lowest_common_ancestors(&store, a, b),
                "lca({a:?}, {b:?})"
            );
        }
    }
}
