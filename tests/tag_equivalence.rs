//! Tagging equivalence (ISSUE 10 acceptance).
//!
//! `Query::Tag` and `Query::Classify` must produce *byte-identical* wire
//! responses across every snapshot representation — owned
//! [`FrozenTaxonomy`], borrowed [`FrozenTaxonomyView`], and an
//! [`OverlayView`] whose folded delta completes the same logical content —
//! and at 1/2/8 executor threads, on the committed golden fixtures. The
//! tag index is rebuilt per generation from the snapshot's own
//! vocabulary, so any representation-dependent drift (id order, closure
//! rows, mention tables) would surface here as a diverging byte.

use cn_probase::runtime::Runtime;
use cn_probase::serve::wire;
use cn_probase::taxonomy::{IsAMeta, Source, TaxonomyStore};
use cn_probase::{
    DeltaOverlay, FrozenTaxonomy, FrozenTaxonomyView, OverlayView, Query, Response, Snapshot,
    TagOptions, TaxonomyRead, TaxonomyService,
};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn frozen() -> FrozenTaxonomy {
    let bytes = std::fs::read(fixture("golden_v2.cnpb")).expect("golden v2 fixture");
    Snapshot::load(&bytes)
        .expect("fixture decodes")
        .into_frozen()
        .expect("fixture freezes")
}

fn view() -> FrozenTaxonomyView {
    let bytes = std::fs::read(fixture("golden_v3.cnpb")).expect("golden v3 fixture");
    let Snapshot::View(view) = Snapshot::load(&bytes).expect("v3 fixture decodes") else {
        panic!("a v3 snapshot must decode to the borrowed view");
    };
    *view
}

/// The golden fixture's content minus 张学友 — the overlay backend folds
/// the missing entity back in through a delta, landing on the same dense
/// ids (appends replay in log order) and the same logical answers.
fn overlay() -> OverlayView<FrozenTaxonomy> {
    let mut s = TaxonomyStore::new();
    let liu = s.add_entity("刘德华", Some("中国香港男演员"));
    let liu_bare = s.add_entity("刘德华", None);
    s.add_alias(liu, "Andy Lau");
    s.add_attribute(liu, "职业");
    s.add_attribute(liu, "代表作品");
    let male_actor = s.add_concept("男演员");
    let actor = s.add_concept("演员");
    let singer = s.add_concept("歌手");
    let person = s.add_concept("人物");
    s.add_concept_is_a(male_actor, actor, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.85));
    s.add_entity_is_a(liu, male_actor, IsAMeta::new(Source::Bracket, 0.95));
    s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
    s.add_entity_is_a(liu_bare, singer, IsAMeta::new(Source::Tag, 0.5));

    let mut d = DeltaOverlay::new();
    d.add_entity("张学友", None);
    d.upsert_entity_is_a("张学友", None, "歌手", IsAMeta::new(Source::Infobox, 0.92));
    OverlayView::new(FrozenTaxonomy::freeze(&s)).apply(&d)
}

/// Golden documents × option shapes, as both query kinds. Covers resolved
/// mentions, the disambiguated full key, an alias, concept-name spans,
/// out-of-vocabulary text, and the empty document.
fn probes() -> Vec<Query> {
    let docs = [
        "刘德华和张学友。",
        "歌手张学友在香港开演唱会。",
        "刘德华（中国香港男演员）的代表作品。",
        "Andy Lau 是演员。",
        "火星话xyzzy没有词典词。",
        "",
    ];
    let options = [
        TagOptions::default(),
        TagOptions::default().with_top_k(1),
        TagOptions::default().with_top_k(2).with_beam(1),
        TagOptions::default().with_min_score(0.5),
    ];
    let mut queries = Vec::new();
    for doc in docs {
        for opts in &options {
            queries.push(Query::Tag {
                text: doc.to_string(),
                options: opts.clone(),
            });
            queries.push(Query::Classify {
                text: doc.to_string(),
                options: opts.clone(),
            });
        }
    }
    queries
}

/// Executes every probe and renders each response to its wire bytes.
fn rendered<T: TaxonomyRead>(service: &TaxonomyService<T>) -> Vec<String> {
    probes()
        .iter()
        .map(|q| wire::encode_response(&service.execute(q)).write())
        .collect()
}

#[test]
fn tag_responses_are_byte_identical_across_backends_and_threads() {
    let mut renders: Vec<(String, Vec<String>)> = Vec::new();
    for threads in [1usize, 2, 8] {
        renders.push((
            format!("frozen x{threads}"),
            rendered(&TaxonomyService::with_runtime(
                frozen(),
                Runtime::new(threads),
            )),
        ));
        renders.push((
            format!("view x{threads}"),
            rendered(&TaxonomyService::with_runtime(
                view(),
                Runtime::new(threads),
            )),
        ));
        renders.push((
            format!("overlay x{threads}"),
            rendered(&TaxonomyService::with_runtime(
                overlay(),
                Runtime::new(threads),
            )),
        ));
    }
    let (name0, baseline) = &renders[0];
    assert!(
        baseline.iter().any(|r| r.contains("歌手")),
        "baseline never tagged 歌手 — probes are not exercising the scorer"
    );
    for (name, r) in &renders[1..] {
        assert_eq!(r, baseline, "{name} diverged from {name0}");
    }
}

#[test]
fn batched_tag_queries_match_single_execution() {
    let service = TaxonomyService::new(frozen());
    let queries = probes();
    let batched = service.execute_batch(&queries);
    assert_eq!(batched.len(), queries.len());
    for (q, b) in queries.iter().zip(&batched) {
        let single = service.execute(q);
        assert_eq!(
            wire::encode_response(b).write(),
            wire::encode_response(&single).write(),
            "batch and single execution disagree on {q:?}"
        );
    }
}

#[test]
fn golden_documents_actually_tag() {
    let service = TaxonomyService::new(frozen());
    let query = Query::Tag {
        text: "刘德华和张学友。".to_string(),
        options: TagOptions::default(),
    };
    match service.execute(&query).result {
        Ok(Response::Tags(output)) => {
            assert!(!output.spans.is_empty(), "no spans resolved");
            assert!(
                output.concepts.iter().any(|h| h.name == "歌手"),
                "shared concept 歌手 missing from {:?}",
                output.concepts
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}
