//! Golden-format locks for snapshot v2 (ISSUE 4 satellite) and v3
//! (ISSUE 8 satellite).
//!
//! `tests/fixtures/golden_v2.cnpb` and `tests/fixtures/golden_v3.cnpb`
//! are committed snapshots of the small deterministic taxonomy below.
//! Two locks hold each format down:
//!
//! 1. the fixture must keep decoding and answering the known queries, so
//!    an accidental codec change that would orphan deployed snapshots
//!    fails CI instead of surfacing at the next production boot;
//! 2. re-encoding today's freeze of the same store must reproduce the
//!    fixture byte-for-byte, so silent encoder drift is caught too.
//!
//! An *intentional* format change bumps the version, keeps this fixture
//! decodable through `Snapshot::load` dispatch, and regenerates a new
//! fixture via the ignored `regenerate_golden_fixture` test:
//!
//! ```sh
//! cargo test --test golden_snapshot -- --ignored regenerate_golden_fixture
//! ```

use cn_probase::serve::TaxonomyService;
use cn_probase::taxonomy::persist::encode_frozen_v3;
use cn_probase::taxonomy::{
    FrozenTaxonomy, FrozenTaxonomyView, IsAMeta, Snapshot, Source, TaxonomyStore,
};
use cn_probase::ProbaseApi;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v2.cnpb")
}

fn fixture_path_v3() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v3.cnpb")
}

/// The fixture taxonomy: 男演员 → 演员 → 人物, 歌手 → 人物, two 刘德华
/// senses (one disambiguated, with alias + attributes), 张学友.
fn golden_store() -> TaxonomyStore {
    let mut s = TaxonomyStore::new();
    let liu = s.add_entity("刘德华", Some("中国香港男演员"));
    let liu_bare = s.add_entity("刘德华", None);
    let zhang = s.add_entity("张学友", None);
    s.add_alias(liu, "Andy Lau");
    s.add_attribute(liu, "职业");
    s.add_attribute(liu, "代表作品");
    let male_actor = s.add_concept("男演员");
    let actor = s.add_concept("演员");
    let singer = s.add_concept("歌手");
    let person = s.add_concept("人物");
    s.add_concept_is_a(male_actor, actor, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.85));
    s.add_entity_is_a(liu, male_actor, IsAMeta::new(Source::Bracket, 0.95));
    s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
    s.add_entity_is_a(liu_bare, singer, IsAMeta::new(Source::Tag, 0.5));
    s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Infobox, 0.92));
    s
}

#[test]
fn golden_fixture_decodes_and_answers_known_queries() {
    let bytes = std::fs::read(fixture_path()).expect("fixture exists and is committed");
    let snapshot = Snapshot::load(&bytes).expect("fixture decodes");
    assert_eq!(snapshot.version(), 2);
    let api = ProbaseApi::from_frozen(snapshot.into_frozen().expect("fixture freezes"));
    let f = api.frozen();

    assert_eq!(f.num_entities(), 3);
    assert_eq!(f.num_concepts(), 4);
    assert_eq!(f.num_is_a(), 7);

    // men2ent: bare name resolves every sense, full key exactly one,
    // alias one.
    assert_eq!(api.men2ent("刘德华").len(), 2);
    let hits = api.men2ent("刘德华（中国香港男演员）");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].key, "刘德华（中国香港男演员）");
    assert_eq!(api.men2ent("Andy Lau").len(), 1);
    assert!(api.men2ent("不存在").is_empty());

    // getConcept: direct then transitive, nearest-first.
    let liu = hits[0].id;
    assert_eq!(api.get_concept(liu, false), vec!["男演员", "歌手"]);
    assert_eq!(
        api.get_concept(liu, true),
        vec!["男演员", "歌手", "演员", "人物"]
    );

    // getEntity: transitive reach through the concept chain, each entity
    // reported once.
    assert!(api.get_entity("人物", false, usize::MAX).is_empty());
    let all = api.get_entity("人物", true, usize::MAX);
    assert_eq!(all.len(), 3);
    assert!(all.contains(&"刘德华（中国香港男演员）".to_string()));
    assert!(all.contains(&"刘德华".to_string()));
    assert!(all.contains(&"张学友".to_string()));

    // Precomputed topology survives the disk round-trip.
    let male_actor = f.find_concept("男演员").unwrap();
    let person = f.find_concept("人物").unwrap();
    assert_eq!(f.depth(male_actor), 2);
    assert_eq!(f.depth(person), 0);
    assert_eq!(f.ancestors_of(male_actor).len(), 2);
}

#[test]
fn golden_fixture_matches_current_encoder_byte_for_byte() {
    let committed = std::fs::read(fixture_path()).expect("fixture exists");
    let fresh = FrozenTaxonomy::freeze(&golden_store()).encode();
    assert_eq!(
        fresh.as_ref(),
        committed.as_slice(),
        "encoder output drifted from the committed golden fixture; if the \
         format change is intentional, bump the snapshot version and \
         regenerate via `cargo test --test golden_snapshot -- --ignored \
         regenerate_golden_fixture`"
    );
}

#[test]
fn golden_v3_fixture_decodes_and_answers_known_queries() {
    let bytes = std::fs::read(fixture_path_v3()).expect("v3 fixture exists and is committed");
    let snapshot = Snapshot::load(&bytes).expect("v3 fixture decodes");
    assert_eq!(snapshot.version(), 3);
    let Snapshot::View(view) = snapshot else {
        panic!("a v3 snapshot must decode to the borrowed view");
    };
    let api = ProbaseApi::from_service(TaxonomyService::new(*view));
    let f: &FrozenTaxonomyView = api.frozen();

    assert_eq!(f.num_entities(), 3);
    assert_eq!(f.num_concepts(), 4);
    assert_eq!(f.num_is_a(), 7);

    // The same known answers as the v2 fixture — the wire format changed,
    // the taxonomy must not have.
    assert_eq!(api.men2ent("刘德华").len(), 2);
    let hits = api.men2ent("刘德华（中国香港男演员）");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].key, "刘德华（中国香港男演员）");
    assert_eq!(api.men2ent("Andy Lau").len(), 1);
    assert!(api.men2ent("不存在").is_empty());

    let liu = hits[0].id;
    assert_eq!(api.get_concept(liu, false), vec!["男演员", "歌手"]);
    assert_eq!(
        api.get_concept(liu, true),
        vec!["男演员", "歌手", "演员", "人物"]
    );

    assert!(api.get_entity("人物", false, usize::MAX).is_empty());
    let all = api.get_entity("人物", true, usize::MAX);
    assert_eq!(all.len(), 3);
    assert!(all.contains(&"刘德华（中国香港男演员）".to_string()));
    assert!(all.contains(&"刘德华".to_string()));
    assert!(all.contains(&"张学友".to_string()));

    // Succinct-closure topology decodes straight off the buffer.
    let male_actor = f.find_concept("男演员").unwrap();
    let person = f.find_concept("人物").unwrap();
    assert_eq!(f.depth(male_actor), 2);
    assert_eq!(f.depth(person), 0);
    assert_eq!(f.ancestors(male_actor).count(), 2);
    assert!(f.ancestor_contains(male_actor, person));
    assert!(!f.ancestor_contains(person, male_actor));
}

#[test]
fn golden_v3_fixture_matches_current_encoder_byte_for_byte() {
    let committed = std::fs::read(fixture_path_v3()).expect("v3 fixture exists");
    let fresh = encode_frozen_v3(&FrozenTaxonomy::freeze(&golden_store()));
    assert_eq!(
        fresh.as_ref(),
        committed.as_slice(),
        "v3 encoder output drifted from the committed golden fixture; if          the format change is intentional, bump the snapshot version and          regenerate via `cargo test --test golden_snapshot -- --ignored          regenerate_golden_fixture`"
    );
}

#[test]
fn v3_encoding_is_at_least_a_quarter_smaller_than_v2() {
    // The golden fixture is too tiny for a size comparison — 17 section
    // headers dominate a 3-entity taxonomy — so the compression lock uses
    // a representative store: hundreds of entities, a concept hierarchy,
    // and the handful of distinct edge provenances real extraction
    // produces (what `MDCT` deduplicates).
    let mut s = TaxonomyStore::new();
    let person = s.add_concept("人物");
    let mut concepts = Vec::new();
    for i in 0..40 {
        let c = s.add_concept(&format!("职业{i}"));
        s.add_concept_is_a(c, person, IsAMeta::new(Source::SubConcept, 0.9));
        concepts.push(c);
    }
    for i in 0..400 {
        let e = s.add_entity(&format!("人名{i}"), (i % 3 == 0).then_some("演员"));
        s.add_entity_is_a(
            e,
            concepts[i % concepts.len()],
            IsAMeta::new(Source::Tag, 0.9),
        );
        s.add_entity_is_a(
            e,
            concepts[(i * 7 + 1) % concepts.len()],
            IsAMeta::new(Source::Infobox, 0.92),
        );
    }
    let frozen = FrozenTaxonomy::freeze(&s);
    let v2 = frozen.encode();
    let v3 = encode_frozen_v3(&frozen);
    assert!(
        (v3.len() as f64) <= 0.75 * v2.len() as f64,
        "v3 ({} B) must be at least 25% smaller than v2 ({} B)",
        v3.len(),
        v2.len()
    );
}

/// Not a check — regenerates the committed fixtures after an intentional
/// format change. Run explicitly with `-- --ignored`.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let frozen = FrozenTaxonomy::freeze(&golden_store());
    frozen.save_to_file(&path).unwrap();
    println!("regenerated {}", path.display());
    let path_v3 = fixture_path_v3();
    cn_probase::taxonomy::persist::save_frozen_v3_to_file(&frozen, &path_v3).unwrap();
    println!("regenerated {}", path_v3.display());
}
