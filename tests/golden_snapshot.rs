//! Golden-format lock for snapshot v2 (ISSUE 4 satellite).
//!
//! `tests/fixtures/golden_v2.cnpb` is a committed v2 snapshot of the small
//! deterministic taxonomy below. Two locks hold the format down:
//!
//! 1. the fixture must keep decoding and answering the known queries, so
//!    an accidental codec change that would orphan deployed snapshots
//!    fails CI instead of surfacing at the next production boot;
//! 2. re-encoding today's freeze of the same store must reproduce the
//!    fixture byte-for-byte, so silent encoder drift is caught too.
//!
//! An *intentional* format change bumps the version, keeps this fixture
//! decodable through `Snapshot::load` dispatch, and regenerates a new
//! fixture via the ignored `regenerate_golden_fixture` test:
//!
//! ```sh
//! cargo test --test golden_snapshot -- --ignored regenerate_golden_fixture
//! ```

use cn_probase::taxonomy::{FrozenTaxonomy, IsAMeta, Snapshot, Source, TaxonomyStore};
use cn_probase::ProbaseApi;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v2.cnpb")
}

/// The fixture taxonomy: 男演员 → 演员 → 人物, 歌手 → 人物, two 刘德华
/// senses (one disambiguated, with alias + attributes), 张学友.
fn golden_store() -> TaxonomyStore {
    let mut s = TaxonomyStore::new();
    let liu = s.add_entity("刘德华", Some("中国香港男演员"));
    let liu_bare = s.add_entity("刘德华", None);
    let zhang = s.add_entity("张学友", None);
    s.add_alias(liu, "Andy Lau");
    s.add_attribute(liu, "职业");
    s.add_attribute(liu, "代表作品");
    let male_actor = s.add_concept("男演员");
    let actor = s.add_concept("演员");
    let singer = s.add_concept("歌手");
    let person = s.add_concept("人物");
    s.add_concept_is_a(male_actor, actor, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.85));
    s.add_entity_is_a(liu, male_actor, IsAMeta::new(Source::Bracket, 0.95));
    s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
    s.add_entity_is_a(liu_bare, singer, IsAMeta::new(Source::Tag, 0.5));
    s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Infobox, 0.92));
    s
}

#[test]
fn golden_fixture_decodes_and_answers_known_queries() {
    let bytes = std::fs::read(fixture_path()).expect("fixture exists and is committed");
    let snapshot = Snapshot::load(&bytes).expect("fixture decodes");
    assert_eq!(snapshot.version(), 2);
    let api = ProbaseApi::from_frozen(snapshot.into_frozen());
    let f = api.frozen();

    assert_eq!(f.num_entities(), 3);
    assert_eq!(f.num_concepts(), 4);
    assert_eq!(f.num_is_a(), 7);

    // men2ent: bare name resolves every sense, full key exactly one,
    // alias one.
    assert_eq!(api.men2ent("刘德华").len(), 2);
    let hits = api.men2ent("刘德华（中国香港男演员）");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].key, "刘德华（中国香港男演员）");
    assert_eq!(api.men2ent("Andy Lau").len(), 1);
    assert!(api.men2ent("不存在").is_empty());

    // getConcept: direct then transitive, nearest-first.
    let liu = hits[0].id;
    assert_eq!(api.get_concept(liu, false), vec!["男演员", "歌手"]);
    assert_eq!(
        api.get_concept(liu, true),
        vec!["男演员", "歌手", "演员", "人物"]
    );

    // getEntity: transitive reach through the concept chain, each entity
    // reported once.
    assert!(api.get_entity("人物", false, usize::MAX).is_empty());
    let all = api.get_entity("人物", true, usize::MAX);
    assert_eq!(all.len(), 3);
    assert!(all.contains(&"刘德华（中国香港男演员）".to_string()));
    assert!(all.contains(&"刘德华".to_string()));
    assert!(all.contains(&"张学友".to_string()));

    // Precomputed topology survives the disk round-trip.
    let male_actor = f.find_concept("男演员").unwrap();
    let person = f.find_concept("人物").unwrap();
    assert_eq!(f.depth(male_actor), 2);
    assert_eq!(f.depth(person), 0);
    assert_eq!(f.ancestors_of(male_actor).len(), 2);
}

#[test]
fn golden_fixture_matches_current_encoder_byte_for_byte() {
    let committed = std::fs::read(fixture_path()).expect("fixture exists");
    let fresh = FrozenTaxonomy::freeze(&golden_store()).encode();
    assert_eq!(
        fresh.as_ref(),
        committed.as_slice(),
        "encoder output drifted from the committed golden fixture; if the \
         format change is intentional, bump the snapshot version and \
         regenerate via `cargo test --test golden_snapshot -- --ignored \
         regenerate_golden_fixture`"
    );
}

/// Not a check — regenerates the committed fixture after an intentional
/// format change. Run explicitly with `-- --ignored`.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    FrozenTaxonomy::freeze(&golden_store())
        .save_to_file(&path)
        .unwrap();
    println!("regenerated {}", path.display());
}
