//! Offline drop-in for the subset of the `parking_lot` API this workspace
//! uses. The build environment has no crates.io access, so the real crate
//! cannot be fetched; this wrapper provides `parking_lot`'s ergonomics
//! (infallible `lock()`, no poisoning) on top of `std::sync::Mutex`.

use std::sync;

/// A mutex whose `lock` never returns a poison error, matching
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type re-used from the standard library; `parking_lot`'s guard has
/// the same `Deref`/`DerefMut` surface.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poisoning (parking_lot has no
    /// poisoning concept, so a panicked holder must not wedge the lock).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the inner std mutex");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
