//! Offline drop-in for the subset of the `parking_lot` API this workspace
//! uses. The build environment has no crates.io access, so the real crate
//! cannot be fetched; this wrapper provides `parking_lot`'s ergonomics
//! (infallible `lock()`, no poisoning) on top of `std::sync::Mutex`.

use std::sync;

/// A mutex whose `lock` never returns a poison error, matching
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type re-used from the standard library; `parking_lot`'s guard has
/// the same `Deref`/`DerefMut` surface.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poisoning (parking_lot has no
    /// poisoning concept, so a panicked holder must not wedge the lock).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors,
/// matching `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard types re-used from the standard library; `parking_lot`'s guards
/// have the same `Deref`/`DerefMut` surface.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn rwlock_survives_poisoning() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        #[allow(clippy::disallowed_methods)] // vendored drop-in test; no cnp_runtime here
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the inner std rwlock");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        #[allow(clippy::disallowed_methods)] // vendored drop-in test; no cnp_runtime here
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the inner std mutex");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
