//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched. This implementation keeps the call-site API identical
//! (`StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `SliceRandom::shuffle`) so the workspace can swap in the real `rand`
//! without source changes once a registry is available. Streams are
//! deterministic per seed, which is all the corpus generator and the
//! benches rely on — no cryptographic claims are made.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding interface; the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in real
/// `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits, exact in f32 — never rounds up to 1.0
        // (casting next_f64() could).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )+};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Rounding of start + frac*(end-start) can land exactly on
                // the excluded bound; retry (probability ~2^-24 per draw).
                loop {
                    let v = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )+};
}

float_sample_range!(f64, f32);

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p={p} not a probability"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_are_unit() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
