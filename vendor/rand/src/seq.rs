//! Slice helpers (`rand::seq` subset).

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
