//! Offline drop-in for `crossbeam::scope`, implemented over
//! `std::thread::scope` (stable since Rust 1.63). The build environment
//! has no crates.io access; this wrapper keeps crossbeam's call-site shape
//! — the spawn closure receives the scope, and both `scope` and `join`
//! return `thread::Result` — so workspace code is unchanged.

use std::thread;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope so workers can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let reentrant = Scope { inner: self.inner };
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&reentrant)),
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Creates a scope in which all spawned threads are joined before return.
///
/// Unlike crossbeam this can only report `Ok`: a panic in a thread that the
/// caller never joins propagates out of `std::thread::scope` as a panic
/// instead of an `Err`. Workspace call sites join every handle, so the two
/// behaviours coincide.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_share_borrowed_state_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("scope");
        assert_eq!(total, 36);
    }

    #[test]
    fn joined_panics_surface_as_err() {
        let caught = super::scope(|scope| scope.spawn(|_| panic!("worker died")).join().is_err())
            .expect("scope");
        assert!(caught);
    }

    #[test]
    fn nested_spawn_through_the_closure_arg() {
        let v = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .expect("scope");
        assert_eq!(v, 42);
    }
}
