//! Offline drop-in for the subset of the `bytes` crate this workspace
//! uses (the build environment has no crates.io access). `Bytes` and
//! `BytesMut` are thin wrappers over `Vec<u8>`; `Buf` is implemented for
//! `&[u8]` and advances the slice in place, exactly like the real crate.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable byte buffer (frozen form of [`BytesMut`]). Reference-counted
/// like the real crate: `clone` shares the allocation instead of copying
/// it, so zero-copy views over a snapshot buffer stay zero-copy when
/// cloned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes(Arc::from(&[][..]))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side trait (`bytes::BufMut` subset, little-endian putters).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait (`bytes::Buf` subset). Getters advance the cursor and
/// panic on underflow, like the real crate — callers bounds-check with
/// [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "Buf::copy_to_slice: buffer underflow ({} < {})",
            self.len(),
            dst.len()
        );
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(1.5);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_slice(b"tail");

        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.remaining(), 4);
        let mut tail = [0u8; 4];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
