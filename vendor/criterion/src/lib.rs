//! Offline drop-in for the subset of Criterion.rs this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and
//! `Bencher::iter`.
//!
//! Semantics mirror Criterion where it matters for correctness:
//!
//! * invoked by `cargo bench` (cargo passes `--bench`) it warms up, runs
//!   `sample_size` timed samples per benchmark and reports mean ns/iter;
//! * invoked any other way (e.g. `cargo test`, which runs bench targets
//!   with no `--bench` flag) it runs every benchmark exactly once as a
//!   smoke test, like Criterion's test mode.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (Criterion forwards to
/// `std::hint::black_box` on modern toolchains too).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// One iteration per benchmark (`cargo test` smoke run).
    Test,
}

#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    /// Substring filter from `cargo bench <filter>`; `None` runs everything.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Test,
            filter: None,
        }
    }
}

impl Criterion {
    /// Decide bench vs. test mode and pick up the name filter from the
    /// process arguments, the same signals real Criterion uses: `cargo
    /// bench` passes `--bench`, and a positional argument is a substring
    /// filter on benchmark names.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                self.mode = Mode::Bench;
            } else if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            run_one(self.mode, 100, name, f);
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| label.contains(f))
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        if self.criterion.matches(&label) {
            run_one(self.criterion.mode, self.sample_size, &label, f);
        }
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(mode: Mode, sample_size: usize, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    match mode {
        Mode::Test => {
            f(&mut bencher);
            println!("{label:<50} ok (test mode, 1 iter)");
        }
        Mode::Bench => {
            // Warm-up sample, then timed samples.
            f(&mut bencher);
            let mut total = Duration::ZERO;
            let mut iters = 0u64;
            for _ in 0..sample_size {
                f(&mut bencher);
                total += bencher.elapsed;
                iters += bencher.iters;
            }
            let mean_ns = if iters == 0 {
                0.0
            } else {
                total.as_nanos() as f64 / iters as f64
            };
            println!("{label:<50} {mean_ns:>14.1} ns/iter ({iters} iters)");
        }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`. In bench mode each call to `iter` is one sample of
    /// one iteration; the harness aggregates samples into a mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.iters = 1;
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// `criterion_group!(name, target_a, target_b, ...)` — the simple form the
/// workspace uses (no custom `config = ...`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("one", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn name_filter_skips_non_matching_benches() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: Some("fig2".to_string()),
        };
        let mut ran = Vec::new();
        let mut group = c.benchmark_group("fig2_pipeline");
        group.bench_function("generation", |b| b.iter(|| ran.push("fig2")));
        group.finish();
        let mut group = c.benchmark_group("table1");
        group.bench_function("comparison", |b| b.iter(|| ran.push("table1")));
        group.finish();
        assert_eq!(ran, ["fig2"], "only the matching group's bench runs");
    }

    #[test]
    fn bench_mode_runs_warmup_plus_samples() {
        let mut c = Criterion {
            mode: Mode::Bench,
            filter: None,
        };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(5).bench_function("one", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 6, "1 warm-up + 5 samples");
    }
}
