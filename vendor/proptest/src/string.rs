//! Character-class regex string strategies.
//!
//! Real proptest accepts any regex as a `&str` strategy. This workspace
//! only uses the character-class form `[class]` or `[class]{m,n}` (with
//! CJK ranges such as `一-龥`), so that is what this parser supports —
//! anything else panics loudly rather than generating wrong data.

use crate::test_runner::TestRng;

/// A parsed pattern: alternatives of codepoint ranges plus a repetition.
struct Pattern {
    /// Inclusive codepoint ranges.
    ranges: Vec<(u32, u32)>,
    /// Total number of codepoints across `ranges` (for uniform sampling).
    total: u64,
    min_len: usize,
    max_len: usize,
}

fn parse(pattern: &str) -> Pattern {
    let mut chars = pattern.chars().peekable();
    assert_eq!(
        chars.next(),
        Some('['),
        "unsupported proptest regex {pattern:?}: expected a character class"
    );
    let mut class: Vec<char> = Vec::new();
    for c in chars.by_ref() {
        if c == ']' {
            break;
        }
        class.push(c);
    }
    assert!(!class.is_empty(), "empty character class in {pattern:?}");

    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` forms a range when '-' sits between two chars.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "inverted range in {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            let c = class[i] as u32;
            ranges.push((c, c));
            i += 1;
        }
    }

    // Optional repetition: `{m,n}` (inclusive) or `{n}`.
    let rest: String = chars.collect();
    let (min_len, max_len) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported proptest regex suffix in {pattern:?}"));
        match inner.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("bad repetition min"),
                n.trim().parse().expect("bad repetition max"),
            ),
            None => {
                let n = inner.trim().parse().expect("bad repetition count");
                (n, n)
            }
        }
    };
    assert!(min_len <= max_len, "inverted repetition in {pattern:?}");

    let total = ranges.iter().map(|&(lo, hi)| u64::from(hi - lo) + 1).sum();
    Pattern {
        ranges,
        total,
        min_len,
        max_len,
    }
}

fn sample_char(p: &Pattern, rng: &mut TestRng) -> char {
    let mut idx = rng.gen_range(0..p.total);
    for &(lo, hi) in &p.ranges {
        let size = u64::from(hi - lo) + 1;
        if idx < size {
            // CJK ranges used here never straddle the surrogate gap, and
            // out-of-range picks would be a parser bug — fail loudly.
            return char::from_u32(lo + idx as u32)
                .expect("character class produced an invalid codepoint");
        }
        idx -= size;
    }
    unreachable!("sample index exceeded class size")
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let p = parse(pattern);
    let len = rng.gen_range(p.min_len..=p.max_len);
    (0..len).map(|_| sample_char(&p, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_char_class() {
        let mut rng = TestRng::for_test("single");
        for _ in 0..100 {
            let s = generate("[a-e]", &mut rng);
            assert_eq!(s.chars().count(), 1);
            assert!(('a'..='e').contains(&s.chars().next().unwrap()));
        }
    }

    #[test]
    fn cjk_class_with_repetition() {
        let mut rng = TestRng::for_test("cjk");
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..300 {
            let s = generate("[一-龥a-z]{0,6}", &mut rng);
            let n = s.chars().count();
            lengths.insert(n);
            assert!(n <= 6);
            assert!(s
                .chars()
                .all(|c| ('一'..='龥').contains(&c) || c.is_ascii_lowercase()));
        }
        assert!(lengths.len() > 3, "should exercise several lengths");
    }

    #[test]
    fn literal_chars_in_class() {
        let mut rng = TestRng::for_test("literal");
        for _ in 0..100 {
            let s = generate("[（）xy]{2,3}", &mut rng);
            assert!(s.chars().all(|c| "（）xy".contains(c)));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported proptest regex")]
    fn non_class_patterns_are_rejected() {
        let mut rng = TestRng::for_test("reject");
        generate("abc+", &mut rng);
    }
}
