//! Offline drop-in for the subset of proptest this workspace's tests use.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched. This implementation keeps call sites source-compatible:
//!
//! * the [`proptest!`] macro (named-argument `arg in strategy` form);
//! * `prop_assert!` / `prop_assert_eq!`;
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges,
//!   `&str` character-class regexes (`"[一-龥a-z]{1,4}"`), tuples, and
//!   [`collection::vec`];
//! * `proptest::bool::ANY`.
//!
//! Differences from real proptest, acceptable for this workspace: no
//! shrinking on failure (the failing input is printed instead) and a fixed
//! deterministic seed per test derived from the test's module path.

pub mod bool;
pub mod collection;
pub mod string;
pub mod test_runner;

use test_runner::TestRng;

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 128;

/// A generator of random values. Unlike real proptest there is no value
/// tree/shrinking; `generate` produces the value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies pass by reference transparently.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

float_range_strategy!(f64, f32);

/// String literals are character-class regex strategies, as in proptest.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Source-compatible with proptest's macro for the `arg in strategy` form.
/// Each test runs [`CASES`] deterministic random cases; a failing case
/// panics immediately with the generated inputs visible in the assert
/// message (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _ in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("self");
        let strat = (0usize..5, 0.0f32..=1.0).prop_map(|(i, f)| i as f32 + f);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((0.0..6.0).contains(&v));
        }
    }

    proptest! {
        /// The macro itself, end to end: doc attrs, multiple args,
        /// trailing comma, vec-of-tuple strategies.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(("[a-c]{1,3}", 0u32..10), 0..8),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(xs.len() < 8);
            for (s, n) in &xs {
                prop_assert!((1..=3).contains(&s.chars().count()));
                prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
                prop_assert!(*n < 10);
            }
            let _ = flag;
        }
    }
}
