//! Boolean strategies (`proptest::bool` subset).

use crate::test_runner::TestRng;
use crate::Strategy;

#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniformly random booleans, matching `proptest::bool::ANY`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool_even()
    }
}
