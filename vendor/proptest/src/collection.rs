//! Collection strategies (`proptest::collection` subset).

use core::ops::Range;

use crate::test_runner::TestRng;
use crate::Strategy;

/// `Vec` strategy: length uniform in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "collection::vec: empty size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_bounds() {
        let mut rng = TestRng::for_test("vec-bounds");
        let strat = vec(0u32..5, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
