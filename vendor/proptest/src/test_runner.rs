//! Deterministic RNG for property tests: seeded from the test's name so
//! every test exercises a distinct but reproducible stream.

use rand::{Rng as _, SeedableRng, StdRng};

pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    pub fn gen_bool_even(&mut self) -> bool {
        self.0.gen_bool(0.5)
    }
}
