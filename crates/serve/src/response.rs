//! The response side of Serving API v1: typed results, typed errors, and
//! the generation-stamped [`QueryResponse`] envelope.

use crate::query::Cursor;
use cnp_tag::{TagHit, TagOutput};
use cnp_taxonomy::{ConceptId, EntityId};
use std::fmt;

/// Why a pagination cursor was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorError {
    /// The wire token did not parse.
    Malformed,
    /// The cursor was minted on a different snapshot generation; its
    /// offsets are meaningless after a hot-swap. Restart from page one.
    WrongGeneration {
        /// Generation the cursor was minted on.
        cursor: u64,
        /// Generation currently serving.
        serving: u64,
    },
    /// The cursor belongs to a different query (or the same query with
    /// different options).
    WrongQuery,
    /// The offset lies beyond the result.
    OutOfRange {
        /// Offset the cursor carried.
        offset: usize,
        /// Total items in the result.
        total: usize,
    },
}

impl fmt::Display for CursorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CursorError::Malformed => write!(f, "cursor token is malformed"),
            CursorError::WrongGeneration { cursor, serving } => write!(
                f,
                "cursor from generation {cursor} replayed against generation {serving}"
            ),
            CursorError::WrongQuery => write!(f, "cursor belongs to a different query"),
            CursorError::OutOfRange { offset, total } => {
                write!(f, "cursor offset {offset} beyond result of {total}")
            }
        }
    }
}

/// Why a query could not be answered. Distinct from an *empty* result: a
/// known entity with no hypernyms answers `Ok` with an empty list, while a
/// name the taxonomy has never seen answers one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The mention resolves to no entity sense.
    UnknownMention(String),
    /// The entity key matches no entity.
    UnknownEntity(String),
    /// The concept name matches no concept.
    UnknownConcept(String),
    /// The pagination cursor was rejected; see [`CursorError`].
    InvalidCursor(CursorError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownMention(m) => write!(f, "unknown mention {m:?}"),
            QueryError::UnknownEntity(e) => write!(f, "unknown entity {e:?}"),
            QueryError::UnknownConcept(c) => write!(f, "unknown concept {c:?}"),
            QueryError::InvalidCursor(e) => write!(f, "invalid cursor: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One page of a list result.
#[derive(Debug, Clone, PartialEq)]
pub struct Paged<T> {
    /// The page's items, in the query's stable enumeration order.
    pub items: Vec<T>,
    /// Total items across all pages (after filtering, before paging).
    pub total: usize,
    /// Cursor for the next page; `None` on the last page.
    pub next: Option<Cursor>,
}

/// A resolved entity sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sense {
    /// Snapshot handle (valid within the response's generation).
    pub id: EntityId,
    /// Surface name.
    pub name: String,
    /// Bracket disambiguation, if the sense has one.
    pub disambig: Option<String>,
    /// Full display key (`name（disambig）`, or the bare name).
    pub key: String,
}

/// A hypernym/ancestor concept hit.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptHit {
    /// Snapshot handle (valid within the response's generation).
    pub id: ConceptId,
    /// Concept name.
    pub name: String,
    /// Depth in the concept DAG (longest chain to a root).
    pub depth: u32,
    /// Whether the hit is a *direct* edge of the query subject (as opposed
    /// to one reached through the transitive closure).
    pub direct: bool,
    /// Confidence of the direct edge; `None` for transitive hits.
    pub confidence: Option<f32>,
}

/// A hyponym entity hit.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityHit {
    /// Snapshot handle (valid within the response's generation).
    pub id: EntityId,
    /// Full display key.
    pub key: String,
    /// The concept whose hyponym row produced the hit — the queried
    /// concept itself, or the transitive subconcept it was reached through.
    pub via: ConceptId,
    /// Confidence of the entity's isA edge to `via`.
    pub confidence: f32,
}

/// One sense of a mention together with its direct concepts — the
/// disambiguation view behind [`crate::Query::MentionSenses`].
#[derive(Debug, Clone, PartialEq)]
pub struct SenseConcepts {
    /// The sense.
    pub sense: Sense,
    /// Its direct concepts, in snapshot edge order.
    pub concepts: Vec<ConceptHit>,
}

/// The typed result of a [`crate::Query`], one variant per query family.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `men2ent` senses.
    Senses(Vec<Sense>),
    /// `MentionSenses`: each sense with its direct concepts.
    SenseConcepts(Vec<SenseConcepts>),
    /// `getConcept` (either addressing mode): one page of hypernyms.
    Concepts(Paged<ConceptHit>),
    /// `getEntity`: one page of hyponym entities.
    Entities(Paged<EntityHit>),
    /// `AncestorsOf`: all transitive ancestors, nearest-first.
    Ancestors(Vec<ConceptHit>),
    /// `IsA` verdict.
    IsA {
        /// Whether the isA relation holds.
        holds: bool,
    },
    /// `Tag`: the document's evidence spans plus the ranked concepts.
    Tags(TagOutput),
    /// `Classify`: the ranked concepts only.
    Classified(Vec<TagHit>),
}

/// The response envelope: every answer is stamped with the snapshot
/// generation it was computed on, so a client interleaving queries with
/// hot-swaps can tell which state of the world each answer reflects.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Generation of the snapshot that answered (monotonically increasing
    /// across [`crate::TaxonomyService::swap`] calls, starting at 1).
    pub generation: u64,
    /// The typed result or the typed refusal.
    pub result: Result<Response, QueryError>,
}
