//! Wire-facing serde for the serving protocol: [`Query`] and
//! [`QueryResponse`] as JSON documents, plus the error → HTTP-status
//! mapping the network front-end uses.
//!
//! The encoding is deliberately flat and self-describing:
//!
//! ```json
//! {"op":"getEntity","concept":"人物",
//!  "options":{"transitive":true,"minConfidence":0.5,"limit":10,
//!             "cursor":"v1.g1.o10.q..."}}
//! ```
//!
//! comes back as
//!
//! ```json
//! {"generation":1,
//!  "result":{"type":"entities","items":[…],"total":123,"next":"v1.…"}}
//! ```
//!
//! or, on a typed refusal,
//!
//! ```json
//! {"generation":1,
//!  "error":{"kind":"unknownConcept","name":"不存在"}}
//! ```
//!
//! Every enum in the protocol round-trips exactly (`encode → decode` is
//! the identity, asserted by unit and integration tests), so the load
//! harness and any non-Rust client can rely on the documented shape.
//! Pagination cursors travel as the opaque tokens of
//! [`Cursor::encode`] / [`Cursor::decode`].

use crate::json::Json;
use crate::query::{Cursor, ListOptions, PageRequest, Query};
use crate::response::{
    ConceptHit, CursorError, EntityHit, Paged, QueryError, QueryResponse, Response, Sense,
    SenseConcepts,
};
use cnp_tag::{SpanKind, TagHit, TagOptions, TagOutput, TagSpan};
use cnp_taxonomy::{ConceptId, EntityId};
use std::fmt;

/// Why a wire document could not be decoded into a protocol value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of the malformation.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire message: {}", self.message)
    }
}

impl std::error::Error for WireError {}

// ----- error → status mapping ----------------------------------------------

/// The HTTP status code a query result maps to: `200` for `Ok`, `404` for
/// the unknown-name family, `400` for a cursor that does not even parse,
/// and `409` for a structurally valid cursor rejected against the serving
/// state (wrong generation / query / range) — the client must restart its
/// walk, nothing was wrong with the request's syntax.
pub fn status_for(result: &Result<Response, QueryError>) -> u16 {
    match result {
        Ok(_) => 200,
        Err(e) => status_for_error(e),
    }
}

/// [`status_for`], for the error alone.
pub fn status_for_error(error: &QueryError) -> u16 {
    match error {
        QueryError::UnknownMention(_)
        | QueryError::UnknownEntity(_)
        | QueryError::UnknownConcept(_) => 404,
        QueryError::InvalidCursor(CursorError::Malformed) => 400,
        QueryError::InvalidCursor(_) => 409,
    }
}

/// The stable wire identifier of a [`QueryError`] variant.
pub fn error_kind(error: &QueryError) -> &'static str {
    match error {
        QueryError::UnknownMention(_) => "unknownMention",
        QueryError::UnknownEntity(_) => "unknownEntity",
        QueryError::UnknownConcept(_) => "unknownConcept",
        QueryError::InvalidCursor(_) => "invalidCursor",
    }
}

// ----- Query ---------------------------------------------------------------

/// Encodes a [`Query`] as its wire document.
pub fn encode_query(query: &Query) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
    match query {
        Query::Men2Ent { mention } => {
            push("op", Json::str("men2ent"));
            push("mention", Json::str(mention.clone()));
        }
        Query::MentionSenses { mention } => {
            push("op", Json::str("mentionSenses"));
            push("mention", Json::str(mention.clone()));
        }
        Query::GetConcept { entity, options } => {
            push("op", Json::str("getConcept"));
            push("entity", Json::str(entity.clone()));
            push("options", encode_options(options));
        }
        Query::GetConceptByMention { mention, options } => {
            push("op", Json::str("getConceptByMention"));
            push("mention", Json::str(mention.clone()));
            push("options", encode_options(options));
        }
        Query::GetEntity { concept, options } => {
            push("op", Json::str("getEntity"));
            push("concept", Json::str(concept.clone()));
            push("options", encode_options(options));
        }
        Query::AncestorsOf { concept } => {
            push("op", Json::str("ancestorsOf"));
            push("concept", Json::str(concept.clone()));
        }
        Query::IsA {
            sub,
            sup,
            transitive,
        } => {
            push("op", Json::str("isA"));
            push("sub", Json::str(sub.clone()));
            push("sup", Json::str(sup.clone()));
            push("transitive", Json::Bool(*transitive));
        }
        Query::Tag { text, options } => {
            push("op", Json::str("tag"));
            push("text", Json::str(text.clone()));
            push("options", encode_tag_options(options));
        }
        Query::Classify { text, options } => {
            push("op", Json::str("classify"));
            push("text", Json::str(text.clone()));
            push("options", encode_tag_options(options));
        }
    }
    Json::Obj(fields)
}

/// Decodes a wire document into a [`Query`]. Unknown `op`s and missing or
/// mistyped fields are typed [`WireError`]s (the server answers 400).
pub fn decode_query(doc: &Json) -> Result<Query, WireError> {
    let op = req_str(doc, "op")?;
    match op {
        "men2ent" => Ok(Query::Men2Ent {
            mention: req_str(doc, "mention")?.to_string(),
        }),
        "mentionSenses" => Ok(Query::MentionSenses {
            mention: req_str(doc, "mention")?.to_string(),
        }),
        "getConcept" => Ok(Query::GetConcept {
            entity: req_str(doc, "entity")?.to_string(),
            options: decode_options(doc.get("options"))?,
        }),
        "getConceptByMention" => Ok(Query::GetConceptByMention {
            mention: req_str(doc, "mention")?.to_string(),
            options: decode_options(doc.get("options"))?,
        }),
        "getEntity" => Ok(Query::GetEntity {
            concept: req_str(doc, "concept")?.to_string(),
            options: decode_options(doc.get("options"))?,
        }),
        "ancestorsOf" => Ok(Query::AncestorsOf {
            concept: req_str(doc, "concept")?.to_string(),
        }),
        "isA" => Ok(Query::IsA {
            sub: req_str(doc, "sub")?.to_string(),
            sup: req_str(doc, "sup")?.to_string(),
            transitive: doc
                .get("transitive")
                .map(|v| v.as_bool().ok_or_else(|| type_err("transitive", "bool")))
                .transpose()?
                .unwrap_or(false),
        }),
        "tag" => Ok(Query::Tag {
            text: req_str(doc, "text")?.to_string(),
            options: decode_tag_options(doc.get("options"))?,
        }),
        "classify" => Ok(Query::Classify {
            text: req_str(doc, "text")?.to_string(),
            options: decode_tag_options(doc.get("options"))?,
        }),
        other => Err(WireError::new(format!("unknown op {other:?}"))),
    }
}

fn encode_options(options: &ListOptions) -> Json {
    let mut fields = vec![
        ("transitive".to_string(), Json::Bool(options.transitive)),
        (
            "minConfidence".to_string(),
            Json::num(f64::from(options.min_confidence)),
        ),
    ];
    if options.page.limit != usize::MAX {
        fields.push(("limit".to_string(), Json::num(options.page.limit as f64)));
    }
    if let Some(cursor) = &options.page.cursor {
        fields.push(("cursor".to_string(), Json::str(cursor.encode())));
    }
    Json::Obj(fields)
}

fn decode_options(doc: Option<&Json>) -> Result<ListOptions, WireError> {
    let Some(doc) = doc else {
        return Ok(ListOptions::default());
    };
    if doc.is_null() {
        return Ok(ListOptions::default());
    }
    if !matches!(doc, Json::Obj(_)) {
        return Err(type_err("options", "object"));
    }
    let transitive = match doc.get("transitive") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| type_err("transitive", "bool"))?,
    };
    let min_confidence = match doc.get("minConfidence") {
        None => 0.0,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| type_err("minConfidence", "number"))? as f32,
    };
    let limit = match doc.get("limit") {
        None => usize::MAX,
        Some(Json::Null) => usize::MAX,
        Some(v) => usize::try_from(v.as_u64().ok_or_else(|| type_err("limit", "integer"))?)
            .map_err(|_| type_err("limit", "integer"))?,
    };
    let cursor = match doc.get("cursor") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let token = v.as_str().ok_or_else(|| type_err("cursor", "string"))?;
            Some(
                Cursor::decode(token)
                    .map_err(|e| WireError::new(format!("invalid cursor token: {e}")))?,
            )
        }
    };
    Ok(ListOptions {
        transitive,
        min_confidence,
        page: PageRequest { limit, cursor },
    })
}

/// Decodes the body of the dedicated `/v1/tag` endpoint: a tagging query
/// whose `op` *defaults to `"tag"`* when absent (the endpoint already
/// names the operation), with `"op":"classify"` selecting the
/// concepts-only variant. Any other op is rejected — the endpoint serves
/// the tagging workload only; general queries go to `/v1/query`.
pub fn decode_tag_query(doc: &Json) -> Result<Query, WireError> {
    let op = match doc.get("op") {
        None | Some(Json::Null) => "tag",
        Some(v) => v.as_str().ok_or_else(|| type_err("op", "string"))?,
    };
    let text = req_str(doc, "text")?.to_string();
    let options = decode_tag_options(doc.get("options"))?;
    match op {
        "tag" => Ok(Query::Tag { text, options }),
        "classify" => Ok(Query::Classify { text, options }),
        other => Err(WireError::new(format!(
            "op {other:?} is not a tagging query"
        ))),
    }
}

fn encode_tag_options(options: &TagOptions) -> Json {
    Json::Obj(vec![
        ("topK".to_string(), Json::num(options.top_k as f64)),
        (
            "minScore".to_string(),
            Json::num(f64::from(options.min_score)),
        ),
        ("beam".to_string(), Json::num(options.beam as f64)),
    ])
}

fn decode_tag_options(doc: Option<&Json>) -> Result<TagOptions, WireError> {
    let defaults = TagOptions::default();
    let Some(doc) = doc else {
        return Ok(defaults);
    };
    if doc.is_null() {
        return Ok(defaults);
    }
    if !matches!(doc, Json::Obj(_)) {
        return Err(type_err("options", "object"));
    }
    let top_k = match doc.get("topK") {
        None | Some(Json::Null) => defaults.top_k,
        Some(v) => usize::try_from(v.as_u64().ok_or_else(|| type_err("topK", "integer"))?)
            .map_err(|_| type_err("topK", "integer"))?,
    };
    let min_score = match doc.get("minScore") {
        None | Some(Json::Null) => defaults.min_score,
        Some(v) => v.as_f64().ok_or_else(|| type_err("minScore", "number"))? as f32,
    };
    let beam = match doc.get("beam") {
        None | Some(Json::Null) => defaults.beam,
        Some(v) => usize::try_from(v.as_u64().ok_or_else(|| type_err("beam", "integer"))?)
            .map_err(|_| type_err("beam", "integer"))?,
    };
    Ok(TagOptions {
        top_k,
        min_score,
        beam,
    })
}

// ----- QueryResponse -------------------------------------------------------

/// Encodes a [`QueryResponse`] envelope: `generation` plus either
/// `result` or `error`.
pub fn encode_response(response: &QueryResponse) -> Json {
    let mut fields = vec![(
        "generation".to_string(),
        Json::num(response.generation as f64),
    )];
    match &response.result {
        Ok(result) => fields.push(("result".to_string(), encode_result(result))),
        Err(error) => fields.push(("error".to_string(), encode_error(error))),
    }
    Json::Obj(fields)
}

/// Decodes a wire envelope back into a [`QueryResponse`].
pub fn decode_response(doc: &Json) -> Result<QueryResponse, WireError> {
    let generation = doc
        .get("generation")
        .and_then(Json::as_u64)
        .ok_or_else(|| type_err("generation", "integer"))?;
    let result = match (doc.get("result"), doc.get("error")) {
        (Some(r), None) => Ok(decode_result(r)?),
        (None, Some(e)) => Err(decode_error(e)?),
        _ => {
            return Err(WireError::new(
                "envelope must carry exactly one of result/error",
            ))
        }
    };
    Ok(QueryResponse { generation, result })
}

fn encode_error(error: &QueryError) -> Json {
    let mut fields = vec![("kind".to_string(), Json::str(error_kind(error)))];
    match error {
        QueryError::UnknownMention(name)
        | QueryError::UnknownEntity(name)
        | QueryError::UnknownConcept(name) => {
            fields.push(("name".to_string(), Json::str(name.clone())));
        }
        QueryError::InvalidCursor(cursor_error) => {
            let cursor = match cursor_error {
                CursorError::Malformed => vec![("kind".to_string(), Json::str("malformed"))],
                CursorError::WrongGeneration { cursor, serving } => vec![
                    ("kind".to_string(), Json::str("wrongGeneration")),
                    ("cursor".to_string(), Json::num(*cursor as f64)),
                    ("serving".to_string(), Json::num(*serving as f64)),
                ],
                CursorError::WrongQuery => vec![("kind".to_string(), Json::str("wrongQuery"))],
                CursorError::OutOfRange { offset, total } => vec![
                    ("kind".to_string(), Json::str("outOfRange")),
                    ("offset".to_string(), Json::num(*offset as f64)),
                    ("total".to_string(), Json::num(*total as f64)),
                ],
            };
            fields.push(("cursor".to_string(), Json::Obj(cursor)));
        }
    }
    Json::Obj(fields)
}

fn decode_error(doc: &Json) -> Result<QueryError, WireError> {
    let kind = req_str(doc, "kind")?;
    match kind {
        "unknownMention" => Ok(QueryError::UnknownMention(
            req_str(doc, "name")?.to_string(),
        )),
        "unknownEntity" => Ok(QueryError::UnknownEntity(req_str(doc, "name")?.to_string())),
        "unknownConcept" => Ok(QueryError::UnknownConcept(
            req_str(doc, "name")?.to_string(),
        )),
        "invalidCursor" => {
            let c = doc
                .get("cursor")
                .ok_or_else(|| WireError::new("invalidCursor without cursor detail"))?;
            let cursor_error = match req_str(c, "kind")? {
                "malformed" => CursorError::Malformed,
                "wrongGeneration" => CursorError::WrongGeneration {
                    cursor: req_u64(c, "cursor")?,
                    serving: req_u64(c, "serving")?,
                },
                "wrongQuery" => CursorError::WrongQuery,
                "outOfRange" => CursorError::OutOfRange {
                    offset: req_usize(c, "offset")?,
                    total: req_usize(c, "total")?,
                },
                other => return Err(WireError::new(format!("unknown cursor error {other:?}"))),
            };
            Ok(QueryError::InvalidCursor(cursor_error))
        }
        other => Err(WireError::new(format!("unknown error kind {other:?}"))),
    }
}

fn encode_result(result: &Response) -> Json {
    match result {
        Response::Senses(senses) => Json::Obj(vec![
            ("type".to_string(), Json::str("senses")),
            (
                "items".to_string(),
                Json::Arr(senses.iter().map(encode_sense).collect()),
            ),
        ]),
        Response::SenseConcepts(items) => Json::Obj(vec![
            ("type".to_string(), Json::str("senseConcepts")),
            (
                "items".to_string(),
                Json::Arr(
                    items
                        .iter()
                        .map(|sc| {
                            Json::Obj(vec![
                                ("sense".to_string(), encode_sense(&sc.sense)),
                                (
                                    "concepts".to_string(),
                                    Json::Arr(sc.concepts.iter().map(encode_concept_hit).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Concepts(page) => encode_page("concepts", page, encode_concept_hit),
        Response::Entities(page) => encode_page("entities", page, encode_entity_hit),
        Response::Ancestors(hits) => Json::Obj(vec![
            ("type".to_string(), Json::str("ancestors")),
            (
                "items".to_string(),
                Json::Arr(hits.iter().map(encode_concept_hit).collect()),
            ),
        ]),
        Response::IsA { holds } => Json::Obj(vec![
            ("type".to_string(), Json::str("isA")),
            ("holds".to_string(), Json::Bool(*holds)),
        ]),
        Response::Tags(output) => Json::Obj(vec![
            ("type".to_string(), Json::str("tags")),
            (
                "spans".to_string(),
                Json::Arr(output.spans.iter().map(encode_tag_span).collect()),
            ),
            (
                "concepts".to_string(),
                Json::Arr(output.concepts.iter().map(encode_tag_hit).collect()),
            ),
        ]),
        Response::Classified(hits) => Json::Obj(vec![
            ("type".to_string(), Json::str("classified")),
            (
                "items".to_string(),
                Json::Arr(hits.iter().map(encode_tag_hit).collect()),
            ),
        ]),
    }
}

fn decode_result(doc: &Json) -> Result<Response, WireError> {
    match req_str(doc, "type")? {
        "senses" => Ok(Response::Senses(
            req_arr(doc, "items")?
                .iter()
                .map(decode_sense)
                .collect::<Result<_, _>>()?,
        )),
        "senseConcepts" => Ok(Response::SenseConcepts(
            req_arr(doc, "items")?
                .iter()
                .map(|item| {
                    Ok(SenseConcepts {
                        sense: decode_sense(
                            item.get("sense")
                                .ok_or_else(|| type_err("sense", "object"))?,
                        )?,
                        concepts: req_arr(item, "concepts")?
                            .iter()
                            .map(decode_concept_hit)
                            .collect::<Result<_, _>>()?,
                    })
                })
                .collect::<Result<_, _>>()?,
        )),
        "concepts" => Ok(Response::Concepts(decode_page(doc, decode_concept_hit)?)),
        "entities" => Ok(Response::Entities(decode_page(doc, decode_entity_hit)?)),
        "ancestors" => Ok(Response::Ancestors(
            req_arr(doc, "items")?
                .iter()
                .map(decode_concept_hit)
                .collect::<Result<_, _>>()?,
        )),
        "isA" => Ok(Response::IsA {
            holds: doc
                .get("holds")
                .and_then(Json::as_bool)
                .ok_or_else(|| type_err("holds", "bool"))?,
        }),
        "tags" => Ok(Response::Tags(TagOutput {
            spans: req_arr(doc, "spans")?
                .iter()
                .map(decode_tag_span)
                .collect::<Result<_, _>>()?,
            concepts: req_arr(doc, "concepts")?
                .iter()
                .map(decode_tag_hit)
                .collect::<Result<_, _>>()?,
        })),
        "classified" => Ok(Response::Classified(
            req_arr(doc, "items")?
                .iter()
                .map(decode_tag_hit)
                .collect::<Result<_, _>>()?,
        )),
        other => Err(WireError::new(format!("unknown result type {other:?}"))),
    }
}

fn encode_page<T>(kind: &str, page: &Paged<T>, item: impl Fn(&T) -> Json) -> Json {
    Json::Obj(vec![
        ("type".to_string(), Json::str(kind)),
        (
            "items".to_string(),
            Json::Arr(page.items.iter().map(item).collect()),
        ),
        ("total".to_string(), Json::num(page.total as f64)),
        (
            "next".to_string(),
            match &page.next {
                Some(cursor) => Json::str(cursor.encode()),
                None => Json::Null,
            },
        ),
    ])
}

fn decode_page<T>(
    doc: &Json,
    item: impl Fn(&Json) -> Result<T, WireError>,
) -> Result<Paged<T>, WireError> {
    let items = req_arr(doc, "items")?
        .iter()
        .map(item)
        .collect::<Result<_, _>>()?;
    let total = req_usize(doc, "total")?;
    let next = match doc.get("next") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let token = v.as_str().ok_or_else(|| type_err("next", "string"))?;
            Some(
                Cursor::decode(token)
                    .map_err(|e| WireError::new(format!("invalid next cursor: {e}")))?,
            )
        }
    };
    Ok(Paged { items, total, next })
}

fn encode_sense(sense: &Sense) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::num(f64::from(sense.id.0))),
        ("name".to_string(), Json::str(sense.name.clone())),
        (
            "disambig".to_string(),
            match &sense.disambig {
                Some(d) => Json::str(d.clone()),
                None => Json::Null,
            },
        ),
        ("key".to_string(), Json::str(sense.key.clone())),
    ])
}

fn decode_sense(doc: &Json) -> Result<Sense, WireError> {
    Ok(Sense {
        id: EntityId(req_u32(doc, "id")?),
        name: req_str(doc, "name")?.to_string(),
        disambig: match doc.get("disambig") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| type_err("disambig", "string"))?
                    .to_string(),
            ),
        },
        key: req_str(doc, "key")?.to_string(),
    })
}

fn encode_concept_hit(hit: &ConceptHit) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::num(f64::from(hit.id.0))),
        ("name".to_string(), Json::str(hit.name.clone())),
        ("depth".to_string(), Json::num(f64::from(hit.depth))),
        ("direct".to_string(), Json::Bool(hit.direct)),
        (
            "confidence".to_string(),
            match hit.confidence {
                Some(c) => Json::num(f64::from(c)),
                None => Json::Null,
            },
        ),
    ])
}

fn decode_concept_hit(doc: &Json) -> Result<ConceptHit, WireError> {
    Ok(ConceptHit {
        id: ConceptId(req_u32(doc, "id")?),
        name: req_str(doc, "name")?.to_string(),
        depth: req_u32(doc, "depth")?,
        direct: doc
            .get("direct")
            .and_then(Json::as_bool)
            .ok_or_else(|| type_err("direct", "bool"))?,
        confidence: match doc.get("confidence") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| type_err("confidence", "number"))? as f32),
        },
    })
}

fn encode_tag_span(span: &TagSpan) -> Json {
    let mut fields = vec![
        ("start".to_string(), Json::num(f64::from(span.start))),
        ("end".to_string(), Json::num(f64::from(span.end))),
        ("text".to_string(), Json::str(span.text.clone())),
    ];
    match &span.kind {
        SpanKind::Entities(ids) => {
            fields.push(("kind".to_string(), Json::str("entities")));
            fields.push((
                "entities".to_string(),
                Json::Arr(ids.iter().map(|id| Json::num(f64::from(id.0))).collect()),
            ));
        }
        SpanKind::Concept(id) => {
            fields.push(("kind".to_string(), Json::str("concept")));
            fields.push(("concept".to_string(), Json::num(f64::from(id.0))));
        }
        SpanKind::NamedEntity => {
            fields.push(("kind".to_string(), Json::str("namedEntity")));
        }
    }
    Json::Obj(fields)
}

fn decode_tag_span(doc: &Json) -> Result<TagSpan, WireError> {
    let kind = match req_str(doc, "kind")? {
        "entities" => SpanKind::Entities(
            req_arr(doc, "entities")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .map(EntityId)
                        .ok_or_else(|| type_err("entities", "array of u32"))
                })
                .collect::<Result<_, _>>()?,
        ),
        "concept" => SpanKind::Concept(ConceptId(req_u32(doc, "concept")?)),
        "namedEntity" => SpanKind::NamedEntity,
        other => return Err(WireError::new(format!("unknown span kind {other:?}"))),
    };
    Ok(TagSpan {
        start: req_u32(doc, "start")?,
        end: req_u32(doc, "end")?,
        text: req_str(doc, "text")?.to_string(),
        kind,
    })
}

fn encode_tag_hit(hit: &TagHit) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::num(f64::from(hit.id.0))),
        ("name".to_string(), Json::str(hit.name.clone())),
        ("depth".to_string(), Json::num(f64::from(hit.depth))),
        ("score".to_string(), Json::num(f64::from(hit.score))),
        (
            "evidence".to_string(),
            Json::Arr(
                hit.evidence
                    .iter()
                    .map(|&i| Json::num(f64::from(i)))
                    .collect(),
            ),
        ),
    ])
}

fn decode_tag_hit(doc: &Json) -> Result<TagHit, WireError> {
    Ok(TagHit {
        id: ConceptId(req_u32(doc, "id")?),
        name: req_str(doc, "name")?.to_string(),
        depth: req_u32(doc, "depth")?,
        score: doc
            .get("score")
            .and_then(Json::as_f64)
            .ok_or_else(|| type_err("score", "number"))? as f32,
        evidence: req_arr(doc, "evidence")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| type_err("evidence", "array of u32"))
            })
            .collect::<Result<_, _>>()?,
    })
}

fn encode_entity_hit(hit: &EntityHit) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::num(f64::from(hit.id.0))),
        ("key".to_string(), Json::str(hit.key.clone())),
        ("via".to_string(), Json::num(f64::from(hit.via.0))),
        (
            "confidence".to_string(),
            Json::num(f64::from(hit.confidence)),
        ),
    ])
}

fn decode_entity_hit(doc: &Json) -> Result<EntityHit, WireError> {
    Ok(EntityHit {
        id: EntityId(req_u32(doc, "id")?),
        key: req_str(doc, "key")?.to_string(),
        via: ConceptId(req_u32(doc, "via")?),
        confidence: doc
            .get("confidence")
            .and_then(Json::as_f64)
            .ok_or_else(|| type_err("confidence", "number"))? as f32,
    })
}

// ----- field helpers -------------------------------------------------------

fn type_err(field: &str, expected: &str) -> WireError {
    WireError::new(format!("field {field:?} missing or not a {expected}"))
}

fn req_str<'a>(doc: &'a Json, field: &str) -> Result<&'a str, WireError> {
    doc.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| type_err(field, "string"))
}

fn req_u64(doc: &Json, field: &str) -> Result<u64, WireError> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| type_err(field, "integer"))
}

fn req_u32(doc: &Json, field: &str) -> Result<u32, WireError> {
    u32::try_from(req_u64(doc, field)?).map_err(|_| type_err(field, "u32"))
}

fn req_usize(doc: &Json, field: &str) -> Result<usize, WireError> {
    usize::try_from(req_u64(doc, field)?).map_err(|_| type_err(field, "integer"))
}

fn req_arr<'a>(doc: &'a Json, field: &str) -> Result<&'a [Json], WireError> {
    doc.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| type_err(field, "array"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_round_trip(q: Query) {
        let doc = encode_query(&q);
        let text = doc.write();
        let back = decode_query(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, q, "wire round trip diverged for {text}");
    }

    #[test]
    fn every_query_variant_round_trips() {
        query_round_trip(Query::men2ent("刘德华"));
        query_round_trip(Query::MentionSenses {
            mention: "苹果".to_string(),
        });
        query_round_trip(Query::GetConcept {
            entity: "刘德华（中国香港男演员）".to_string(),
            options: ListOptions::transitive().with_min_confidence(0.25),
        });
        query_round_trip(Query::GetConceptByMention {
            mention: "苹果".to_string(),
            options: ListOptions::default(),
        });
        query_round_trip(Query::GetEntity {
            concept: "人物".to_string(),
            options: ListOptions::transitive().with_page(PageRequest::after(
                10,
                Cursor::decode("v1.g3.o20.q00000000deadbeef").unwrap(),
            )),
        });
        query_round_trip(Query::AncestorsOf {
            concept: "演员".to_string(),
        });
        query_round_trip(Query::IsA {
            sub: "刘德华".to_string(),
            sup: "人物".to_string(),
            transitive: true,
        });
        query_round_trip(Query::Tag {
            text: "刘德华在北京开演唱会。".to_string(),
            options: TagOptions::default(),
        });
        query_round_trip(Query::Classify {
            text: "《无间道》是一部电影".to_string(),
            options: TagOptions::default()
                .with_top_k(3)
                .with_min_score(0.25)
                .with_beam(4),
        });
    }

    #[test]
    fn tag_endpoint_body_defaults_op_to_tag_and_rejects_others() {
        let doc = Json::parse(r#"{"text":"苹果"}"#).unwrap();
        assert_eq!(
            decode_tag_query(&doc).unwrap(),
            Query::Tag {
                text: "苹果".to_string(),
                options: TagOptions::default(),
            }
        );
        let doc = Json::parse(r#"{"op":"classify","text":"苹果"}"#).unwrap();
        assert!(matches!(
            decode_tag_query(&doc).unwrap(),
            Query::Classify { .. }
        ));
        for bad in [
            r#"{"op":"men2ent","text":"苹果"}"#,
            r#"{"op":"tag"}"#,
            r#"{"op":7,"text":"苹果"}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(decode_tag_query(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn tag_options_default_when_absent() {
        let doc = Json::parse(r#"{"op":"tag","text":"苹果"}"#).unwrap();
        let q = decode_query(&doc).unwrap();
        assert_eq!(
            q,
            Query::Tag {
                text: "苹果".to_string(),
                options: TagOptions::default(),
            }
        );
        let doc = Json::parse(r#"{"op":"classify","text":"苹果","options":{"topK":2}}"#).unwrap();
        let q = decode_query(&doc).unwrap();
        assert_eq!(
            q,
            Query::Classify {
                text: "苹果".to_string(),
                options: TagOptions::default().with_top_k(2),
            }
        );
    }

    fn response_round_trip(r: QueryResponse) {
        let doc = encode_response(&r);
        let text = doc.write();
        let back = decode_response(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r, "wire round trip diverged for {text}");
    }

    fn sample_sense() -> Sense {
        Sense {
            id: EntityId(7),
            name: "刘德华".to_string(),
            disambig: Some("中国香港男演员".to_string()),
            key: "刘德华（中国香港男演员）".to_string(),
        }
    }

    fn sample_hit() -> ConceptHit {
        ConceptHit {
            id: ConceptId(3),
            name: "演员".to_string(),
            depth: 2,
            direct: true,
            confidence: Some(0.875),
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        let g = 5;
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::Senses(vec![
                sample_sense(),
                Sense {
                    disambig: None,
                    ..sample_sense()
                },
            ])),
        });
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::SenseConcepts(vec![SenseConcepts {
                sense: sample_sense(),
                concepts: vec![sample_hit()],
            }])),
        });
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::Concepts(Paged {
                items: vec![
                    sample_hit(),
                    ConceptHit {
                        direct: false,
                        confidence: None,
                        ..sample_hit()
                    },
                ],
                total: 10,
                next: Some(Cursor::decode("v1.g5.o2.q0000000000000abc").unwrap()),
            })),
        });
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::Entities(Paged {
                items: vec![EntityHit {
                    id: EntityId(1),
                    key: "张学友".to_string(),
                    via: ConceptId(3),
                    confidence: 0.5,
                }],
                total: 1,
                next: None,
            })),
        });
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::Ancestors(vec![sample_hit()])),
        });
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::IsA { holds: true }),
        });
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::Tags(TagOutput {
                spans: vec![
                    TagSpan {
                        start: 0,
                        end: 3,
                        text: "刘德华".to_string(),
                        kind: SpanKind::Entities(vec![EntityId(7), EntityId(9)]),
                    },
                    TagSpan {
                        start: 4,
                        end: 6,
                        text: "歌手".to_string(),
                        kind: SpanKind::Concept(ConceptId(3)),
                    },
                    TagSpan {
                        start: 7,
                        end: 12,
                        text: "《无间道》".to_string(),
                        kind: SpanKind::NamedEntity,
                    },
                ],
                concepts: vec![TagHit {
                    id: ConceptId(3),
                    name: "歌手".to_string(),
                    depth: 2,
                    score: 1.5,
                    evidence: vec![0, 1],
                }],
            })),
        });
        response_round_trip(QueryResponse {
            generation: g,
            result: Ok(Response::Classified(vec![TagHit {
                id: ConceptId(1),
                name: "人物".to_string(),
                depth: 0,
                score: 0.75,
                evidence: vec![0],
            }])),
        });
    }

    #[test]
    fn every_error_variant_round_trips() {
        for error in [
            QueryError::UnknownMention("无此人".to_string()),
            QueryError::UnknownEntity("无此人（到处）".to_string()),
            QueryError::UnknownConcept("无此类".to_string()),
            QueryError::InvalidCursor(CursorError::Malformed),
            QueryError::InvalidCursor(CursorError::WrongGeneration {
                cursor: 1,
                serving: 2,
            }),
            QueryError::InvalidCursor(CursorError::WrongQuery),
            QueryError::InvalidCursor(CursorError::OutOfRange {
                offset: 11,
                total: 10,
            }),
        ] {
            response_round_trip(QueryResponse {
                generation: 2,
                result: Err(error),
            });
        }
    }

    #[test]
    fn status_mapping_is_stable() {
        assert_eq!(status_for(&Ok(Response::IsA { holds: false })), 200);
        assert_eq!(
            status_for(&Err(QueryError::UnknownMention(String::new()))),
            404
        );
        assert_eq!(
            status_for(&Err(QueryError::UnknownEntity(String::new()))),
            404
        );
        assert_eq!(
            status_for(&Err(QueryError::UnknownConcept(String::new()))),
            404
        );
        assert_eq!(
            status_for(&Err(QueryError::InvalidCursor(CursorError::Malformed))),
            400
        );
        assert_eq!(
            status_for(&Err(QueryError::InvalidCursor(CursorError::WrongQuery))),
            409
        );
        assert_eq!(
            status_for(&Err(QueryError::InvalidCursor(
                CursorError::WrongGeneration {
                    cursor: 1,
                    serving: 2
                }
            ))),
            409
        );
    }

    #[test]
    fn hostile_query_documents_are_typed_errors() {
        for bad in [
            r#"{}"#,
            r#"{"op":"launchMissiles"}"#,
            r#"{"op":"men2ent"}"#,
            r#"{"op":"men2ent","mention":7}"#,
            r#"{"op":"getEntity","concept":"人物","options":7}"#,
            r#"{"op":"getEntity","concept":"人物","options":{"limit":-1}}"#,
            r#"{"op":"getEntity","concept":"人物","options":{"limit":1.5}}"#,
            r#"{"op":"getEntity","concept":"人物","options":{"cursor":"garbage"}}"#,
            r#"{"op":"isA","sub":"a","sup":"b","transitive":"yes"}"#,
            r#"{"op":"tag"}"#,
            r#"{"op":"tag","text":7}"#,
            r#"{"op":"tag","text":"苹果","options":7}"#,
            r#"{"op":"tag","text":"苹果","options":{"topK":-1}}"#,
            r#"{"op":"tag","text":"苹果","options":{"minScore":"high"}}"#,
            r#"{"op":"classify","text":"苹果","options":{"beam":1.5}}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(decode_query(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn hostile_response_documents_are_typed_errors() {
        for bad in [
            r#"{}"#,
            r#"{"generation":1}"#,
            r#"{"generation":1,"result":{"type":"nope"}}"#,
            r#"{"generation":1,"result":{"type":"isA"}}"#,
            r#"{"generation":1,"error":{"kind":"nope"}}"#,
            r#"{"generation":1,"result":{"type":"isA","holds":true},"error":{"kind":"wrongQuery"}}"#,
            r#"{"generation":-1,"result":{"type":"isA","holds":true}}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(decode_response(&doc).is_err(), "accepted {bad}");
        }
    }
}
