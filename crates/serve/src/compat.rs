//! [`ProbaseApi`]: the paper-era three-call interface (Table II), kept as
//! a thin compatibility wrapper over [`TaxonomyService`].
//!
//! The wrapper pins the service's boot generation for its whole lifetime —
//! the original API was frozen-at-boot by design — and answers every call
//! through the same executor the typed protocol uses, so the two surfaces
//! cannot disagree (locked in by the `serve_equivalence` integration
//! test). New code should speak [`crate::Query`] / [`crate::Response`];
//! this type exists so existing callers keep compiling and keep getting
//! identical answers.

use crate::exec;
use crate::query::{ListOptions, PageRequest, Query};
use crate::response::Response;
use crate::service::{PinnedSnapshot, TaxonomyService};
use cnp_taxonomy::persist::PersistError;
use cnp_taxonomy::{EntityId, FrozenTaxonomy, TaxonomyRead, TaxonomyStore};
use std::path::Path;

/// A resolved entity sense returned by `men2ent`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntitySense {
    /// Snapshot handle.
    pub id: EntityId,
    /// Surface name.
    pub name: String,
    /// Bracket disambiguation (may be empty).
    pub disambig: String,
    /// Full display key (`name（disambig）`).
    pub key: String,
}

/// Read-side compatibility facade over a [`TaxonomyService`].
///
/// Generic over the same [`TaxonomyRead`] backends as the service: the
/// default keeps existing `ProbaseApi` mentions on the owned
/// [`FrozenTaxonomy`], while `ProbaseApi::from_service` accepts a
/// view-backed or `AnySnapshot`-backed service unchanged.
#[derive(Debug)]
pub struct ProbaseApi<T = FrozenTaxonomy> {
    service: TaxonomyService<T>,
    /// The boot generation, pinned for the API's lifetime: `frozen()`
    /// hands out plain `&T` borrows, and answers never shift under a
    /// caller even if someone swaps the inner service.
    pinned: PinnedSnapshot<T>,
}

impl<T: TaxonomyRead + Clone> Clone for ProbaseApi<T> {
    fn clone(&self) -> Self {
        Self::from_service(TaxonomyService::new(self.pinned.frozen().clone()))
    }
}

impl ProbaseApi {
    /// Builds the service by freezing a finished store.
    pub fn new(store: TaxonomyStore) -> Self {
        Self::from_service(TaxonomyService::from_store(store))
    }

    /// Wraps an already-frozen snapshot.
    pub fn from_frozen(frozen: FrozenTaxonomy) -> Self {
        Self::from_service(TaxonomyService::new(frozen))
    }

    /// Boots the service from a snapshot file of any format into the
    /// owned backend: v2 is validate-and-go, v1 loads the build store and
    /// pays one freeze here, v3 decodes into owned CSR.
    pub fn from_snapshot_file(path: &Path) -> Result<Self, PersistError> {
        Ok(Self::from_service(TaxonomyService::from_snapshot_file(
            path,
        )?))
    }
}

impl<T: TaxonomyRead> ProbaseApi<T> {
    /// Wraps an existing service, pinning its current generation.
    pub fn from_service(service: TaxonomyService<T>) -> Self {
        let pinned = service.pin();
        ProbaseApi { service, pinned }
    }

    /// Read-only access to the pinned snapshot.
    pub fn frozen(&self) -> &T {
        self.pinned.frozen()
    }

    /// The underlying typed service (still serving the same snapshot).
    pub fn service(&self) -> &TaxonomyService<T> {
        &self.service
    }

    /// Unwraps into the typed service.
    pub fn into_service(self) -> TaxonomyService<T> {
        self.service
    }

    /// `men2ent`: mention → entity senses.
    pub fn men2ent(&self, mention: &str) -> Vec<EntitySense> {
        let response = self.pinned.execute(&Query::Men2Ent {
            mention: mention.to_string(),
        });
        match response.result {
            Ok(Response::Senses(senses)) => senses
                .into_iter()
                .map(|s| EntitySense {
                    id: s.id,
                    name: s.name,
                    disambig: s.disambig.unwrap_or_default(),
                    key: s.key,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// `getConcept`: entity → hypernym (concept) names.
    ///
    /// With `transitive`, appends the transitive hypernyms (from the
    /// snapshot's precomputed ancestor closure) after the direct ones,
    /// nearest-first: deeper ancestors sit closer to the entity's direct
    /// concepts, so consumers that truncate the list keep the most
    /// specific hypernyms. Ties break by concept id for determinism.
    pub fn get_concept(&self, entity: EntityId, transitive: bool) -> Vec<String> {
        let options = ListOptions {
            transitive,
            ..Default::default()
        };
        exec::concept_hits(self.frozen(), entity, &options)
            .into_iter()
            .map(|h| h.name)
            .collect()
    }

    /// `getConcept` by mention: resolves the mention first, merging the
    /// hypernyms of every sense (deduplicated, order-preserving).
    pub fn get_concept_by_mention(&self, mention: &str, transitive: bool) -> Vec<String> {
        let response = self.pinned.execute(&Query::GetConceptByMention {
            mention: mention.to_string(),
            options: ListOptions {
                transitive,
                ..Default::default()
            },
        });
        match response.result {
            Ok(Response::Concepts(page)) => page.items.into_iter().map(|h| h.name).collect(),
            _ => Vec::new(),
        }
    }

    /// `getEntity`: concept → hyponym entity keys, up to `limit`
    /// (`usize::MAX` for all), ranked by descending edge confidence with
    /// entity id as tie-break. Includes entities of transitive subconcepts
    /// when `transitive` is set; an entity reachable through several
    /// subconcepts is reported once, at its first (best-ranked) position.
    pub fn get_entity(&self, concept: &str, transitive: bool, limit: usize) -> Vec<String> {
        let response = self.pinned.execute(&Query::GetEntity {
            concept: concept.to_string(),
            options: ListOptions {
                transitive,
                min_confidence: 0.0,
                page: PageRequest::first(limit),
            },
        });
        match response.result {
            Ok(Response::Entities(page)) => page.items.into_iter().map(|h| h.key).collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_taxonomy::{IsAMeta, Source};

    fn demo_api() -> ProbaseApi {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let zhang = s.add_entity("张学友", None);
        s.add_alias(liu, "Andy Lau");
        let male_actor = s.add_concept("男演员");
        let actor = s.add_concept("演员");
        let singer = s.add_concept("歌手");
        let person = s.add_concept("人物");
        s.add_concept_is_a(male_actor, actor, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_entity_is_a(liu, male_actor, IsAMeta::new(Source::Bracket, 0.95));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.9));
        ProbaseApi::new(s)
    }

    #[test]
    fn men2ent_resolves_alias_and_name() {
        let api = demo_api();
        let senses = api.men2ent("Andy Lau");
        assert_eq!(senses.len(), 1);
        assert_eq!(senses[0].name, "刘德华");
        assert_eq!(senses[0].key, "刘德华（中国香港男演员）");
        assert_eq!(api.men2ent("张学友").len(), 1);
        assert!(api.men2ent("无此人").is_empty());
    }

    #[test]
    fn get_concept_direct() {
        let api = demo_api();
        let liu = api.men2ent("刘德华")[0].id;
        let concepts = api.get_concept(liu, false);
        assert_eq!(concepts, vec!["男演员", "歌手"]);
    }

    #[test]
    fn get_concept_transitive_appends_ancestors() {
        let api = demo_api();
        let liu = api.men2ent("刘德华")[0].id;
        let concepts = api.get_concept(liu, true);
        assert_eq!(concepts[..2], ["男演员".to_string(), "歌手".to_string()]);
        assert!(concepts.contains(&"演员".to_string()));
        assert!(concepts.contains(&"人物".to_string()));
        assert_eq!(concepts.len(), 4);
    }

    #[test]
    fn get_concept_by_mention_merges_senses() {
        let api = demo_api();
        let concepts = api.get_concept_by_mention("刘德华", false);
        assert_eq!(concepts, vec!["男演员", "歌手"]);
    }

    /// Regression (ISSUE 5 satellite): when several senses of one mention
    /// share a hypernym, the merged list must report it once, at its first
    /// rank — not once per sense.
    #[test]
    fn get_concept_by_mention_dedupes_shared_hypernyms() {
        let mut s = TaxonomyStore::new();
        let liu_actor = s.add_entity("刘德华", Some("中国香港男演员"));
        let liu_bare = s.add_entity("刘德华", None);
        let singer = s.add_concept("歌手");
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
        // Both senses share 歌手 (and transitively 人物).
        s.add_entity_is_a(liu_actor, singer, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(liu_actor, actor, IsAMeta::new(Source::Bracket, 0.95));
        s.add_entity_is_a(liu_bare, singer, IsAMeta::new(Source::Tag, 0.5));
        let api = ProbaseApi::new(s);
        assert_eq!(api.men2ent("刘德华").len(), 2);
        let direct = api.get_concept_by_mention("刘德华", false);
        assert_eq!(direct, vec!["歌手", "演员"], "each shared hypernym once");
        let transitive = api.get_concept_by_mention("刘德华", true);
        assert_eq!(transitive, vec!["歌手", "演员", "人物"]);
    }

    #[test]
    fn get_entity_direct_and_transitive() {
        let api = demo_api();
        let direct = api.get_entity("人物", false, usize::MAX);
        assert!(direct.is_empty(), "no entity links directly to 人物");
        let transitive = api.get_entity("人物", true, usize::MAX);
        // 刘德华 is reachable via 歌手 and via 男演员 but reported once.
        assert_eq!(transitive.len(), 2);
        assert!(transitive.contains(&"张学友".to_string()));
        assert!(transitive.contains(&"刘德华（中国香港男演员）".to_string()));
    }

    #[test]
    fn get_entity_respects_limit() {
        let api = demo_api();
        let limited = api.get_entity("歌手", false, 1);
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn get_entity_unknown_concept() {
        let api = demo_api();
        assert!(api.get_entity("不存在", true, 10).is_empty());
    }

    #[test]
    fn wrapper_stays_on_its_boot_generation() {
        let api = demo_api();
        let before = api.get_entity("歌手", false, usize::MAX);
        // Swapping the inner service does not move the compat surface.
        api.service()
            .swap(FrozenTaxonomy::freeze(&TaxonomyStore::new()));
        assert_eq!(api.get_entity("歌手", false, usize::MAX), before);
        // But the service itself serves the new generation.
        assert_eq!(api.service().generation(), 2);
    }

    #[test]
    fn api_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProbaseApi>();
    }
}
