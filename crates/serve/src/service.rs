//! [`TaxonomyService`]: generation-managed query execution with
//! zero-downtime snapshot hot-swap.

use crate::exec;
use crate::query::Query;
use crate::response::QueryResponse;
use cnp_runtime::Runtime;
use cnp_tag::TagIndex;
use cnp_taxonomy::persist::{PersistError, Snapshot};
use cnp_taxonomy::{
    BootSnapshot, DeltaOverlay, FrozenTaxonomy, IngestDelta, TaxonomyRead, TaxonomyStore,
};
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Minimum queries a batch worker must have before another worker is
/// worth spawning: below this, thread hand-off costs more than the
/// queries themselves.
const MIN_BATCH_PER_WORKER: usize = 32;

/// One immutable serving state: a snapshot backend plus its generation
/// number, and the generation's lazily-built tagging index (the
/// vocabulary-seeded segmenter is derived state of the snapshot, so it
/// lives and dies with the generation — the first `Tag`/`Classify` query
/// on a generation pays the build, every later one shares it).
#[derive(Debug)]
struct Generation<T> {
    number: u64,
    snapshot: T,
    tag: OnceLock<TagIndex>,
}

impl<T> Generation<T> {
    fn new(number: u64, snapshot: T) -> Self {
        Generation {
            number,
            snapshot,
            tag: OnceLock::new(),
        }
    }
}

/// A pinned snapshot generation: queries executed through it all see the
/// same immutable state, no matter how many hot-swaps happen meanwhile.
///
/// Cloning is an `Arc` bump; the underlying snapshot stays alive until the
/// last pin drops, which is exactly the hot-swap draining rule — in-flight
/// work finishes on the generation it pinned.
///
/// The backend `T` is any [`TaxonomyRead`] — the owned [`FrozenTaxonomy`],
/// the borrowed `FrozenTaxonomyView`, or the version-dispatching
/// `AnySnapshot`. The default keeps existing `PinnedSnapshot` mentions
/// compiling unchanged.
#[derive(Debug, Clone)]
pub struct PinnedSnapshot<T = FrozenTaxonomy> {
    inner: Arc<Generation<T>>,
}

impl<T: TaxonomyRead> PinnedSnapshot<T> {
    /// The pinned generation number.
    pub fn generation(&self) -> u64 {
        self.inner.number
    }

    /// The pinned snapshot backend.
    pub fn frozen(&self) -> &T {
        &self.inner.snapshot
    }

    /// Executes one query on the pinned generation — lock-free: the
    /// snapshot is immutable and the executor takes `&self` only. (The
    /// first tagging query on a generation races benignly on the
    /// `OnceLock`-guarded index build; everything else is `&`-only.)
    pub fn execute(&self, query: &Query) -> QueryResponse {
        exec::execute(&self.inner.snapshot, self.inner.number, query, || {
            self.tag_index()
        })
    }

    /// The generation's tagging index, building it on first use.
    pub fn tag_index(&self) -> &TagIndex {
        self.inner
            .tag
            .get_or_init(|| TagIndex::build(&self.inner.snapshot))
    }
}

/// The serving engine of API v1.
///
/// The service holds its snapshot backend behind an atomically swappable
/// `Arc` with a generation counter. Query execution never takes a lock on
/// the data: [`TaxonomyService::execute`] pins the current generation (one
/// brief, uncontended reader-side acquisition to clone the `Arc`) and then
/// runs entirely on the pinned immutable snapshot.
/// [`TaxonomyService::swap`] installs a new generation as a single pointer
/// store — readers never wait on snapshot decode or freeze, in-flight
/// queries drain on the generation they pinned, and every
/// [`QueryResponse`] carries the generation it answered from.
///
/// The backend is generic over [`TaxonomyRead`]: the same service type
/// serves from the owned [`FrozenTaxonomy`] (the default, so existing
/// `TaxonomyService` mentions compile unchanged), from the zero-copy
/// `FrozenTaxonomyView` over a v3 snapshot buffer, or from `AnySnapshot`
/// when the format is decided at boot time.
///
/// ```
/// use cnp_serve::{Query, Response, TaxonomyService};
/// use cnp_taxonomy::{FrozenTaxonomy, IsAMeta, Source, TaxonomyStore};
///
/// let mut store = TaxonomyStore::new();
/// let zhang = store.add_entity("张学友", None);
/// let singer = store.add_concept("歌手");
/// store.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.9));
///
/// let service = TaxonomyService::from_store(store.clone());
/// assert_eq!(service.generation(), 1);
///
/// // Batches execute on the shared runtime, one pinned generation each.
/// let queries = vec![Query::men2ent("张学友"), Query::men2ent("无此人")];
/// let responses = service.execute_batch(&queries);
/// assert!(matches!(responses[0].result, Ok(Response::Senses(_))));
/// assert!(responses[1].result.is_err()); // unknown ≠ empty
///
/// // Hot-swap: a new snapshot slides in under live traffic.
/// store.add_entity("刘德华", None);
/// assert_eq!(service.swap(FrozenTaxonomy::freeze(&store)), 2);
/// assert_eq!(service.execute(&Query::men2ent("刘德华")).generation, 2);
/// ```
#[derive(Debug)]
pub struct TaxonomyService<T = FrozenTaxonomy> {
    current: RwLock<Arc<Generation<T>>>,
    runtime: Runtime,
    admin: Mutex<()>,
}

impl<T: TaxonomyRead> TaxonomyService<T> {
    /// Boots generation 1 from a snapshot backend, batching on a default
    /// [`Runtime`].
    pub fn new(snapshot: T) -> Self {
        Self::with_runtime(snapshot, Runtime::default())
    }

    /// Boots generation 1 with an explicit batch runtime.
    pub fn with_runtime(snapshot: T, runtime: Runtime) -> Self {
        TaxonomyService {
            // cnp-lint: allow(runtime-owns-concurrency) reason="the hot-swap generation pointer: read-locked for one Arc clone per query, write-locked only by swap(); no compute happens under it"
            current: RwLock::new(Arc::new(Generation::new(1, snapshot))),
            runtime,
            // cnp-lint: allow(runtime-owns-concurrency) reason="admin-plane serialisation only: ingest holds it across pin→fold→swap so concurrent ingests cannot fold from the same parent generation and lose a delta; never touched on the query path"
            admin: Mutex::new(()),
        }
    }

    /// The batch runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Pins the current generation for any number of follow-up queries
    /// that must see one consistent state.
    pub fn pin(&self) -> PinnedSnapshot<T> {
        PinnedSnapshot {
            inner: self.current.read().clone(),
        }
    }

    /// The currently serving generation number.
    pub fn generation(&self) -> u64 {
        self.current.read().number
    }

    /// Executes one query on the current generation.
    pub fn execute(&self, query: &Query) -> QueryResponse {
        self.pin().execute(query)
    }

    /// Executes a batch on worker threads. The whole batch pins **one**
    /// generation (all responses carry the same number), and results come
    /// back in input order.
    ///
    /// The worker count is the runtime's thread budget capped twice: by
    /// the machine's available parallelism (threads beyond the core count
    /// only add contention) and by the batch size at
    /// `MIN_BATCH_PER_WORKER` (32) queries per worker (spawning a thread for
    /// a handful of sub-millisecond queries costs more than running
    /// them). Small batches therefore execute inline on the caller's
    /// thread, and adding threads to the runtime never makes a batch
    /// slower.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<QueryResponse> {
        let pinned = self.pin();
        let workers = self
            .runtime
            .threads()
            .min(cnp_runtime::default_threads())
            .min(queries.len().div_ceil(MIN_BATCH_PER_WORKER))
            .max(1);
        if workers <= 1 {
            return queries.iter().map(|q| pinned.execute(q)).collect();
        }
        Runtime::new(workers).par_index_map(queries.len(), |i| pinned.execute(&queries[i]))
    }

    /// Atomically installs `snapshot` as the next generation and returns
    /// its number. Queries already in flight finish on the generation they
    /// pinned; queries pinned after this call see the new one. The old
    /// snapshot is freed when its last pin drops.
    pub fn swap(&self, snapshot: T) -> u64 {
        let mut current = self.current.write();
        let number = current.number + 1;
        let old = std::mem::replace(&mut *current, Arc::new(Generation::new(number, snapshot)));
        drop(current);
        // If this was the last reference, the old snapshot (a structure
        // sized for the whole taxonomy) deallocates *after* the write
        // guard is released — readers never wait on the teardown.
        drop(old);
        number
    }

    /// Installs `snapshot` only if the serving generation is still
    /// `expected`; returns the new number, or `None` (discarding
    /// `snapshot`) when another writer got there first. This is the
    /// compare-and-swap background compaction publishes through: a fold
    /// computed from generation N must not clobber deltas ingested into
    /// N+1 while it ran.
    pub fn swap_if_current(&self, expected: u64, snapshot: T) -> Option<u64> {
        let mut current = self.current.write();
        if current.number != expected {
            return None;
        }
        let number = expected + 1;
        let old = std::mem::replace(&mut *current, Arc::new(Generation::new(number, snapshot)));
        drop(current);
        drop(old);
        Some(number)
    }
}

impl<T: TaxonomyRead + IngestDelta> TaxonomyService<T> {
    /// Applies one delta to the current snapshot and swaps the result in
    /// as the next generation, returning its number. Readers never wait:
    /// the fold happens off-lock on the caller's thread, and in-flight
    /// queries drain on the generation they pinned.
    ///
    /// Concurrent ingests are serialised on an admin mutex (never touched
    /// by the query path) so each fold starts from the previous ingest's
    /// result — without it, two ingests could fold from the same parent
    /// and the second swap would silently drop the first delta. A
    /// concurrent *compaction* publishing between our pin and our swap is
    /// tolerated: the overlay we fold carries the full op log over the
    /// older base, which is logically identical to the compacted
    /// generation it replaces.
    pub fn ingest(&self, delta: &DeltaOverlay) -> Result<u64, PersistError> {
        let _admin = self.admin.lock();
        let next = self.pin().frozen().ingest_delta(delta)?;
        Ok(self.swap(next))
    }

    /// Overlay segments accumulated on the serving snapshot (0 for a
    /// fully compacted base — or a backend that materialises on ingest).
    pub fn overlay_depth(&self) -> usize {
        self.pin().frozen().overlay_depth()
    }

    /// Folds the current base + overlays into a fresh base and publishes
    /// it **iff** the serving generation hasn't moved meanwhile (see
    /// [`TaxonomyService::swap_if_current`]). Returns the new generation,
    /// or `None` when there was nothing to compact or the fold lost the
    /// race — both safe to retry later. Designed to run on a background
    /// worker: queries and ingests proceed untouched for the whole fold.
    pub fn compact(&self) -> Result<Option<u64>, PersistError> {
        let pinned = self.pin();
        if pinned.frozen().overlay_depth() == 0 {
            return Ok(None);
        }
        let folded = pinned.frozen().compacted(&self.runtime)?;
        Ok(self.swap_if_current(pinned.generation(), folded))
    }
}

impl<T: TaxonomyRead + BootSnapshot> TaxonomyService<T> {
    /// Boots generation 1 from a snapshot file, decoding it as `T` boots:
    /// `FrozenTaxonomy` accepts any version (paying a freeze for v1 and a
    /// full decode for v3), `FrozenTaxonomyView` accepts v3 only and
    /// opens it zero-copy, `AnySnapshot` picks the cheapest backend for
    /// whatever version is on disk.
    pub fn boot_from_file(path: &Path) -> Result<Self, PersistError> {
        Ok(Self::new(T::boot_from_file(path)?))
    }

    /// Zero-downtime reload: reads and validates the snapshot file
    /// *without holding any lock* — traffic keeps flowing on the old
    /// generation for the whole load — then swaps it in. Returns the new
    /// generation number; on error the service keeps serving unchanged.
    pub fn reload(&self, path: &Path) -> Result<u64, PersistError> {
        let snapshot = T::boot_from_file(path)?;
        Ok(self.swap(snapshot))
    }
}

impl TaxonomyService {
    /// Boots by freezing a finished build store.
    pub fn from_store(store: TaxonomyStore) -> Self {
        Self::new(FrozenTaxonomy::freeze(&store))
    }

    /// Boots from a snapshot file of any format into the owned backend
    /// (v2 is validate-and-go; v1 loads the build store and pays one
    /// freeze here; v3 decodes the varint sections into owned CSR).
    pub fn from_snapshot_file(path: &Path) -> Result<Self, PersistError> {
        Ok(Self::new(Snapshot::load_from_file(path)?.into_frozen()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ListOptions;
    use crate::response::{QueryError, Response};
    use cnp_taxonomy::{AnySnapshot, FrozenTaxonomyView, IsAMeta, OverlayView, Source};

    fn store_a() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", None);
        let singer = s.add_concept("歌手");
        let person = s.add_concept("人物");
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
        s
    }

    fn store_b() -> TaxonomyStore {
        let mut s = store_a();
        let zhang = s.add_entity("张学友", None);
        let singer = s.find_concept("歌手").unwrap();
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.95));
        s
    }

    fn view_of(store: &TaxonomyStore) -> FrozenTaxonomyView {
        let bytes = cnp_taxonomy::persist::encode_frozen_v3(&FrozenTaxonomy::freeze(store));
        FrozenTaxonomyView::open(bytes).unwrap()
    }

    #[test]
    fn generations_count_up_from_one() {
        let service = TaxonomyService::from_store(store_a());
        assert_eq!(service.generation(), 1);
        assert_eq!(service.swap(FrozenTaxonomy::freeze(&store_b())), 2);
        assert_eq!(service.swap(FrozenTaxonomy::freeze(&store_a())), 3);
        assert_eq!(service.generation(), 3);
    }

    #[test]
    fn pinned_generation_survives_swaps() {
        let service = TaxonomyService::from_store(store_a());
        let pinned = service.pin();
        service.swap(FrozenTaxonomy::freeze(&store_b()));
        // The pin still answers from generation 1, where 张学友 is unknown.
        let r = pinned.execute(&Query::men2ent("张学友"));
        assert_eq!(r.generation, 1);
        assert!(matches!(r.result, Err(QueryError::UnknownMention(_))));
        // A fresh pin sees generation 2, where the mention resolves.
        let r = service.execute(&Query::men2ent("张学友"));
        assert_eq!(r.generation, 2);
        assert!(matches!(r.result, Ok(Response::Senses(ref s)) if s.len() == 1));
    }

    #[test]
    fn batch_pins_exactly_one_generation() {
        let service =
            TaxonomyService::with_runtime(FrozenTaxonomy::freeze(&store_b()), Runtime::new(4));
        let queries: Vec<Query> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    Query::men2ent("刘德华")
                } else {
                    Query::GetEntity {
                        concept: "人物".to_string(),
                        options: ListOptions::transitive(),
                    }
                }
            })
            .collect();
        let responses = service.execute_batch(&queries);
        assert_eq!(responses.len(), queries.len());
        assert!(responses.iter().all(|r| r.generation == 1));
        assert!(responses.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn tiny_batches_run_inline_regardless_of_runtime_threads() {
        // A batch smaller than MIN_BATCH_PER_WORKER must execute on the
        // caller's thread even when the runtime advertises many workers.
        let service =
            TaxonomyService::with_runtime(FrozenTaxonomy::freeze(&store_b()), Runtime::new(16));
        let queries = vec![Query::men2ent("刘德华"); MIN_BATCH_PER_WORKER];
        let responses = service.execute_batch(&queries);
        assert_eq!(responses.len(), queries.len());
        assert!(responses.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn service_answers_identically_from_view_and_any_backends() {
        let store = store_b();
        let owned = TaxonomyService::from_store(store.clone());
        let view = TaxonomyService::new(view_of(&store));
        let any = TaxonomyService::new(AnySnapshot::View(view_of(&store)));
        let queries = [
            Query::men2ent("张学友"),
            Query::men2ent("无此人"),
            Query::GetEntity {
                concept: "人物".to_string(),
                options: ListOptions::transitive(),
            },
        ];
        for q in &queries {
            let a = owned.execute(q);
            let b = view.execute(q);
            let c = any.execute(q);
            assert_eq!(a.result, b.result, "query {q:?}");
            assert_eq!(a.result, c.result, "query {q:?}");
        }
    }

    #[test]
    fn view_backed_service_hot_swaps_and_reloads() {
        let dir = std::env::temp_dir().join("cnp_serve_view_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b_v3.cnpb");
        cnp_taxonomy::persist::save_frozen_v3_to_file(&FrozenTaxonomy::freeze(&store_b()), &path)
            .unwrap();
        let service: TaxonomyService<FrozenTaxonomyView> =
            TaxonomyService::new(view_of(&store_a()));
        assert!(service.execute(&Query::men2ent("张学友")).result.is_err());
        assert_eq!(service.reload(&path).unwrap(), 2);
        std::fs::remove_file(&path).ok();
        let r = service.execute(&Query::men2ent("张学友"));
        assert_eq!(r.generation, 2);
        assert!(r.result.is_ok());
    }

    #[test]
    fn reload_errors_keep_serving_unchanged() {
        let service = TaxonomyService::from_store(store_a());
        let err = service.reload(Path::new("/nonexistent/snapshot.cnpb"));
        assert!(err.is_err());
        assert_eq!(service.generation(), 1);
        assert!(service.execute(&Query::men2ent("刘德华")).result.is_ok());
    }

    #[test]
    fn reload_swaps_from_disk() {
        let dir = std::env::temp_dir().join("cnp_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.cnpb");
        FrozenTaxonomy::freeze(&store_b())
            .save_to_file(&path)
            .unwrap();
        let service = TaxonomyService::from_store(store_a());
        assert_eq!(service.reload(&path).unwrap(), 2);
        std::fs::remove_file(&path).ok();
        let r = service.execute(&Query::men2ent("张学友"));
        assert_eq!(r.generation, 2);
        assert!(r.result.is_ok());
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TaxonomyService>();
        assert_send_sync::<PinnedSnapshot>();
        assert_send_sync::<TaxonomyService<FrozenTaxonomyView>>();
        assert_send_sync::<TaxonomyService<AnySnapshot>>();
        assert_send_sync::<TaxonomyService<OverlayView<AnySnapshot>>>();
    }

    fn sample_delta() -> DeltaOverlay {
        let mut d = DeltaOverlay::new();
        d.upsert_entity_is_a("张学友", None, "歌手", IsAMeta::new(Source::Tag, 0.95));
        d
    }

    #[test]
    fn ingest_bumps_generation_and_serves_the_delta() {
        let service = TaxonomyService::new(OverlayView::new(FrozenTaxonomy::freeze(&store_a())));
        assert!(service.execute(&Query::men2ent("张学友")).result.is_err());
        assert_eq!(service.ingest(&sample_delta()).unwrap(), 2);
        assert_eq!(service.overlay_depth(), 1);
        let r = service.execute(&Query::men2ent("张学友"));
        assert_eq!(r.generation, 2);
        assert!(matches!(r.result, Ok(Response::Senses(ref s)) if s.len() == 1));
    }

    #[test]
    fn ingest_pins_drain_on_their_generation() {
        let service = TaxonomyService::new(OverlayView::new(FrozenTaxonomy::freeze(&store_a())));
        let pinned = service.pin();
        service.ingest(&sample_delta()).unwrap();
        // The pre-ingest pin still answers from generation 1.
        let r = pinned.execute(&Query::men2ent("张学友"));
        assert_eq!(r.generation, 1);
        assert!(r.result.is_err());
    }

    #[test]
    fn compaction_folds_overlays_and_keeps_answers() {
        let service = TaxonomyService::new(OverlayView::new(FrozenTaxonomy::freeze(&store_a())));
        service.ingest(&sample_delta()).unwrap();
        let before = service.execute(&Query::men2ent("张学友"));
        assert_eq!(service.compact().unwrap(), Some(3));
        assert_eq!(service.overlay_depth(), 0);
        let after = service.execute(&Query::men2ent("张学友"));
        assert_eq!(after.generation, 3);
        assert_eq!(before.result, after.result);
        // Nothing left to fold: compaction is now a no-op.
        assert_eq!(service.compact().unwrap(), None);
    }

    #[test]
    fn stale_compaction_result_is_discarded() {
        let service = TaxonomyService::new(OverlayView::new(FrozenTaxonomy::freeze(&store_a())));
        service.ingest(&sample_delta()).unwrap();
        let stale = OverlayView::new(FrozenTaxonomy::freeze(&store_a()));
        // A fold published against a generation that has since moved on
        // must be dropped, not installed.
        assert_eq!(service.swap_if_current(1, stale), None);
        assert_eq!(service.generation(), 2);
        assert!(service.execute(&Query::men2ent("张学友")).result.is_ok());
    }
}
