//! A minimal, hand-rolled JSON value with a hardened parser and a
//! canonical writer.
//!
//! The workspace has no registry access (PR 1), so the wire codec cannot
//! lean on serde. This module implements exactly the JSON subset the
//! serving protocol needs, with the same hostile-input discipline as the
//! snapshot decoder (PR 4): a **nesting-depth cap**, an **input-size cap**
//! enforced by the caller via HTTP body limits, full-input consumption
//! (no trailing garbage), and no recursion on attacker-controlled depth
//! beyond the cap — a truncated or malicious document errors, it never
//! panics or overflows the stack.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps): the writer is deterministic, so encode → decode → encode is
//! byte-identical, which the wire round-trip tests rely on.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any protocol
/// message (the wire format nests < 8 levels), shallow enough that a
/// `[[[[…]]]]` bomb errors long before the stack is at risk.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`, like browser JSON).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks a key up in an object (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number holding one
    /// exactly (rejects fractions, negatives and magnitudes beyond 2^53,
    /// where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Serializes the value. Deterministic: object fields keep insertion
    /// order, numbers use Rust's shortest round-trip float formatting.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest representation that round-trips through
                    // `f64::from_str` — integers print without ".0".
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emit an unparseable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low
                                // surrogate is mandatory.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                // Raw control bytes are invalid inside JSON strings.
                0x00..=0x1F => return Err(self.err("control character in string")),
                _ => {
                    // Re-validate multi-byte UTF-8 from the original
                    // input; `bytes` came from a `&str`, so slicing at a
                    // char boundary is safe by construction.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width == 0 || start + width > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number bytes"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

/// Expected byte width of a UTF-8 sequence starting with `b`, or 0 for an
/// invalid leading byte.
fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF4 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(doc: &str) -> Json {
        let v = Json::parse(doc).unwrap();
        let re = Json::parse(&v.write()).unwrap();
        assert_eq!(v, re, "write → parse diverged for {doc}");
        v
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), Json::Null);
        assert_eq!(round_trip("true"), Json::Bool(true));
        assert_eq!(round_trip("false"), Json::Bool(false));
        assert_eq!(round_trip("42"), Json::Num(42.0));
        assert_eq!(round_trip("-3.5e2"), Json::Num(-350.0));
        assert_eq!(round_trip("\"你好\""), Json::str("你好"));
    }

    #[test]
    fn structures_round_trip_in_order() {
        let v = round_trip(r#"{"b":[1,2,{"x":null}],"a":"刘德华（歌手）","n":0.25}"#);
        assert_eq!(v.get("a").unwrap().as_str(), Some("刘德华（歌手）"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(0.25));
        let Json::Obj(fields) = &v else { panic!() };
        // Insertion order preserved ⇒ deterministic writer.
        assert_eq!(fields[0].0, "b");
        assert_eq!(v.write(), Json::parse(&v.write()).unwrap().write());
    }

    #[test]
    fn escapes_round_trip() {
        let v = round_trip(r#""line\n\ttab \"q\" back\\slash \u00e9 \ud83d\ude00""#);
        assert_eq!(v.as_str(), Some("line\n\ttab \"q\" back\\slash é 😀"));
        // Writer escapes control characters it emits.
        assert_eq!(Json::str("a\u{1}b").write(), r#""a\u0001b""#);
        assert_eq!(
            Json::parse(&Json::str("a\u{1}b").write()).unwrap(),
            Json::str("a\u{1}b")
        );
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{a:1}"#,
            "nul",
            "tru",
            "01x",
            "-",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"lone \\ud800 surrogate\"",
            "1 2",
            "[]extra",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn hostile_numbers_are_typed_errors_not_panics() {
        for bad in ["1e309", "-1e309", "1e999999999999999999999"] {
            let err = Json::parse(bad).unwrap_err();
            assert_eq!(err.message, "number out of range", "{bad}");
        }
        // Long-but-representable literals round to the nearest f64.
        let long = format!("0.{}", "3".repeat(60));
        assert_eq!(Json::parse(&long).unwrap().as_f64(), Some(1.0 / 3.0));
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
        // Depths within the cap parse fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn u64_accessor_rejects_inexact_numbers() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Null.as_u64(), None);
    }

    #[test]
    fn nonfinite_numbers_degrade_to_null() {
        assert_eq!(Json::Num(f64::NAN).write(), "null");
        assert_eq!(Json::Num(f64::INFINITY).write(), "null");
    }
}
