//! The query executor: pure functions from an immutable snapshot (plus
//! its generation number) to typed responses.
//!
//! Every function is generic over [`TaxonomyRead`], so the same executor
//! serves the owned `FrozenTaxonomy` (slice-backed CSR) and the borrowed
//! `FrozenTaxonomyView` (varint rows decoded on the fly) — the protocol
//! cannot fork between representations. Everything here is `&`-only and
//! allocation-bounded by the result size — no locks, no interior
//! mutability — which is what lets [`crate::TaxonomyService`] run batches
//! on worker threads and the hot-swap path proceed while queries are in
//! flight. The compatibility [`crate::ProbaseApi`] calls the same
//! building blocks, so the wrapper and the typed protocol cannot drift
//! apart.

use crate::query::{Cursor, ListOptions, PageRequest, Query};
use crate::response::{
    ConceptHit, CursorError, EntityHit, Paged, QueryError, QueryResponse, Response, Sense,
    SenseConcepts,
};
use cnp_tag::{classify_with, tag_with, TagIndex};
use cnp_taxonomy::hash::FxHashSet;
use cnp_taxonomy::mention::has_disambig;
use cnp_taxonomy::{ConceptId, EntityId, TaxonomyRead};

/// Executes one query against one pinned snapshot generation. `tag_index`
/// lazily supplies the generation's vocabulary-seeded [`TagIndex`]; only
/// the tagging queries force it.
pub(crate) fn execute<'a, T: TaxonomyRead>(
    f: &'a T,
    generation: u64,
    query: &Query,
    tag_index: impl FnOnce() -> &'a TagIndex,
) -> QueryResponse {
    QueryResponse {
        generation,
        result: run(f, generation, query, tag_index),
    }
}

fn run<'a, T: TaxonomyRead>(
    f: &'a T,
    generation: u64,
    query: &Query,
    tag_index: impl FnOnce() -> &'a TagIndex,
) -> Result<Response, QueryError> {
    match query {
        Query::Men2Ent { mention } => {
            let ids = known_senses(f, mention)?;
            Ok(Response::Senses(
                ids.iter().map(|&id| sense(f, id)).collect(),
            ))
        }
        Query::MentionSenses { mention } => {
            let ids = known_senses(f, mention)?;
            let senses = ids
                .iter()
                .map(|&id| SenseConcepts {
                    sense: sense(f, id),
                    concepts: direct_concepts(f, id),
                })
                .collect();
            Ok(Response::SenseConcepts(senses))
        }
        Query::GetConcept { entity, options } => {
            let id = resolve_entity_key(f, entity)
                .ok_or_else(|| QueryError::UnknownEntity(entity.clone()))?;
            let hits = concept_hits(f, id, options);
            Ok(Response::Concepts(paginate(
                hits,
                &options.page,
                query.fingerprint(),
                generation,
            )?))
        }
        Query::GetConceptByMention { mention, options } => {
            let ids = known_senses(f, mention)?;
            let hits = merged_concept_hits(f, &ids, options);
            Ok(Response::Concepts(paginate(
                hits,
                &options.page,
                query.fingerprint(),
                generation,
            )?))
        }
        Query::GetEntity { concept, options } => {
            let c = f
                .find_concept(concept)
                .ok_or_else(|| QueryError::UnknownConcept(concept.clone()))?;
            // Enumerate light (id, via, confidence) records first and
            // build the display-key `String`s only for the page actually
            // returned — a tiny page over a broad transitive concept must
            // not allocate a key per reachable entity.
            let raw = entity_hits(f, c, options);
            let page = paginate(raw, &options.page, query.fingerprint(), generation)?;
            Ok(Response::Entities(Paged {
                items: page
                    .items
                    .into_iter()
                    .map(|(id, via, confidence)| EntityHit {
                        id,
                        key: f.entity_key(id),
                        via,
                        confidence,
                    })
                    .collect(),
                total: page.total,
                next: page.next,
            }))
        }
        Query::AncestorsOf { concept } => {
            let c = f
                .find_concept(concept)
                .ok_or_else(|| QueryError::UnknownConcept(concept.clone()))?;
            Ok(Response::Ancestors(ancestor_hits(f, c)))
        }
        Query::IsA {
            sub,
            sup,
            transitive,
        } => is_a(f, sub, sup, *transitive),
        // Tagging never errors: an empty or unresolvable document is a
        // legitimately empty result, not an unknown name.
        Query::Tag { text, options } => Ok(Response::Tags(tag_with(f, tag_index(), text, options))),
        Query::Classify { text, options } => Ok(Response::Classified(classify_with(
            f,
            tag_index(),
            text,
            options,
        ))),
    }
}

// ----- resolution ----------------------------------------------------------

/// Resolves a mention, distinguishing "unknown" from "empty": a mention
/// exists iff it has at least one sense.
fn known_senses<T: TaxonomyRead>(f: &T, mention: &str) -> Result<Vec<EntityId>, QueryError> {
    let ids = f.men2ent(mention);
    if ids.is_empty() {
        Err(QueryError::UnknownMention(mention.to_string()))
    } else {
        Ok(ids)
    }
}

/// Resolves an entity display key to exactly one entity: the bare name of
/// an undisambiguated entity, or a full `name（disambig）` key. No string
/// surgery — the snapshot's own key tables decide, so a name that itself
/// contains a full-width bracket cannot be mis-split.
pub(crate) fn resolve_entity_key<T: TaxonomyRead>(f: &T, key: &str) -> Option<EntityId> {
    if let Some(id) = f.find_entity(key, None) {
        return Some(id);
    }
    if !has_disambig(key) {
        return None;
    }
    f.men2ent(key).into_iter().find(|&e| f.entity_key(e) == key)
}

fn sense<T: TaxonomyRead>(f: &T, id: EntityId) -> Sense {
    let rec = f.entity(id);
    let disambig = f.resolve(rec.disambig);
    Sense {
        id,
        name: f.resolve(rec.name).to_string(),
        disambig: if disambig.is_empty() {
            None
        } else {
            Some(disambig.to_string())
        },
        key: f.entity_key(id),
    }
}

fn concept_hit<T: TaxonomyRead>(
    f: &T,
    c: ConceptId,
    direct: bool,
    confidence: Option<f32>,
) -> ConceptHit {
    ConceptHit {
        id: c,
        name: f.concept_name(c).to_string(),
        depth: f.depth(c) as u32,
        direct,
        confidence,
    }
}

// ----- list builders (shared with the compatibility wrapper) ---------------

/// Direct concepts of an entity, in snapshot edge order, no floor.
fn direct_concepts<T: TaxonomyRead>(f: &T, e: EntityId) -> Vec<ConceptHit> {
    f.concepts_of(e)
        .map(|(c, m)| concept_hit(f, c, true, Some(m.confidence)))
        .collect()
}

/// `getConcept` enumeration for one entity: direct edges in snapshot
/// order (gated by the confidence floor), then — when transitive — the
/// deduplicated ancestors of the surviving direct concepts, nearest-first
/// (deeper concepts before shallower, id as tie-break), so consumers that
/// truncate keep the most specific hypernyms.
pub(crate) fn concept_hits<T: TaxonomyRead>(
    f: &T,
    e: EntityId,
    options: &ListOptions,
) -> Vec<ConceptHit> {
    let mut ids: Vec<ConceptId> = Vec::new();
    let mut hits: Vec<ConceptHit> = Vec::new();
    for (c, m) in f.concepts_of(e) {
        if m.confidence >= options.min_confidence {
            ids.push(c);
            hits.push(concept_hit(f, c, true, Some(m.confidence)));
        }
    }
    if options.transitive {
        // Seen-set dedup over the appended tail: the incremental write
        // path can ingest high-fan-in entities whose combined ancestor
        // sets make the old whole-vector `contains` scan quadratic. The
        // output is unchanged — the tail is a set either way, and its
        // order comes entirely from the total (depth desc, id asc) sort
        // below, not from insertion order.
        let mut seen: FxHashSet<ConceptId> = ids.iter().copied().collect();
        let mut tail: Vec<ConceptId> = Vec::new();
        for &d in &ids {
            for a in f.ancestors(d) {
                if seen.insert(a) {
                    tail.push(a);
                }
            }
        }
        tail.sort_unstable_by(|&x, &y| f.depth(y).cmp(&f.depth(x)).then(x.cmp(&y)));
        hits.extend(tail.into_iter().map(|c| concept_hit(f, c, false, None)));
    }
    hits
}

/// `getConcept` by mention: the per-sense enumerations concatenated in
/// sense order, deduplicated by concept id at the *first* occurrence's
/// rank position — multiple senses sharing a hypernym report it once, at
/// its best rank. Directness wins over rank, though: when a later sense
/// holds a *direct*, confidence-carrying edge to a concept an earlier
/// sense only reached transitively, the hit is upgraded in place (same
/// position, `direct = true` plus the edge confidence) instead of letting
/// the indirect occurrence shadow it.
pub(crate) fn merged_concept_hits<T: TaxonomyRead>(
    f: &T,
    senses: &[EntityId],
    options: &ListOptions,
) -> Vec<ConceptHit> {
    let mut out: Vec<ConceptHit> = Vec::new();
    for &e in senses {
        for hit in concept_hits(f, e, options) {
            match out.iter_mut().find(|h| h.id == hit.id) {
                None => out.push(hit),
                Some(existing) => {
                    if hit.direct && !existing.direct {
                        existing.direct = true;
                        existing.confidence = hit.confidence;
                    }
                }
            }
        }
    }
    out
}

/// `getEntity` enumeration for one concept, as light
/// `(entity, via, confidence)` records (the caller builds display keys
/// for the page it returns): the concept's own hyponym row first, then —
/// when transitive — each subconcept's row in BFS
/// (nearest-subconcept-first) order. Rows are confidence-ranked in the
/// snapshot; an entity reachable through several rows is reported at its
/// first position; the floor gates each entity's edge to the row's
/// concept, so an entity skipped on a weak edge can still surface later
/// through a stronger one.
type RawEntityHit = (EntityId, ConceptId, f32);

pub(crate) fn entity_hits<T: TaxonomyRead>(
    f: &T,
    c: ConceptId,
    options: &ListOptions,
) -> Vec<RawEntityHit> {
    let mut seen: FxHashSet<EntityId> = FxHashSet::default();
    let mut out: Vec<RawEntityHit> = Vec::new();
    let push_row = |via: ConceptId, seen: &mut FxHashSet<EntityId>, out: &mut Vec<RawEntityHit>| {
        for (e, confidence) in f.entities_with_confidence(via) {
            if confidence < options.min_confidence {
                continue;
            }
            if seen.insert(e) {
                out.push((e, via, confidence));
            }
        }
    };
    push_row(c, &mut seen, &mut out);
    if options.transitive {
        for sub in f.descendants(c) {
            push_row(sub, &mut seen, &mut out);
        }
    }
    out
}

/// `AncestorsOf` enumeration: the precomputed closure row reordered
/// nearest-first (depth descending, id tie-break); direct parents carry
/// their edge confidence.
pub(crate) fn ancestor_hits<T: TaxonomyRead>(f: &T, c: ConceptId) -> Vec<ConceptHit> {
    let mut ids: Vec<ConceptId> = f.ancestors(c).collect();
    ids.sort_unstable_by(|&x, &y| f.depth(y).cmp(&f.depth(x)).then(x.cmp(&y)));
    ids.into_iter()
        .map(|a| {
            let direct_edge = f.parents_of(c).find(|&(p, _)| p == a);
            concept_hit(
                f,
                a,
                direct_edge.is_some(),
                direct_edge.map(|(_, m)| m.confidence),
            )
        })
        .collect()
}

fn is_a<T: TaxonomyRead>(
    f: &T,
    sub: &str,
    sup: &str,
    transitive: bool,
) -> Result<Response, QueryError> {
    let sup_c = f
        .find_concept(sup)
        .ok_or_else(|| QueryError::UnknownConcept(sup.to_string()))?;
    let concept_holds = |c: ConceptId| {
        if transitive {
            f.ancestor_contains(c, sup_c)
        } else {
            f.parents_of(c).any(|(p, _)| p == sup_c)
        }
    };
    let holds = if let Some(c) = f.find_concept(sub) {
        concept_holds(c)
    } else {
        let senses = f.men2ent(sub);
        if senses.is_empty() {
            return Err(QueryError::UnknownMention(sub.to_string()));
        }
        senses.iter().any(|&e| {
            f.concepts_of(e)
                .any(|(c, _)| c == sup_c || (transitive && f.ancestor_contains(c, sup_c)))
        })
    };
    Ok(Response::IsA { holds })
}

// ----- pagination ----------------------------------------------------------

/// Slices a full enumeration into the requested page, validating any
/// cursor against the query fingerprint and the serving generation.
fn paginate<T>(
    items: Vec<T>,
    page: &PageRequest,
    fingerprint: u64,
    generation: u64,
) -> Result<Paged<T>, QueryError> {
    let total = items.len();
    let offset = match &page.cursor {
        None => 0,
        Some(c) => {
            if c.fingerprint != fingerprint {
                return Err(QueryError::InvalidCursor(CursorError::WrongQuery));
            }
            if c.generation != generation {
                return Err(QueryError::InvalidCursor(CursorError::WrongGeneration {
                    cursor: c.generation,
                    serving: generation,
                }));
            }
            if c.offset > total {
                return Err(QueryError::InvalidCursor(CursorError::OutOfRange {
                    offset: c.offset,
                    total,
                }));
            }
            c.offset
        }
    };
    let end = offset.saturating_add(page.limit).min(total);
    let next = (end < total).then_some(Cursor {
        generation,
        offset: end,
        fingerprint,
    });
    let items: Vec<T> = items.into_iter().skip(offset).take(end - offset).collect();
    Ok(Paged { items, total, next })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_taxonomy::{FrozenTaxonomy, IsAMeta, Source, TaxonomyStore};

    /// Two senses of the same bare mention: sense 0 reaches 人物 only
    /// transitively (through 演员), sense 1 holds a direct,
    /// confidence-carrying edge to it.
    fn two_sense_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let actor_sense = s.add_entity("阿伦", Some("演员"));
        let host_sense = s.add_entity("阿伦", Some("主持人"));
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_entity_is_a(actor_sense, actor, IsAMeta::new(Source::Bracket, 0.95));
        s.add_entity_is_a(host_sense, person, IsAMeta::new(Source::Tag, 0.8));
        s
    }

    #[test]
    fn direct_hit_is_not_shadowed_by_earlier_senses_indirect_hit() {
        let f = FrozenTaxonomy::freeze(&two_sense_store());
        let senses = TaxonomyRead::men2ent(&f, "阿伦");
        assert_eq!(senses.len(), 2, "both senses resolve from the bare name");
        let person = f.find_concept("人物").unwrap();

        let hits = merged_concept_hits(&f, &senses, &ListOptions::transitive());
        let person_hit = hits.iter().find(|h| h.id == person).expect("人物 reported");
        // Pre-fix, the first sense's transitive occurrence won the dedup
        // and the direct edge's confidence was dropped.
        assert!(person_hit.direct, "direct edge must win over indirect");
        assert_eq!(person_hit.confidence, Some(0.8));

        // The upgrade keeps the earlier occurrence's rank position and
        // changes no other hit.
        let actor = f.find_concept("演员").unwrap();
        let order: Vec<ConceptId> = hits.iter().map(|h| h.id).collect();
        assert_eq!(order, vec![actor, person]);
        let actor_hit = &hits[0];
        assert!(actor_hit.direct);
        assert_eq!(actor_hit.confidence, Some(0.95));
    }

    #[test]
    fn merged_hits_keep_first_direct_occurrence() {
        // Both senses hold *direct* edges to 人物: the earlier sense's
        // confidence must survive the merge unchanged.
        let mut s = two_sense_store();
        let actor_sense = s.find_entity("阿伦", Some("演员")).unwrap();
        let person = s.find_concept("人物").unwrap();
        s.add_entity_is_a(actor_sense, person, IsAMeta::new(Source::Infobox, 0.6));
        let f = FrozenTaxonomy::freeze(&s);
        let senses = TaxonomyRead::men2ent(&f, "阿伦");

        let hits = merged_concept_hits(&f, &senses, &ListOptions::transitive());
        let person_hit = hits.iter().find(|h| h.id == person).unwrap();
        assert!(person_hit.direct);
        assert_eq!(person_hit.confidence, Some(0.6));
    }

    /// The pre-PR-9 transitive tail: whole-vector `contains` dedup. Kept
    /// as the reference the seen-set rewrite is locked against.
    fn concept_hits_reference<T: TaxonomyRead>(
        f: &T,
        e: EntityId,
        options: &ListOptions,
    ) -> Vec<ConceptHit> {
        let mut ids: Vec<ConceptId> = Vec::new();
        let mut hits: Vec<ConceptHit> = Vec::new();
        for (c, m) in f.concepts_of(e) {
            if m.confidence >= options.min_confidence {
                ids.push(c);
                hits.push(concept_hit(f, c, true, Some(m.confidence)));
            }
        }
        if options.transitive {
            let n_direct = ids.len();
            for i in 0..n_direct {
                for a in f.ancestors(ids[i]) {
                    if !ids.contains(&a) {
                        ids.push(a);
                    }
                }
            }
            let mut tail = ids.split_off(n_direct);
            tail.sort_unstable_by(|&x, &y| f.depth(y).cmp(&f.depth(x)).then(x.cmp(&y)));
            hits.extend(tail.into_iter().map(|c| concept_hit(f, c, false, None)));
        }
        hits
    }

    #[test]
    fn seen_set_tail_matches_reference_order_exactly() {
        // A high-fan-in entity over a multi-level DAG with heavily shared
        // ancestors — the shape the overlay write path now produces, and
        // the one where insertion order into the tail differs most
        // between the two dedup strategies.
        let mut s = TaxonomyStore::new();
        let e = s.add_entity("万能选手", None);
        let root = s.add_concept("万物");
        let mut mids = Vec::new();
        for i in 0..6 {
            let m = s.add_concept(&format!("中类{i}"));
            s.add_concept_is_a(m, root, IsAMeta::new(Source::SubConcept, 0.9));
            mids.push(m);
        }
        for i in 0..24 {
            let leaf = s.add_concept(&format!("细类{i}"));
            // Each leaf hangs under two mid concepts, sharing ancestors.
            s.add_concept_is_a(leaf, mids[i % 6], IsAMeta::new(Source::SubConcept, 0.85));
            s.add_concept_is_a(
                leaf,
                mids[(i + 1) % 6],
                IsAMeta::new(Source::SubConcept, 0.8),
            );
            s.add_entity_is_a(e, leaf, IsAMeta::new(Source::Tag, 0.5 + (i as f32) * 0.02));
        }
        let f = FrozenTaxonomy::freeze(&s);

        for options in [
            ListOptions::transitive(),
            ListOptions::default(),
            ListOptions {
                transitive: true,
                min_confidence: 0.7,
                ..ListOptions::default()
            },
        ] {
            assert_eq!(
                concept_hits(&f, e, &options),
                concept_hits_reference(&f, e, &options),
                "options {options:?}"
            );
        }
    }
}
