#![forbid(unsafe_code)]
//! # cnp-serve — Serving API v1 for CN-Probase
//!
//! CN-Probase's value is its serving surface: the paper's Table II APIs
//! (`men2ent`, `getConcept`, `getEntity`) answered under heavy online
//! traffic (43.9 M `men2ent` calls over six months, §V). This crate is the
//! typed read-path protocol layered on the immutable
//! [`cnp_taxonomy::FrozenTaxonomy`] snapshot:
//!
//! * [`Query`] — one enum covering every Table II operation plus
//!   [`Query::AncestorsOf`], [`Query::IsA`] and [`Query::MentionSenses`],
//!   with per-query [`ListOptions`] (transitive flag, confidence floor,
//!   stable pagination via an opaque [`Cursor`]).
//! * [`Response`] / [`QueryResponse`] — the matching typed results. Errors
//!   distinguish [`QueryError::UnknownMention`] /
//!   [`QueryError::UnknownConcept`] / [`QueryError::InvalidCursor`] from
//!   genuinely empty results, and every response carries the snapshot
//!   **generation** it was answered from.
//! * [`TaxonomyService`] — executes single queries lock-free on a pinned
//!   immutable snapshot, fans [`TaxonomyService::execute_batch`] out over
//!   the shared [`cnp_runtime::Runtime`], and hot-swaps snapshots under
//!   live traffic ([`TaxonomyService::reload`] /
//!   [`TaxonomyService::swap`]): in-flight queries finish on the
//!   generation they pinned, new queries see the new one, nothing blocks.
//! * [`ProbaseApi`] — the paper-era three-call interface, kept as a thin
//!   compatibility wrapper over the service (same answers, verified by
//!   the `serve_equivalence` integration test).
//! * [`wire`] / [`json`] — the network-facing codec: every [`Query`] and
//!   [`QueryResponse`] as a JSON document (hand-rolled, hardened parser;
//!   no registry deps), plus the typed-error → HTTP-status mapping the
//!   `cnp_server` front-end serves.
//!
//! ## Quickstart
//!
//! ```
//! use cnp_serve::{ListOptions, Query, Response, TaxonomyService};
//! use cnp_taxonomy::{IsAMeta, Source, TaxonomyStore};
//!
//! let mut store = TaxonomyStore::new();
//! let liu = store.add_entity("刘德华", None);
//! let singer = store.add_concept("歌手");
//! let person = store.add_concept("人物");
//! store.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
//! store.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.95));
//!
//! let service = TaxonomyService::from_store(store);
//! let response = service.execute(&Query::GetConceptByMention {
//!     mention: "刘德华".to_string(),
//!     options: ListOptions::transitive(),
//! });
//! assert_eq!(response.generation, 1);
//! let Ok(Response::Concepts(page)) = response.result else {
//!     panic!("typed response");
//! };
//! let names: Vec<&str> = page.items.iter().map(|h| h.name.as_str()).collect();
//! assert_eq!(names, ["歌手", "人物"]);
//! ```

mod compat;
mod exec;
pub mod json;
mod query;
mod response;
mod service;
pub mod wire;

pub use compat::{EntitySense, ProbaseApi};
pub use query::{Cursor, ListOptions, PageRequest, Query};
pub use response::{
    ConceptHit, CursorError, EntityHit, Paged, QueryError, QueryResponse, Response, Sense,
    SenseConcepts,
};
pub use service::{PinnedSnapshot, TaxonomyService};

// The tagging workload's request/response vocabulary, re-exported so wire
// and server layers (and downstream users) need only this crate.
pub use cnp_tag::{SpanKind, TagHit, TagIndex, TagOptions, TagOutput, TagSpan};
