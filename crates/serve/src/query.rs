//! The request side of Serving API v1: the [`Query`] enum, per-query
//! [`ListOptions`] and the opaque, stable pagination [`Cursor`].

use crate::response::CursorError;
use cnp_runtime::stable_hash_str;
use cnp_tag::TagOptions;

/// Which page of a list result to return.
///
/// `limit` bounds the number of items in the page; `cursor` resumes a
/// previous page exactly where it ended. Cursors are *stable*: the
/// underlying enumeration order is a pure function of the snapshot (see
/// [`cnp_taxonomy::FrozenTaxonomy::entities_of`]), so walking pages never
/// skips or repeats an item while the generation is unchanged — and a
/// cursor from another generation, or from a different query, is rejected
/// as [`CursorError`] instead of silently returning garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRequest {
    /// Maximum items in the page (`usize::MAX` for all).
    pub limit: usize,
    /// Resume point from a previous page's [`crate::Paged::next`].
    pub cursor: Option<Cursor>,
}

impl Default for PageRequest {
    fn default() -> Self {
        PageRequest::all()
    }
}

impl PageRequest {
    /// The whole result in one page.
    pub fn all() -> Self {
        PageRequest {
            limit: usize::MAX,
            cursor: None,
        }
    }

    /// The first page of `limit` items.
    pub fn first(limit: usize) -> Self {
        PageRequest {
            limit,
            cursor: None,
        }
    }

    /// The page of `limit` items starting where `cursor` left off.
    pub fn after(limit: usize, cursor: Cursor) -> Self {
        PageRequest {
            limit,
            cursor: Some(cursor),
        }
    }
}

/// Per-query options for the list-returning operations.
#[derive(Debug, Clone, PartialEq)]
pub struct ListOptions {
    /// Follow the isA closure: transitive hypernyms for `getConcept`,
    /// entities of transitive subconcepts for `getEntity`.
    pub transitive: bool,
    /// Confidence floor on the direct isA edges considered (`0.0` keeps
    /// everything). For `getConcept` the floor gates which direct edges
    /// seed the transitive expansion; for `getEntity` it gates each
    /// entity's edge to the concept it is reached through.
    pub min_confidence: f32,
    /// Pagination window.
    pub page: PageRequest,
}

impl Default for ListOptions {
    fn default() -> Self {
        ListOptions {
            transitive: false,
            min_confidence: 0.0,
            page: PageRequest::all(),
        }
    }
}

impl ListOptions {
    /// Defaults with the transitive flag set.
    pub fn transitive() -> Self {
        ListOptions {
            transitive: true,
            ..Default::default()
        }
    }

    /// Returns the options with the confidence floor set.
    pub fn with_min_confidence(mut self, floor: f32) -> Self {
        self.min_confidence = floor;
        self
    }

    /// Returns the options with the pagination window set.
    pub fn with_page(mut self, page: PageRequest) -> Self {
        self.page = page;
        self
    }
}

/// One serving request — every Table II operation plus the taxonomy
/// navigation queries, as data.
///
/// Entities are addressed by their full display key (`刘德华（中国香港男演
/// 员）`, or the bare name for an undisambiguated entity); mentions are
/// free-form surface strings resolved through `men2ent`; concepts are
/// addressed by name.
///
/// ```
/// use cnp_serve::{ListOptions, PageRequest, Query};
///
/// // Table II getEntity, transitive, first page of 10 hyponyms.
/// let q = Query::GetEntity {
///     concept: "人物".to_string(),
///     options: ListOptions::transitive().with_page(PageRequest::first(10)),
/// };
/// assert!(matches!(q, Query::GetEntity { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `men2ent`: resolve a mention to its entity senses.
    Men2Ent {
        /// Surface mention (name, full key or alias).
        mention: String,
    },
    /// The disambiguation view of a mention: every sense together with its
    /// direct concepts, so a caller can pick a sense in one round trip.
    MentionSenses {
        /// Surface mention (name, full key or alias).
        mention: String,
    },
    /// `getConcept`: hypernyms of one entity.
    GetConcept {
        /// Full display key of the entity.
        entity: String,
        /// Transitive flag, confidence floor, pagination.
        options: ListOptions,
    },
    /// `getConcept` by mention: hypernyms merged over every sense of a
    /// mention, deduplicated in rank order.
    GetConceptByMention {
        /// Surface mention (name, full key or alias).
        mention: String,
        /// Transitive flag, confidence floor, pagination.
        options: ListOptions,
    },
    /// `getEntity`: hyponym entities of a concept, ranked by descending
    /// edge confidence (entity id as tie-break).
    GetEntity {
        /// Concept name.
        concept: String,
        /// Transitive flag, confidence floor, pagination.
        options: ListOptions,
    },
    /// All transitive ancestors of a concept, nearest-first.
    AncestorsOf {
        /// Concept name.
        concept: String,
    },
    /// Does `sub` (an entity mention or a concept name) stand in an isA
    /// relation to the concept `sup`?
    IsA {
        /// Subject: tried as a concept name first, then as a mention
        /// (any sense may witness the relation).
        sub: String,
        /// Object concept name.
        sup: String,
        /// Follow the isA closure instead of direct edges only.
        transitive: bool,
    },
    /// Tag a document: segment, resolve mentions, rank taxonomy concepts
    /// coarse-to-fine; answers with evidence spans plus the concept list.
    Tag {
        /// The document text.
        text: String,
        /// Result size, score floor, refinement beam.
        options: TagOptions,
    },
    /// Classify a document: the same scoring pass as [`Query::Tag`], but
    /// the answer carries the ranked concepts only.
    Classify {
        /// The document text.
        text: String,
        /// Result size, score floor, refinement beam.
        options: TagOptions,
    },
}

impl Query {
    /// Convenience constructor for [`Query::Men2Ent`].
    pub fn men2ent(mention: impl Into<String>) -> Self {
        Query::Men2Ent {
            mention: mention.into(),
        }
    }

    /// Identity hash of the query *excluding* its pagination window: two
    /// pages of the same logical query share a fingerprint, so a cursor
    /// minted by one page is valid for the next — and a cursor replayed
    /// against a different query is rejected instead of mis-slicing.
    pub(crate) fn fingerprint(&self) -> u64 {
        const SEP: char = '\u{1}';
        let canon = match self {
            Query::Men2Ent { mention } => format!("men2ent{SEP}{mention}"),
            Query::MentionSenses { mention } => format!("mentionSenses{SEP}{mention}"),
            Query::GetConcept { entity, options } => format!(
                "getConcept{SEP}{entity}{SEP}{}{SEP}{:08x}",
                options.transitive,
                options.min_confidence.to_bits()
            ),
            Query::GetConceptByMention { mention, options } => format!(
                "getConceptByMention{SEP}{mention}{SEP}{}{SEP}{:08x}",
                options.transitive,
                options.min_confidence.to_bits()
            ),
            Query::GetEntity { concept, options } => format!(
                "getEntity{SEP}{concept}{SEP}{}{SEP}{:08x}",
                options.transitive,
                options.min_confidence.to_bits()
            ),
            Query::AncestorsOf { concept } => format!("ancestorsOf{SEP}{concept}"),
            Query::IsA {
                sub,
                sup,
                transitive,
            } => format!("isA{SEP}{sub}{SEP}{sup}{SEP}{transitive}"),
            Query::Tag { text, options } => format!(
                "tag{SEP}{text}{SEP}{}{SEP}{:08x}{SEP}{}",
                options.top_k,
                options.min_score.to_bits(),
                options.beam
            ),
            Query::Classify { text, options } => format!(
                "classify{SEP}{text}{SEP}{}{SEP}{:08x}{SEP}{}",
                options.top_k,
                options.min_score.to_bits(),
                options.beam
            ),
        };
        stable_hash_str(&canon)
    }
}

/// Opaque resume point for paginated results.
///
/// A cursor binds three things: the *offset* into the stable enumeration,
/// the snapshot *generation* the enumeration belongs to, and a
/// *fingerprint* of the query it paginates. Execution rejects a cursor
/// whose generation or fingerprint does not match
/// ([`crate::QueryError::InvalidCursor`]) — after a hot-swap the offsets
/// of the old enumeration are meaningless, and failing loudly beats
/// silently skipping or repeating entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    pub(crate) generation: u64,
    pub(crate) offset: usize,
    pub(crate) fingerprint: u64,
}

impl Cursor {
    /// Snapshot generation the cursor was minted on.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Items already consumed by earlier pages.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Serializes the cursor into a wire token.
    pub fn encode(&self) -> String {
        format!(
            "v1.g{}.o{}.q{:016x}",
            self.generation, self.offset, self.fingerprint
        )
    }

    /// Parses a wire token produced by [`Cursor::encode`].
    pub fn decode(token: &str) -> Result<Cursor, CursorError> {
        let mut parts = token.split('.');
        let (Some("v1"), Some(g), Some(o), Some(q), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(CursorError::Malformed);
        };
        let generation = g
            .strip_prefix('g')
            .and_then(|v| v.parse().ok())
            .ok_or(CursorError::Malformed)?;
        let offset = o
            .strip_prefix('o')
            .and_then(|v| v.parse().ok())
            .ok_or(CursorError::Malformed)?;
        let fingerprint = q
            .strip_prefix('q')
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or(CursorError::Malformed)?;
        Ok(Cursor {
            generation,
            offset,
            fingerprint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_token_round_trips() {
        let c = Cursor {
            generation: 7,
            offset: 1234,
            fingerprint: 0xdead_beef_cafe_f00d,
        };
        assert_eq!(Cursor::decode(&c.encode()), Ok(c));
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for bad in [
            "",
            "v1",
            "v2.g1.o0.q0000000000000000",
            "v1.g1.o0",
            "v1.gx.o0.q0",
            "v1.g1.ox.q0",
            "v1.g1.o0.qzz",
            "v1.g1.o0.q0.extra",
        ] {
            assert_eq!(Cursor::decode(bad), Err(CursorError::Malformed), "{bad}");
        }
    }

    #[test]
    fn fingerprint_ignores_page_but_not_options() {
        let base = Query::GetEntity {
            concept: "人物".to_string(),
            options: ListOptions::transitive(),
        };
        let paged = Query::GetEntity {
            concept: "人物".to_string(),
            options: ListOptions::transitive().with_page(PageRequest::first(3)),
        };
        assert_eq!(base.fingerprint(), paged.fingerprint());
        let direct = Query::GetEntity {
            concept: "人物".to_string(),
            options: ListOptions::default(),
        };
        assert_ne!(base.fingerprint(), direct.fingerprint());
        let floored = Query::GetEntity {
            concept: "人物".to_string(),
            options: ListOptions::transitive().with_min_confidence(0.5),
        };
        assert_ne!(base.fingerprint(), floored.fingerprint());
        assert_ne!(base.fingerprint(), Query::men2ent("人物").fingerprint());
    }
}
