#![forbid(unsafe_code)]
//! # cnp_tag — taxonomy-backed document tagging
//!
//! The second serving workload of the CN-Probase reproduction: given free
//! text, rank taxonomy concepts for the *whole document*. Where the
//! Table II queries answer "what is 刘德华?", this crate answers "what is
//! this article about?" — the consumer the paper's taxonomy exists for
//! (domain classification fails without a taxonomy that models relations
//! between classes).
//!
//! The pipeline composes three ingredients the workspace already has:
//!
//! 1. **Segmentation** ([`cnp_text::Segmenter`]) with a dictionary
//!    *vocabulary-seeded from the snapshot's mention table*
//!    ([`TagIndex`]): every entity name and concept name is folded into
//!    the segmenter's dictionary so taxonomy names survive segmentation
//!    as single tokens instead of being split into unknown characters.
//! 2. **Mention resolution** through `men2ent`: longest-match token
//!    spans (a window of adjacent tokens is joined and probed longest
//!    first), with an NER-gated fallback for out-of-vocabulary spans —
//!    a span the taxonomy has never seen is kept as evidence only when
//!    [`cnp_text::NeRecognizer`] recognises it as a named entity, and it
//!    contributes no concept mass.
//! 3. **Coarse-to-fine hierarchical scoring** ([`tag_with`]): evidence
//!    mass flows from hit entities up the ancestor closure with
//!    depth-discounted weights (coarse pass), then a refinement pass
//!    walks the hierarchy level by level and re-scores the evidenced
//!    children of the top-`beam` concepts of each level, so specific
//!    concepts beat the generic ancestors they propagated mass into.
//!
//! The output is a deterministic top-k of `(concept, score, evidence
//! spans)`: tie-breaks are stable (score descending via `total_cmp`,
//! concept id ascending), accumulation order is fixed (`BTreeMap` over
//! ids, ancestor rows ascending), and nothing depends on thread count or
//! snapshot representation — the same document tags identically on the
//! owned `FrozenTaxonomy`, the zero-copy `FrozenTaxonomyView` and any
//! `OverlayView` stack, at any batch width.
//!
//! ```
//! use cnp_tag::{TagOptions, Tagger};
//! use cnp_taxonomy::{FrozenTaxonomy, IsAMeta, Source, TaxonomyStore};
//! use std::sync::Arc;
//!
//! let mut store = TaxonomyStore::new();
//! let liu = store.add_entity("刘德华", None);
//! let singer = store.add_concept("歌手");
//! let person = store.add_concept("人物");
//! store.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
//! store.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.95));
//!
//! let tagger = Tagger::new(Arc::new(FrozenTaxonomy::freeze(&store)));
//! let out = tagger.tag("刘德华发布了新专辑。", &TagOptions::default());
//! assert_eq!(out.concepts.first().map(|h| h.name.as_str()), Some("歌手"));
//! ```

pub mod index;
pub mod score;

pub use index::TagIndex;
pub use score::{classify_with, tag_with, SpanKind, TagHit, TagOptions, TagOutput, TagSpan};

use cnp_taxonomy::TaxonomyRead;
use std::sync::Arc;

/// The standalone front door: a snapshot plus its prebuilt [`TagIndex`].
///
/// The serving layer (`cnp_serve`) drives [`tag_with`] directly with a
/// per-generation cached index; `Tagger` bundles the two for examples,
/// benchmarks and offline use.
pub struct Tagger<B: TaxonomyRead> {
    snapshot: Arc<B>,
    index: TagIndex,
}

impl<B: TaxonomyRead> Tagger<B> {
    /// Builds the mention-table-seeded index for `snapshot` and wraps
    /// both. Costs one pass over the entity and concept tables.
    pub fn new(snapshot: Arc<B>) -> Self {
        let index = TagIndex::build(&*snapshot);
        Tagger { snapshot, index }
    }

    /// The snapshot the tagger serves from.
    pub fn snapshot(&self) -> &B {
        &self.snapshot
    }

    /// The vocabulary-seeded index.
    pub fn index(&self) -> &TagIndex {
        &self.index
    }

    /// Tags a document: evidence spans plus the ranked concept list.
    pub fn tag(&self, text: &str, options: &TagOptions) -> TagOutput {
        tag_with(&*self.snapshot, &self.index, text, options)
    }

    /// Classifies a document: the ranked concept list only (the same
    /// scoring pass as [`Tagger::tag`], without materialising spans in
    /// the result).
    pub fn classify(&self, text: &str, options: &TagOptions) -> Vec<TagHit> {
        classify_with(&*self.snapshot, &self.index, text, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_taxonomy::{FrozenTaxonomy, IsAMeta, Source, TaxonomyStore};

    fn music_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let person = s.add_concept("人物");
        let singer = s.add_concept("歌手");
        let actor = s.add_concept("演员");
        let work = s.add_concept("作品");
        let album = s.add_concept("专辑");
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(album, work, IsAMeta::new(Source::SubConcept, 0.9));
        let liu = s.add_entity("刘德华", None);
        let zhang = s.add_entity("张学友", None);
        let kisses = s.add_entity("吻别", None);
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(liu, actor, IsAMeta::new(Source::Tag, 0.8));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.95));
        s.add_entity_is_a(kisses, album, IsAMeta::new(Source::Infobox, 0.9));
        s
    }

    #[test]
    fn tagger_ranks_specific_concept_over_generic_ancestor() {
        let tagger = Tagger::new(Arc::new(FrozenTaxonomy::freeze(&music_store())));
        let out = tagger.tag("张学友和刘德华合唱了吻别。", &TagOptions::default());
        let names: Vec<&str> = out.concepts.iter().map(|h| h.name.as_str()).collect();
        // Two singer hits beat everything; the generic ancestor 人物
        // collects propagated mass but must rank below 歌手.
        assert_eq!(names.first(), Some(&"歌手"));
        let singer_pos = names.iter().position(|&n| n == "歌手");
        let person_pos = names.iter().position(|&n| n == "人物");
        assert!(singer_pos < person_pos, "{names:?}");
    }

    #[test]
    fn evidence_spans_point_back_into_the_document() {
        let tagger = Tagger::new(Arc::new(FrozenTaxonomy::freeze(&music_store())));
        let text = "刘德华发布新专辑。";
        let out = tagger.tag(text, &TagOptions::default());
        let chars: Vec<char> = text.chars().collect();
        for span in &out.spans {
            let covered: String = chars
                .get(span.start as usize..span.end as usize)
                .unwrap_or(&[])
                .iter()
                .collect();
            assert_eq!(covered, span.text, "span offsets must match the text");
        }
        assert!(out.spans.iter().any(|s| s.text == "刘德华"));
    }

    #[test]
    fn classify_matches_tag_concepts() {
        let tagger = Tagger::new(Arc::new(FrozenTaxonomy::freeze(&music_store())));
        let text = "刘德华和张学友都是歌手。";
        let opts = TagOptions::default();
        assert_eq!(
            tagger.classify(text, &opts),
            tagger.tag(text, &opts).concepts
        );
    }

    #[test]
    fn empty_and_unknown_text_tag_to_nothing() {
        let tagger = Tagger::new(Arc::new(FrozenTaxonomy::freeze(&music_store())));
        for text in ["", "今天天气很好。", "hello world 123"] {
            let out = tagger.tag(text, &TagOptions::default());
            assert!(out.concepts.is_empty(), "{text:?}");
        }
    }
}
