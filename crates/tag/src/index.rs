//! [`TagIndex`]: the per-snapshot, vocabulary-seeded text front end.
//!
//! Built once per snapshot generation and shared by every tag query on
//! it: a [`Segmenter`] whose dictionary is the base lexicon *plus every
//! entity name and concept name the snapshot knows*, so taxonomy names
//! survive segmentation as single tokens (the stock dictionary would
//! split an unknown 三字名 into characters the HMM then guesses at), and
//! an [`NeRecognizer`] over the same dictionary that gates which
//! out-of-vocabulary spans count as evidence.

use cnp_taxonomy::{ConceptId, EntityId, TaxonomyRead};
use cnp_text::chars::char_len;
use cnp_text::{Dictionary, NeRecognizer, PosTag, Segmenter};
use std::fmt;

/// Dictionary frequency for seeded taxonomy names. High enough that the
/// max-probability path keeps a seeded multi-character name whole against
/// a split into common single characters, low enough not to drown the
/// base lexicon's real statistics for words that are both.
const SEED_FREQ: u64 = 500;

/// The longest seeded name, in characters, the resolver's longest-match
/// window needs to cover. Names longer than this still seed the
/// dictionary (the segmenter keeps them whole in one token); the cap only
/// bounds how many *adjacent tokens* resolution will join.
pub const MAX_SPAN_TOKENS: usize = 4;

/// The per-snapshot text front end for tagging: seeded segmenter + NER.
///
/// Deliberately snapshot-*derived* but snapshot-*independent* state: it
/// holds owned strings only, so the serving layer can cache it next to a
/// pinned generation without borrowing from it.
pub struct TagIndex {
    segmenter: Segmenter,
    ner: NeRecognizer,
    seeded: usize,
}

impl TagIndex {
    /// Builds the index from a snapshot: one pass over the entity table
    /// and one over the concept table, folding every name into the base
    /// dictionary as a noun.
    ///
    /// Ids are dense on every backend (`0..num_entities`, with overlay
    /// rows appended after the base range), so enumeration by index is
    /// the representation-independent way to walk the mention table.
    pub fn build<T: TaxonomyRead>(f: &T) -> TagIndex {
        let mut dict = Dictionary::base();
        let mut seeded = 0usize;
        for i in 0..f.num_entities() {
            let rec = f.entity(EntityId(i as u32));
            seeded += seed_word(&mut dict, f.resolve(rec.name));
        }
        for i in 0..f.num_concepts() {
            seeded += seed_word(&mut dict, f.concept_name(ConceptId(i as u32)));
        }
        let ner = NeRecognizer::new(dict.clone());
        TagIndex {
            segmenter: Segmenter::new(dict),
            ner,
            seeded,
        }
    }

    /// The seeded segmenter.
    pub fn segmenter(&self) -> &Segmenter {
        &self.segmenter
    }

    /// The NER gate for out-of-vocabulary spans.
    pub fn ner(&self) -> &NeRecognizer {
        &self.ner
    }

    /// How many taxonomy names were folded into the dictionary.
    pub fn seeded_words(&self) -> usize {
        self.seeded
    }
}

impl fmt::Debug for TagIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TagIndex")
            .field("seeded", &self.seeded)
            .field("dictionary_len", &self.segmenter.dictionary().len())
            .finish()
    }
}

/// Seeds one taxonomy name into the dictionary; returns 1 if it added a
/// word. Single characters are skipped (they segment fine already and a
/// seeded frequency would skew the DP for ordinary text); words the base
/// lexicon already holds keep their real statistics.
fn seed_word(dict: &mut Dictionary, name: &str) -> usize {
    if char_len(name) < 2 || dict.contains(name) {
        return 0;
    }
    dict.add_word(name, SEED_FREQ, PosTag::Noun);
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_taxonomy::{FrozenTaxonomy, IsAMeta, Source, TaxonomyStore};

    #[test]
    fn seeded_names_survive_segmentation_whole() {
        let mut s = TaxonomyStore::new();
        let e = s.add_entity("珞珈山", None);
        let c = s.add_concept("山峰");
        s.add_entity_is_a(e, c, IsAMeta::new(Source::Tag, 0.9));
        let f = FrozenTaxonomy::freeze(&s);

        let unseeded = Segmenter::new(Dictionary::base());
        let index = TagIndex::build(&f);
        assert!(index.seeded_words() >= 2);

        let text = "珞珈山是著名山峰。";
        let seeded_tokens = index.segmenter().segment(text);
        assert!(
            seeded_tokens.iter().any(|t| t == "珞珈山"),
            "seeded: {seeded_tokens:?}"
        );
        assert!(seeded_tokens.iter().any(|t| t == "山峰"));
        // Without seeding the name need not survive as one token — the
        // point of the index. (Not asserted as a must-split: the HMM may
        // occasionally recover it; the guarantee only exists when seeded.)
        let _ = unseeded.segment(text);
    }

    #[test]
    fn single_char_names_do_not_skew_the_dictionary() {
        let mut s = TaxonomyStore::new();
        s.add_entity("水", None);
        let f = FrozenTaxonomy::freeze(&s);
        let index = TagIndex::build(&f);
        assert_eq!(index.seeded_words(), 0);
    }
}
