//! Mention resolution and coarse-to-fine concept scoring.
//!
//! [`resolve_spans`] turns segmented tokens into evidence spans: a
//! longest-match window of adjacent tokens is probed against `men2ent`
//! (entity evidence) and `find_concept` (the document literally names a
//! concept), and unresolved spans survive only through the NER gate.
//! [`tag_with`] then scores concepts in three deterministic passes:
//!
//! 1. **Direct mass**: each entity span contributes its isA edge
//!    confidences, split evenly across the mention's senses; each concept
//!    span contributes unit mass.
//! 2. **Coarse propagation**: direct mass flows up the ancestor closure,
//!    discounted by `DECAY` per depth level — a document about 歌手 is
//!    *somewhat* about 人物, but less so.
//! 3. **Fine refinement**: walking depth levels from the roots down, the
//!    top-`beam` concepts of each level hand `REFINE` of their mass back
//!    to their directly-evidenced children — so a specific concept with
//!    real evidence overtakes the generic ancestor that only collected
//!    propagated mass.
//!
//! Everything accumulates in a fixed order (`BTreeMap` over ids, ancestor
//! rows ascending, spans left to right), so scores are bit-identical
//! across snapshot backends and independent of batch thread count.

use crate::index::{TagIndex, MAX_SPAN_TOKENS};
use cnp_taxonomy::{ConceptId, EntityId, TaxonomyRead};
use cnp_text::chars::{char_len, is_punct};
use std::collections::BTreeMap;

/// Per-depth-level mass discount of the coarse upward propagation.
const DECAY: f64 = 0.5;

/// Fraction of a high-mass concept's score handed back to each of its
/// directly-evidenced children in the refinement pass.
const REFINE: f64 = 0.5;

/// Options for one tag/classify request.
#[derive(Debug, Clone, PartialEq)]
pub struct TagOptions {
    /// Maximum concepts returned.
    pub top_k: usize,
    /// Score floor: concepts below it are dropped from the result.
    pub min_score: f32,
    /// Per-level beam of the refinement pass: at each depth level, only
    /// the `beam` highest-mass concepts re-score their children.
    pub beam: usize,
}

impl Default for TagOptions {
    fn default() -> Self {
        TagOptions {
            top_k: 5,
            min_score: 0.0,
            beam: 8,
        }
    }
}

impl TagOptions {
    /// Returns the options with the result size set.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Returns the options with the score floor set.
    pub fn with_min_score(mut self, min_score: f32) -> Self {
        self.min_score = min_score;
        self
    }

    /// Returns the options with the refinement beam set.
    pub fn with_beam(mut self, beam: usize) -> Self {
        self.beam = beam;
        self
    }
}

/// What a resolved span is evidence *of*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    /// The span is a mention: its candidate entity senses, in `men2ent`
    /// order.
    Entities(Vec<EntityId>),
    /// The span literally names a concept.
    Concept(ConceptId),
    /// Out-of-taxonomy span the NER gate recognised as a named entity.
    /// Surfaced for the caller but contributing no concept mass.
    NamedEntity,
}

/// One evidence span of the input document, in character offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct TagSpan {
    /// First character of the span (char index, not byte).
    pub start: u32,
    /// One past the last character of the span.
    pub end: u32,
    /// The covered text.
    pub text: String,
    /// What the span resolved to.
    pub kind: SpanKind,
}

/// One ranked concept of the result.
#[derive(Debug, Clone, PartialEq)]
pub struct TagHit {
    /// Snapshot handle (valid within the response's generation).
    pub id: ConceptId,
    /// Concept name.
    pub name: String,
    /// Depth in the concept DAG (longest chain to a root).
    pub depth: u32,
    /// Propagated-and-refined evidence mass.
    pub score: f32,
    /// Indices into the result's span list that contributed mass to this
    /// concept (directly or through descendants), ascending, deduplicated.
    pub evidence: Vec<u32>,
}

/// The tag result: the document's evidence spans and the ranked concepts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TagOutput {
    /// Evidence spans, left to right.
    pub spans: Vec<TagSpan>,
    /// Concepts, score descending (concept id as tie-break), truncated to
    /// `top_k` after the `min_score` floor.
    pub concepts: Vec<TagHit>,
}

/// Tags a document against a snapshot through a prebuilt [`TagIndex`].
pub fn tag_with<T: TaxonomyRead>(
    f: &T,
    index: &TagIndex,
    text: &str,
    options: &TagOptions,
) -> TagOutput {
    let spans = resolve_spans(f, index, text);
    let concepts = score_spans(f, &spans, options);
    TagOutput { spans, concepts }
}

/// Classifies a document: the ranked concepts of [`tag_with`], without
/// carrying the span list into the result.
pub fn classify_with<T: TaxonomyRead>(
    f: &T,
    index: &TagIndex,
    text: &str,
    options: &TagOptions,
) -> Vec<TagHit> {
    tag_with(f, index, text, options).concepts
}

// ----- resolution -----------------------------------------------------------

struct Token {
    text: String,
    start: u32,
    end: u32,
    punct: bool,
}

fn tokenize(index: &TagIndex, text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut at = 0u32;
    for tok in index.segmenter().segment(text) {
        let len = char_len(&tok) as u32;
        let punct = tok.chars().all(is_punct);
        out.push(Token {
            start: at,
            end: at + len,
            punct,
            text: tok,
        });
        at += len;
    }
    out
}

/// Resolves candidate mention spans: greedy longest-match over windows of
/// up to [`MAX_SPAN_TOKENS`] adjacent non-punctuation tokens, probing
/// `men2ent` first and the concept table second; single tokens that
/// resolve to nothing pass the NER gate or vanish.
pub fn resolve_spans<T: TaxonomyRead>(f: &T, index: &TagIndex, text: &str) -> Vec<TagSpan> {
    let tokens = tokenize(index, text);
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(cur) = tokens.get(i) else { break };
        if cur.punct {
            i += 1;
            continue;
        }
        let max_w = MAX_SPAN_TOKENS.min(tokens.len() - i);
        let mut advanced = 0usize;
        for w in (1..=max_w).rev() {
            let Some(window) = tokens.get(i..i + w) else {
                continue;
            };
            // A window never crosses punctuation: mentions do not.
            if window.iter().any(|t| t.punct) {
                continue;
            }
            let joined: String = window.iter().map(|t| t.text.as_str()).collect();
            let kind = {
                let senses = f.men2ent(&joined);
                if !senses.is_empty() {
                    Some(SpanKind::Entities(senses))
                } else {
                    f.find_concept(&joined).map(SpanKind::Concept)
                }
            };
            if let (Some(kind), Some(first), Some(last)) = (kind, window.first(), window.last()) {
                spans.push(TagSpan {
                    start: first.start,
                    end: last.end,
                    text: joined,
                    kind,
                });
                advanced = w;
                break;
            }
        }
        if advanced == 0 {
            // OOV fallback, NER-gated: an unresolved token is kept as an
            // (entity-less) evidence span only when it looks like a named
            // entity; ordinary unknown words are dropped. Book-title
            // brackets are punctuation tokens, so the 《…》 Work pattern
            // is probed with its surrounding brackets restored.
            if let Some(tok) = tokens.get(i) {
                let after_open = i
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|prev| prev.text.ends_with('《'));
                let closing = after_open
                    .then(|| {
                        (i + 1..tokens.len().min(i + 2 * MAX_SPAN_TOKENS))
                            .find(|&j| tokens.get(j).is_some_and(|t| t.text.starts_with('》')))
                    })
                    .flatten();
                let (probe, start, end) = match closing.and_then(|j| tokens.get(i..j)) {
                    Some(inner) if !inner.is_empty() => {
                        let joined: String = inner.iter().map(|t| t.text.as_str()).collect();
                        let last_end = inner.last().map_or(tok.end, |t| t.end);
                        (format!("《{joined}》"), tok.start - 1, last_end + 1)
                    }
                    _ => (tok.text.clone(), tok.start, tok.end),
                };
                if index.ner().classify(&probe).is_some() {
                    let consumed = closing.map_or(1, |j| j - i);
                    spans.push(TagSpan {
                        start,
                        end,
                        text: probe,
                        kind: SpanKind::NamedEntity,
                    });
                    advanced = consumed;
                }
            }
            advanced = advanced.max(1);
        }
        i += advanced;
    }
    spans
}

// ----- scoring --------------------------------------------------------------

fn add(map: &mut BTreeMap<ConceptId, f64>, c: ConceptId, w: f64) {
    *map.entry(c).or_insert(0.0) += w;
}

fn score_of(map: &BTreeMap<ConceptId, f64>, c: ConceptId) -> f64 {
    map.get(&c).copied().unwrap_or(0.0)
}

/// Scores the concept list for a resolved span set. Pure and
/// deterministic: accumulation order is fixed by ids and span order.
pub fn score_spans<T: TaxonomyRead>(f: &T, spans: &[TagSpan], options: &TagOptions) -> Vec<TagHit> {
    // Pass 1: direct evidence mass.
    let mut direct: BTreeMap<ConceptId, f64> = BTreeMap::new();
    let mut evidence: BTreeMap<ConceptId, Vec<u32>> = BTreeMap::new();
    for (si, span) in spans.iter().enumerate() {
        let si = si as u32;
        match &span.kind {
            SpanKind::Entities(senses) => {
                // A mention's mass splits evenly across its senses — an
                // ambiguous name is weaker evidence for each reading.
                let sense_w = 1.0 / senses.len().max(1) as f64;
                for &e in senses {
                    for (c, m) in f.concepts_of(e) {
                        add(&mut direct, c, sense_w * f64::from(m.confidence));
                        evidence.entry(c).or_default().push(si);
                    }
                }
            }
            SpanKind::Concept(c) => {
                add(&mut direct, *c, 1.0);
                evidence.entry(*c).or_default().push(si);
            }
            SpanKind::NamedEntity => {}
        }
    }

    // Pass 2: coarse upward propagation with depth-discounted weights.
    let mut mass = direct.clone();
    let mut ev = evidence.clone();
    for (&c, &w) in &direct {
        let dc = f.depth(c);
        let from: Vec<u32> = evidence.get(&c).cloned().unwrap_or_default();
        for a in f.ancestors(c) {
            let dd = dc.saturating_sub(f.depth(a)).max(1);
            add(&mut mass, a, w * DECAY.powi(dd as i32));
            ev.entry(a).or_default().extend(from.iter().copied());
        }
    }

    // Pass 3: fine refinement, level by level from the roots down. The
    // top-`beam` concepts of each depth level hand REFINE of their
    // (possibly already refined) mass to each directly-evidenced child,
    // so specificity wins where the evidence supports it.
    let mut score = mass.clone();
    let mut levels: BTreeMap<usize, Vec<ConceptId>> = BTreeMap::new();
    for &c in mass.keys() {
        levels.entry(f.depth(c)).or_default().push(c);
    }
    for ids in levels.values() {
        let mut ranked = ids.clone();
        ranked.sort_by(|&a, &b| {
            score_of(&score, b)
                .total_cmp(&score_of(&score, a))
                .then(a.cmp(&b))
        });
        for &p in ranked.iter().take(options.beam.max(1)) {
            let ps = score_of(&score, p);
            if ps <= 0.0 {
                continue;
            }
            let boosted: Vec<ConceptId> = direct
                .keys()
                .copied()
                .filter(|&c| c != p && f.parents_of(c).any(|(q, _)| q == p))
                .collect();
            for c in boosted {
                add(&mut score, c, REFINE * ps);
            }
        }
    }

    // Rank, floor, truncate.
    let mut hits: Vec<TagHit> = score
        .iter()
        .map(|(&c, &s)| {
            let mut spans_of: Vec<u32> = ev.get(&c).cloned().unwrap_or_default();
            spans_of.sort_unstable();
            spans_of.dedup();
            TagHit {
                id: c,
                name: f.concept_name(c).to_string(),
                depth: f.depth(c) as u32,
                score: s as f32,
                evidence: spans_of,
            }
        })
        .filter(|h| h.score >= options.min_score)
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    hits.truncate(options.top_k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_taxonomy::{FrozenTaxonomy, IsAMeta, Source, TaxonomyStore};

    fn fixture() -> FrozenTaxonomy {
        let mut s = TaxonomyStore::new();
        let thing = s.add_concept("事物");
        let person = s.add_concept("人物");
        let singer = s.add_concept("歌手");
        s.add_concept_is_a(person, thing, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
        let liu = s.add_entity("刘德华", None);
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
        FrozenTaxonomy::freeze(&s)
    }

    #[test]
    fn mass_decays_up_the_closure_and_refinement_keeps_the_leaf_on_top() {
        let f = fixture();
        let index = TagIndex::build(&f);
        let out = tag_with(&f, &index, "刘德华", &TagOptions::default());
        let names: Vec<&str> = out.concepts.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["歌手", "人物", "事物"]);
        let scores: Vec<f32> = out.concepts.iter().map(|h| h.score).collect();
        assert!(scores.windows(2).all(|w| w[0] > w[1]), "{scores:?}");
    }

    #[test]
    fn min_score_and_top_k_shape_the_result() {
        let f = fixture();
        let index = TagIndex::build(&f);
        let top1 = tag_with(&f, &index, "刘德华", &TagOptions::default().with_top_k(1));
        assert_eq!(top1.concepts.len(), 1);
        let floored = tag_with(
            &f,
            &index,
            "刘德华",
            &TagOptions::default().with_min_score(0.5),
        );
        assert!(floored.concepts.iter().all(|h| h.score >= 0.5));
        assert!(floored.concepts.len() < 3);
    }

    #[test]
    fn oov_named_entities_pass_the_gate_without_scoring() {
        let f = fixture();
        let index = TagIndex::build(&f);
        // 《…》 book-title brackets are the Work NE pattern; the title is
        // not in the taxonomy.
        let out = tag_with(&f, &index, "《未知作品名》", &TagOptions::default());
        assert!(out
            .spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::NamedEntity)));
        assert!(out.concepts.is_empty());
    }

    #[test]
    fn ambiguous_mentions_split_mass_across_senses() {
        let mut s = TaxonomyStore::new();
        let singer = s.add_concept("歌手");
        let host = s.add_concept("主持人");
        let a = s.add_entity("阿伦", Some("歌手"));
        let b = s.add_entity("阿伦", Some("主持人"));
        s.add_entity_is_a(a, singer, IsAMeta::new(Source::Tag, 0.8));
        s.add_entity_is_a(b, host, IsAMeta::new(Source::Tag, 0.8));
        let f = FrozenTaxonomy::freeze(&s);
        let index = TagIndex::build(&f);
        let out = tag_with(&f, &index, "阿伦", &TagOptions::default());
        assert_eq!(out.concepts.len(), 2);
        let scores: Vec<f32> = out.concepts.iter().map(|h| h.score).collect();
        assert!((scores[0] - 0.4).abs() < 1e-6, "{scores:?}");
        assert_eq!(scores[0], scores[1]);
    }

    #[test]
    fn longest_match_wins_over_fragment_mentions() {
        let mut s = TaxonomyStore::new();
        let place = s.add_concept("地点");
        let uni = s.add_concept("大学");
        let wuhan = s.add_entity("武汉", None);
        let wuda = s.add_entity("武汉大学", None);
        s.add_entity_is_a(wuhan, place, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(wuda, uni, IsAMeta::new(Source::Tag, 0.9));
        let f = FrozenTaxonomy::freeze(&s);
        let index = TagIndex::build(&f);
        let out = tag_with(&f, &index, "武汉大学的校园。", &TagOptions::default());
        assert!(
            out.spans.iter().any(|sp| sp.text == "武汉大学"),
            "{:?}",
            out.spans
        );
        assert!(out.spans.iter().all(|sp| sp.text != "武汉"));
        assert_eq!(
            out.concepts.first().map(|h| h.name.as_str()),
            Some("大学"),
            "{:?}",
            out.concepts
        );
    }
}
