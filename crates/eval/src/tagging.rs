//! Tagging evaluation: precision@k over a committed labelled mini-corpus.
//!
//! The tagging workload (`cnp_tag`) returns ranked concepts for a
//! document; this module measures how often the gold label lands in the
//! top *k*. The corpus lives in `fixtures/tagging_corpus.tsv` — one
//! `document <TAB> gold₁|gold₂` case per line, written against the world
//! of [`mini_store`] and compiled in, so the measurement is reproducible
//! from a clean checkout (ISSUE 10 acceptance: precision@1 ≥ 0.8).

use crate::precision::PrecisionEstimate;
use cnp_tag::{TagOptions, Tagger};
use cnp_taxonomy::{IsAMeta, Source, TaxonomyRead, TaxonomyStore};

/// One labelled document: the text and its acceptable gold concepts
/// (any of them counts as a hit — some documents are legitimately about
/// two things).
#[derive(Debug, Clone, PartialEq)]
pub struct TagCase {
    /// The document to tag.
    pub text: String,
    /// Acceptable gold concept names, in fixture order.
    pub gold: Vec<String>,
}

/// The committed mini-corpus, parsed from the fixture. Lines starting
/// with `#` are comments.
pub fn corpus() -> Vec<TagCase> {
    include_str!("../fixtures/tagging_corpus.tsv")
        .lines()
        .filter(|line| !line.trim().is_empty() && !line.starts_with('#'))
        .map(|line| {
            let (text, gold) = line
                .split_once('\t')
                .unwrap_or_else(|| panic!("malformed corpus line: {line:?}"));
            TagCase {
                text: text.to_string(),
                gold: gold.split('|').map(str::to_string).collect(),
            }
        })
        .collect()
}

/// The small known world the corpus is labelled against: entertainers,
/// athletes, places and food, with enough hierarchy for the
/// coarse-to-fine scorer to climb.
pub fn mini_store() -> TaxonomyStore {
    let mut s = TaxonomyStore::new();
    let person = s.add_concept("人物");
    let artist = s.add_concept("艺人");
    let singer = s.add_concept("歌手");
    let actor = s.add_concept("演员");
    let athlete = s.add_concept("运动员");
    let basketball = s.add_concept("篮球运动员");
    let football = s.add_concept("足球运动员");
    let place = s.add_concept("地点");
    let city = s.add_concept("城市");
    let _food = s.add_concept("美食");
    s.add_concept_is_a(artist, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(singer, artist, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(actor, artist, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(athlete, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(basketball, athlete, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(football, athlete, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_concept_is_a(city, place, IsAMeta::new(Source::SubConcept, 0.9));

    let entity = |s: &mut TaxonomyStore, name: &str, edges: &[(&str, f32)]| {
        let e = s.add_entity(name, None);
        for &(concept, confidence) in edges {
            let c = s.find_concept(concept).expect("concept added above");
            s.add_entity_is_a(e, c, IsAMeta::new(Source::Tag, confidence));
        }
    };
    entity(&mut s, "刘德华", &[("演员", 0.96), ("歌手", 0.7)]);
    entity(&mut s, "张学友", &[("歌手", 0.95)]);
    entity(&mut s, "周杰伦", &[("歌手", 0.97)]);
    entity(&mut s, "姚明", &[("篮球运动员", 0.96)]);
    entity(&mut s, "科比", &[("篮球运动员", 0.95)]);
    entity(&mut s, "梅西", &[("足球运动员", 0.97)]);
    entity(&mut s, "北京", &[("城市", 0.98)]);
    entity(&mut s, "上海", &[("城市", 0.98)]);
    entity(&mut s, "火锅", &[("美食", 0.9)]);
    entity(&mut s, "寿司", &[("美食", 0.9)]);
    s
}

/// Precision@k: the fraction of cases whose top-`k` tagged concepts
/// contain one of the gold labels. Reuses [`PrecisionEstimate`] so the
/// point-estimate convention (`1.0` on an empty sample) matches the §IV
/// edge-precision protocol.
pub fn precision_at_k<B: TaxonomyRead>(
    tagger: &Tagger<B>,
    cases: &[TagCase],
    k: usize,
) -> PrecisionEstimate {
    let options = TagOptions::default().with_top_k(k);
    let correct = cases
        .iter()
        .filter(|case| {
            let hits = tagger.classify(&case.text, &options);
            hits.iter().any(|h| case.gold.iter().any(|g| g == &h.name))
        })
        .count();
    PrecisionEstimate {
        correct,
        sampled: cases.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_taxonomy::FrozenTaxonomy;
    use std::sync::Arc;

    fn tagger() -> Tagger<FrozenTaxonomy> {
        Tagger::new(Arc::new(FrozenTaxonomy::freeze(&mini_store())))
    }

    #[test]
    fn corpus_parses_and_is_nonempty() {
        let cases = corpus();
        assert!(cases.len() >= 10, "mini-corpus shrank to {}", cases.len());
        assert!(cases
            .iter()
            .all(|c| !c.text.is_empty() && !c.gold.is_empty()));
    }

    #[test]
    fn every_gold_label_names_a_taxonomy_concept() {
        let store = mini_store();
        for case in corpus() {
            for gold in &case.gold {
                assert!(
                    store.find_concept(gold).is_some(),
                    "gold label {gold:?} of {:?} is not a concept",
                    case.text
                );
            }
        }
    }

    #[test]
    fn precision_at_1_meets_the_acceptance_floor() {
        let est = precision_at_k(&tagger(), &corpus(), 1);
        assert!(
            est.precision() >= 0.8,
            "precision@1 = {:.3} ({} of {}) below the 0.8 floor",
            est.precision(),
            est.correct,
            est.sampled
        );
    }

    #[test]
    fn precision_is_monotone_in_k_and_perfect_by_3() {
        let t = tagger();
        let cases = corpus();
        let p1 = precision_at_k(&t, &cases, 1).precision();
        let p3 = precision_at_k(&t, &cases, 3).precision();
        assert!(p3 >= p1, "p@3 {p3} < p@1 {p1}");
        assert!(
            (p3 - 1.0).abs() < 1e-12,
            "p@3 = {p3}: the mini-world is small enough that the gold \
             concept must always surface in the top 3"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = precision_at_k(&tagger(), &corpus(), 1);
        let b = precision_at_k(&tagger(), &corpus(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_is_trivially_perfect() {
        let est = precision_at_k(&tagger(), &[], 1);
        assert_eq!(est.sampled, 0);
        assert_eq!(est.precision(), 1.0);
    }
}
