#![forbid(unsafe_code)]
//! # cnp-eval — evaluation harness for CN-Probase
//!
//! Everything §IV of the paper measures:
//!
//! * [`precision`] — sampled precision (the paper's 2 000-pair protocol)
//!   with an exact gold judge, plus per-source precision.
//! * [`coverage`](mod@coverage) — the QA coverage experiment (NLPCC-2016-style question
//!   set; covered = question mentions a taxonomy entity or concept).
//! * [`baselines`] — Chinese WikiTaxonomy, Bigcilin and Probase-Tran.
//! * [`comparison`] — the Table I four-system comparison.
//! * [`tagging`] — precision@k of the document-tagging workload over a
//!   committed labelled mini-corpus.

pub mod baselines;
pub mod comparison;
pub mod coverage;
pub mod precision;
pub mod tagging;

pub use comparison::{Comparison, TableRow};
pub use coverage::{coverage, generate_questions, CoverageResult, Question};
pub use precision::{estimate, per_source, PrecisionEstimate};
pub use tagging::{corpus as tagging_corpus, precision_at_k, TagCase};
