//! Table I: the four-system comparison.
//!
//! Runs CN-Probase and the three baselines on one corpus and reports the
//! paper's four columns — # entities, # concepts, # isA relations,
//! precision (sampled, 2 000 pairs) — in the same row order.

use crate::baselines::{bigcilin, probase_tran, wikitaxonomy, BaselineResult};
use crate::precision;
use cnp_core::pipeline::{Pipeline, PipelineConfig};
use cnp_encyclopedia::Corpus;
use std::fmt;

/// One Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// System name.
    pub name: String,
    /// Entity count.
    pub entities: usize,
    /// Concept count.
    pub concepts: usize,
    /// isA relation count.
    pub is_a: usize,
    /// Sampled precision.
    pub precision: f64,
}

/// The comparison result (rows in the paper's order).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Rows: WikiTaxonomy, Bigcilin, Probase-Tran, CN-Probase.
    pub rows: Vec<TableRow>,
}

/// Sampled-precision protocol size (paper: 2 000 pairs).
pub const PRECISION_SAMPLE: usize = 2_000;

fn row_of(result: &BaselineResult, corpus: &Corpus, seed: u64) -> TableRow {
    let est = precision::estimate(&result.candidates, &corpus.gold, PRECISION_SAMPLE, seed);
    TableRow {
        name: result.name.to_string(),
        entities: result.taxonomy.num_entities(),
        concepts: result.taxonomy.num_concepts(),
        is_a: result.taxonomy.num_is_a(),
        precision: est.precision(),
    }
}

/// Runs the full Table I comparison. `fast` selects the reduced neural
/// configuration (tests/benches); seeds make the sampling reproducible.
pub fn run(corpus: &Corpus, fast: bool, seed: u64) -> Comparison {
    let wiki = wikitaxonomy::build(corpus, fast);
    let big = bigcilin::build(corpus, fast);
    let tran = probase_tran::build(corpus, &Default::default(), seed);

    let config = if fast {
        PipelineConfig::fast()
    } else {
        PipelineConfig::default()
    };
    let outcome = Pipeline::new(config).run(corpus);
    let cnp = BaselineResult {
        name: "CN-Probase",
        taxonomy: outcome.taxonomy,
        candidates: outcome.candidates,
    };

    Comparison {
        rows: vec![
            row_of(&wiki, corpus, seed),
            row_of(&big, corpus, seed ^ 1),
            row_of(&tran, corpus, seed ^ 2),
            row_of(&cnp, corpus, seed ^ 3),
        ],
    }
}

impl Comparison {
    /// Row lookup by name.
    pub fn row(&self, name: &str) -> Option<&TableRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: Comparisons with other taxonomies")?;
        writeln!(
            f,
            "{:<22} {:>10} {:>10} {:>12} {:>10}",
            "Taxonomy", "# entities", "# concepts", "# isA", "precision"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<22} {:>10} {:>10} {:>12} {:>9.1}%",
                r.name,
                r.entities,
                r.concepts,
                r.is_a,
                r.precision * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    /// The headline shape of Table I must hold at test scale:
    /// CN-Probase is the largest; precision ordering
    /// WikiTaxonomy ≥ CN-Probase > Bigcilin ≫ Probase-Tran.
    #[test]
    fn table1_shape_holds() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(101)).generate();
        let cmp = run(&corpus, true, 7);
        assert_eq!(cmp.rows.len(), 4);
        let wiki = cmp.row("Chinese WikiTaxonomy").unwrap();
        let big = cmp.row("Bigcilin").unwrap();
        let tran = cmp.row("Probase-Tran").unwrap();
        let cnp = cmp.row("CN-Probase").unwrap();

        // Size: CN-Probase dominates entities and relations.
        assert!(cnp.entities > big.entities);
        assert!(big.entities > wiki.entities);
        assert!(cnp.is_a > big.is_a);
        assert!(
            cnp.is_a > 10 * wiki.is_a,
            "CN-P {} vs WikiT {}",
            cnp.is_a,
            wiki.is_a
        );
        // Concepts: in the paper CN-Probase has ~4× Bigcilin's concepts;
        // at compressed test scale the gap narrows (both approach the
        // ontology size), so assert non-collapse rather than dominance.
        assert!(cnp.concepts > wiki.concepts);
        assert!(cnp.concepts * 2 >= big.concepts);

        // Precision ordering.
        assert!(
            cnp.precision > 0.90,
            "CN-Probase precision {:.3}",
            cnp.precision
        );
        assert!(
            cnp.precision > big.precision,
            "cnp {:.3} vs big {:.3}",
            cnp.precision,
            big.precision
        );
        assert!(big.precision > tran.precision + 0.15);
        assert!(tran.precision < 0.70);
        // WikiTaxonomy is at least CN-Probase-level precise.
        assert!(wiki.precision + 0.03 > cnp.precision);
        let _ = format!("{cmp}");
    }

    #[test]
    fn display_renders_four_rows() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(102)).generate();
        let cmp = run(&corpus, true, 9);
        let text = cmp.to_string();
        assert!(text.contains("CN-Probase"));
        assert!(text.contains("Probase-Tran"));
        assert!(text.contains("precision"));
    }
}
