//! Sampled precision estimation.
//!
//! The paper estimates precision by randomly sampling 2 000 isA relations
//! and labelling them manually. Our corpus carries gold labels, so the same
//! estimator runs with an exact judge: sample `n` edges uniformly, judge
//! each, report the fraction correct.

use cnp_core::candidate::CandidateSet;
use cnp_encyclopedia::GoldLabels;
use cnp_taxonomy::Source;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A precision estimate from a uniform edge sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionEstimate {
    /// Correct judgements in the sample.
    pub correct: usize,
    /// Sample size actually drawn.
    pub sampled: usize,
}

impl PrecisionEstimate {
    /// Point estimate (1.0 for empty samples, matching “no observed error”).
    pub fn precision(&self) -> f64 {
        if self.sampled == 0 {
            1.0
        } else {
            self.correct as f64 / self.sampled as f64
        }
    }
}

/// Judges one candidate against gold: entity-level isA, falling back to the
/// concept-level judgement for concept pages.
pub fn is_correct(gold: &GoldLabels, entity_key: &str, entity_name: &str, hypernym: &str) -> bool {
    gold.is_correct_entity_isa(entity_key, hypernym)
        || gold.is_correct_concept_isa(entity_name, hypernym)
}

/// Samples up to `n` candidates (seeded) and judges them against gold —
/// the paper's §IV “randomly select 2000 isA relations” protocol.
pub fn estimate(set: &CandidateSet, gold: &GoldLabels, n: usize, seed: u64) -> PrecisionEstimate {
    let mut idx: Vec<usize> = (0..set.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(n);
    let correct = idx
        .iter()
        .filter(|&&i| {
            let c = &set.items[i];
            is_correct(gold, &c.entity_key, &c.entity_name, &c.hypernym)
        })
        .count();
    PrecisionEstimate {
        correct,
        sampled: idx.len(),
    }
}

/// Per-source precision over the full candidate set (the paper's §IV-B
/// per-source evaluation: bracket 96.2%, tag 97.4%).
///
/// An edge counts towards every source that proposed it (the paper judges
/// “isA relations derived from the tag”, which includes relations other
/// sources also found).
pub fn per_source(set: &CandidateSet, gold: &GoldLabels) -> Vec<(Source, PrecisionEstimate)> {
    let sources = [
        Source::Bracket,
        Source::Abstract,
        Source::Infobox,
        Source::Tag,
    ];
    sources
        .iter()
        .map(|&s| {
            let mut correct = 0;
            let mut total = 0;
            for c in set.items.iter().filter(|c| c.proposed_by(s)) {
                total += 1;
                if is_correct(gold, &c.entity_key, &c.entity_name, &c.hypernym) {
                    correct += 1;
                }
            }
            (
                s,
                PrecisionEstimate {
                    correct,
                    sampled: total,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_core::candidate::Candidate;

    fn set_and_gold() -> (CandidateSet, GoldLabels) {
        let mut gold = GoldLabels::new();
        gold.add_entity_hypernym("甲", "演员");
        gold.add_entity_hypernym("乙", "歌手");
        let set = CandidateSet::merge(vec![
            Candidate::new(0, "甲", "甲", "", "演员", Source::Tag, 0.9),
            Candidate::new(1, "乙", "乙", "", "歌手", Source::Bracket, 0.9),
            Candidate::new(1, "乙", "乙", "", "音乐", Source::Tag, 0.9),
            Candidate::new(0, "甲", "甲", "", "美国", Source::Infobox, 0.9),
        ]);
        (set, gold)
    }

    #[test]
    fn full_sample_counts_exactly() {
        let (set, gold) = set_and_gold();
        let est = estimate(&set, &gold, 100, 1);
        assert_eq!(est.sampled, 4);
        assert_eq!(est.correct, 2);
        assert!((est.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_capped_and_seeded() {
        let (set, gold) = set_and_gold();
        let a = estimate(&set, &gold, 2, 7);
        let b = estimate(&set, &gold, 2, 7);
        assert_eq!(a, b);
        assert_eq!(a.sampled, 2);
    }

    #[test]
    fn per_source_separates_precision() {
        let (set, gold) = set_and_gold();
        let by_source = per_source(&set, &gold);
        let get = |s: Source| {
            by_source
                .iter()
                .find(|(src, _)| *src == s)
                .map(|(_, e)| *e)
                .unwrap()
        };
        assert_eq!(get(Source::Bracket).precision(), 1.0);
        assert_eq!(get(Source::Infobox).precision(), 0.0);
        assert_eq!(get(Source::Tag).sampled, 2);
    }

    #[test]
    fn concept_level_judgement_falls_back() {
        let mut gold = GoldLabels::new();
        gold.add_concept_pair("男演员", "演员");
        assert!(is_correct(&gold, "男演员", "男演员", "演员"));
        assert!(!is_correct(&gold, "男演员", "男演员", "歌手"));
    }

    #[test]
    fn empty_set_has_trivial_precision() {
        let gold = GoldLabels::new();
        let est = estimate(&CandidateSet::default(), &gold, 10, 1);
        assert_eq!(est.sampled, 0);
        assert_eq!(est.precision(), 1.0);
    }
}
