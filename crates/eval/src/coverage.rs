//! QA coverage (paper §IV-B).
//!
//! “A question is said to be covered by a taxonomy if the question contains
//! at least one concept or entity within the taxonomy.” The paper uses the
//! NLPCC 2016 QA set (23 472 questions, 91.68% covered, 2.14 concepts per
//! covered entity); we generate an equivalent question set over the same
//! world model — entity questions, concept questions and out-of-scope
//! distractors — and score coverage by scanning each question's character
//! n-grams against the taxonomy.

use cnp_encyclopedia::Corpus;
use cnp_serve::ProbaseApi;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated question.
#[derive(Debug, Clone)]
pub struct Question {
    /// The question text.
    pub text: String,
    /// Whether the generator embedded an in-corpus mention (diagnostics).
    pub has_mention: bool,
}

/// Generates `n` questions: ~72% entity-centric, ~20% concept-centric,
/// ~8% distractors with no in-corpus mention (calibrated to the paper's
/// 91.68% coverage).
pub fn generate_questions(corpus: &Corpus, n: usize, seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let entity_pages: Vec<&cnp_encyclopedia::Page> = corpus
        .pages
        .iter()
        .filter(|p| !corpus.gold.is_concept(&p.name))
        .collect();
    let concepts: Vec<&str> = corpus
        .pages
        .iter()
        .filter(|p| corpus.gold.is_concept(&p.name))
        .map(|p| p.name.as_str())
        .collect();
    let distractors = [
        "今天天气怎么样？",
        "明天会下雨吗？",
        "现在几点了？",
        "怎么做才能早睡早起？",
        "一加一等于几？",
        "怎样才能心情变好？",
    ];
    for _ in 0..n {
        let roll: f64 = rng.gen();
        if roll < 0.72 && !entity_pages.is_empty() {
            let p = entity_pages[rng.gen_range(0..entity_pages.len())];
            let text = match rng.gen_range(0..4) {
                0 => format!("请问{}的代表作品是什么？", p.name),
                1 => format!("{}是谁？", p.name),
                2 => format!("请介绍一下{}。", p.name),
                _ => format!("{}出生于哪里？", p.name),
            };
            out.push(Question {
                text,
                has_mention: true,
            });
        } else if roll < 0.92 && !concepts.is_empty() {
            let c = concepts[rng.gen_range(0..concepts.len())];
            let text = match rng.gen_range(0..3) {
                0 => format!("有哪些著名的{c}？"),
                1 => format!("{c}一般是做什么的？"),
                _ => format!("中国最有名的{c}是谁？"),
            };
            out.push(Question {
                text,
                has_mention: true,
            });
        } else {
            out.push(Question {
                text: distractors[rng.gen_range(0..distractors.len())].to_string(),
                has_mention: false,
            });
        }
    }
    out
}

/// Coverage result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageResult {
    /// Total questions scored.
    pub questions: usize,
    /// Questions containing ≥ 1 taxonomy entity or concept.
    pub covered: usize,
    /// Mean number of direct concepts per matched entity.
    pub avg_concepts_per_entity: f64,
}

impl CoverageResult {
    /// Coverage ratio.
    pub fn coverage(&self) -> f64 {
        if self.questions == 0 {
            0.0
        } else {
            self.covered as f64 / self.questions as f64
        }
    }
}

/// Scores coverage of `questions` against a taxonomy service.
///
/// Mention detection scans character n-grams (longest-first, 2–10 chars)
/// at every position; a hit is either a taxonomy concept name or a
/// resolvable `men2ent` mention.
pub fn coverage(api: &ProbaseApi, questions: &[Question]) -> CoverageResult {
    let mut covered = 0usize;
    let mut entity_hits = 0usize;
    let mut concept_sum = 0usize;
    for q in questions {
        let chars: Vec<char> = q.text.chars().collect();
        let mut hit = false;
        let mut i = 0usize;
        while i < chars.len() {
            let mut matched_len = 0usize;
            for len in (2..=10usize.min(chars.len() - i)).rev() {
                let cand: String = chars[i..i + len].iter().collect();
                if api.frozen().find_concept(&cand).is_some() {
                    hit = true;
                    matched_len = len;
                    break;
                }
                let senses = api.men2ent(&cand);
                if !senses.is_empty() {
                    hit = true;
                    matched_len = len;
                    entity_hits += 1;
                    concept_sum += api.get_concept(senses[0].id, false).len();
                    break;
                }
            }
            i += matched_len.max(1);
        }
        if hit {
            covered += 1;
        }
    }
    CoverageResult {
        questions: questions.len(),
        covered,
        avg_concepts_per_entity: if entity_hits == 0 {
            0.0
        } else {
            concept_sum as f64 / entity_hits as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_core::{Pipeline, PipelineConfig};
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    #[test]
    fn question_mix_matches_configuration() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(81)).generate();
        let qs = generate_questions(&corpus, 1000, 9);
        assert_eq!(qs.len(), 1000);
        let with_mention = qs.iter().filter(|q| q.has_mention).count() as f64 / 1000.0;
        assert!(
            (0.88..0.96).contains(&with_mention),
            "mention rate {with_mention}"
        );
    }

    #[test]
    fn coverage_tracks_mentions() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(82)).generate();
        let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
        let api = ProbaseApi::new(outcome.taxonomy);
        let qs = generate_questions(&corpus, 400, 10);
        let result = coverage(&api, &qs);
        assert_eq!(result.questions, 400);
        // Coverage should approach the embedded-mention rate (~92%).
        assert!(
            result.coverage() > 0.80,
            "coverage {:.3} too low",
            result.coverage()
        );
        assert!(result.coverage() <= 1.0);
        assert!(result.avg_concepts_per_entity > 1.0);
    }

    #[test]
    fn distractors_do_not_count() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(83)).generate();
        let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
        let api = ProbaseApi::new(outcome.taxonomy);
        let qs = vec![Question {
            text: "今天天气怎么样？".into(),
            has_mention: false,
        }];
        let result = coverage(&api, &qs);
        assert_eq!(result.covered, 0);
    }

    #[test]
    fn deterministic_generation() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(84)).generate();
        let a = generate_questions(&corpus, 50, 3);
        let b = generate_questions(&corpus, 50, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
    }
}
