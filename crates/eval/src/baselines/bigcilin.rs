//! Bigcilin (Fu et al., EMNLP 2013): open-domain hypernym discovery from
//! *multiple sources* — but without CN-Probase's verification module.
//!
//! Reproduced as: the full generation module (all four sources) over a
//! Hudong-Baike-scale subset, with verification disabled. Paper numbers:
//! 9 M entities, 70 k concepts, 10 M isA, 90.0% precision — the paper's
//! argument is precisely that multi-source extraction *without*
//! verification lands around 90%.

use super::BaselineResult;
use cnp_core::pipeline::{Pipeline, PipelineConfig};
use cnp_core::verification::VerificationConfig;
use cnp_encyclopedia::Corpus;

/// Fraction of the encyclopedia a Hudong-scale source covers.
pub const BIGCILIN_FRACTION: f64 = 0.60;

/// Hypernym-consolidation support threshold: Bigcilin clusters hypernyms
/// into a compact Cilin-style vocabulary, so rare hypernym strings do not
/// survive as concepts (paper Table I: Bigcilin has only 70 k concepts
/// against CN-Probase's 270 k despite 9 M entities).
pub const MIN_HYPERNYM_SUPPORT: usize = 3;

/// Builds the Bigcilin baseline.
pub fn build(corpus: &Corpus, fast: bool) -> BaselineResult {
    let sub = corpus.subset(BIGCILIN_FRACTION, 0xB16);
    let mut config = if fast {
        PipelineConfig::fast()
    } else {
        PipelineConfig::default()
    };
    config.verification = VerificationConfig::none();
    let outcome = Pipeline::new(config).run(&sub);

    // Hypernym consolidation: drop hypernyms below the support threshold,
    // then rebuild the taxonomy from the surviving pairs.
    let mut support: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for c in &outcome.candidates.items {
        *support.entry(c.hypernym.as_str()).or_insert(0) += 1;
    }
    let keep: std::collections::HashSet<String> = support
        .into_iter()
        .filter(|(_, n)| *n >= MIN_HYPERNYM_SUPPORT)
        .map(|(h, _)| h.to_string())
        .collect();
    let candidates = cnp_core::candidate::CandidateSet {
        items: outcome
            .candidates
            .items
            .into_iter()
            .filter(|c| keep.contains(&c.hypernym))
            .collect(),
    };
    let mut store = cnp_taxonomy::TaxonomyStore::new();
    for c in &candidates.items {
        let bracket = if c.bracket.is_empty() {
            None
        } else {
            Some(c.bracket.as_str())
        };
        let e = store.add_entity(&c.entity_name, bracket);
        let concept = store.add_concept(&c.hypernym);
        store.add_entity_is_a(
            e,
            concept,
            cnp_taxonomy::IsAMeta::new(c.source, c.confidence),
        );
    }
    BaselineResult {
        name: "Bigcilin",
        taxonomy: store,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    #[test]
    fn multi_source_without_verification() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(92)).generate();
        let result = build(&corpus, true);
        let sources: std::collections::HashSet<_> =
            result.candidates.items.iter().map(|c| c.source).collect();
        assert!(sources.len() >= 3, "expected multiple sources: {sources:?}");
        // Without verification, thematic noise tags survive.
        let has_thematic = result
            .candidates
            .items
            .iter()
            .any(|c| cnp_text::lexicons::is_thematic(&c.hypernym));
        assert!(has_thematic, "noise should survive without verification");
    }
}
