//! Chinese WikiTaxonomy (Li et al., APWeb 2015).
//!
//! Built from a *single source* — user-generated category tags — of the
//! (much smaller) Chinese Wikipedia, with strict syntactic/lexicon
//! filtering. Reproduced as: tag-only extraction over a small corpus
//! subset, with the full verification stack (their filters target the same
//! noise classes). Paper numbers: 581 k entities, 79 k concepts, 1.3 M isA,
//! 97.6% precision — high precision, ~1/25 of CN-Probase's relations.

use super::BaselineResult;
use cnp_core::pipeline::{Pipeline, PipelineConfig};
use cnp_core::verification::VerificationConfig;
use cnp_encyclopedia::Corpus;

/// Fraction of the encyclopedia a Chinese-Wikipedia-scale source covers.
pub const WIKI_FRACTION: f64 = 0.06;

/// Builds the WikiTaxonomy baseline.
pub fn build(corpus: &Corpus, fast: bool) -> BaselineResult {
    let sub = corpus.subset(WIKI_FRACTION, 0xE11);
    let mut config = if fast {
        PipelineConfig::fast()
    } else {
        PipelineConfig::default()
    };
    config.enable_bracket = false;
    config.enable_abstract = false;
    config.enable_infobox = false;
    config.enable_tag = true;
    config.verification = VerificationConfig::all();
    let outcome = Pipeline::new(config).run(&sub);
    BaselineResult {
        name: "Chinese WikiTaxonomy",
        taxonomy: outcome.taxonomy,
        candidates: outcome.candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    #[test]
    fn single_source_and_small() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(91)).generate();
        let result = build(&corpus, true);
        // Tag-only: every candidate is a tag candidate.
        assert!(result
            .candidates
            .items
            .iter()
            .all(|c| c.source == cnp_taxonomy::Source::Tag));
        // Much smaller than the corpus itself.
        assert!(result.taxonomy.num_entities() < corpus.pages.len() / 4);
        assert!(result.taxonomy.num_is_a() > 0);
    }
}
