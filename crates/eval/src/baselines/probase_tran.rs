//! Probase-Tran: the English Probase machine-translated to Chinese, then
//! cleaned with three heuristic filters (meaning, transitivity, POS) — the
//! baseline the paper proposes and shows to fail (54.5% precision).
//!
//! The English Probase itself is proprietary; we simulate it as the gold
//! isA pairs over a small entity subset (Probase is accurate *in English* —
//! its problem here is translation). The noisy dictionary translator then
//! reproduces the three error classes the paper's filters target:
//!
//! * **garbled** — transliteration failure producing a non-word (caught by
//!   the meaning filter: not valid Han text / not in the lexicon);
//! * **wrong sense** — an ambiguous English word translated to the wrong
//!   Chinese concept (undetectable by the filters: the main residual error);
//! * **translationese** — compositional renderings (著名演员 for “famous
//!   actor”) that are grammatical but absent from Chinese usage, inflating
//!   the concept inventory (Probase-Tran has *more* concepts than Chinese
//!   WikiTaxonomy in Table I for exactly this reason).

use super::BaselineResult;
use cnp_core::candidate::{Candidate, CandidateSet};
use cnp_encyclopedia::{Corpus, Ontology};
use cnp_taxonomy::{IsAMeta, Source, TaxonomyStore};
use cnp_text::pos::PosTagger;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fraction of entities the translated Probase covers.
pub const PROBASE_FRACTION: f64 = 0.12;

/// Translation outcome probabilities (calibrated to land near the paper's
/// 54.5% final precision after filtering).
#[derive(Debug, Clone)]
pub struct TranslationNoise {
    /// Concept translated to the correct Chinese word.
    pub concept_correct: f64,
    /// Concept translated to a wrong sense (another real concept).
    pub concept_wrong_sense: f64,
    /// Concept rendered as translationese (novel composite string).
    pub concept_translationese: f64,
    // Remainder: garbled (caught by the meaning filter).
    /// Entity name transliterated correctly.
    pub entity_correct: f64,
}

impl Default for TranslationNoise {
    fn default() -> Self {
        TranslationNoise {
            concept_correct: 0.52,
            concept_wrong_sense: 0.18,
            concept_translationese: 0.16,
            entity_correct: 0.90,
        }
    }
}

/// Builds the Probase-Tran baseline.
pub fn build(corpus: &Corpus, noise: &TranslationNoise, seed: u64) -> BaselineResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let ontology = Ontology::global();
    let all_concepts: Vec<&str> = ontology.all_leaves().iter().map(|c| c.name).collect();
    let translationese_mods = ["著名", "知名", "了不起的", "伟大", "受欢迎的"];

    // 1) "English Probase": gold pairs over an entity subset.
    let mut raw: Vec<(String, String, String)> = Vec::new(); // (key, name, hypernym)
    for page in &corpus.pages {
        if corpus.gold.is_concept(&page.name) {
            continue;
        }
        if !rng.gen_bool(PROBASE_FRACTION) {
            continue;
        }
        let key = page.key();
        let Some(hypernyms) = corpus.gold.hypernyms_of(&key) else {
            continue;
        };
        // Probase is fine-grained: every gold concept level is present.
        for h in hypernyms {
            raw.push((key.clone(), page.name.clone(), h.clone()));
        }
    }

    // 2) Noisy translation back to Chinese.
    let mut translated: Vec<Candidate> = Vec::new();
    for (idx, (key, name, hypernym)) in raw.into_iter().enumerate() {
        let (key, name) = if rng.gen_bool(noise.entity_correct) {
            (key, name)
        } else {
            // Transliteration failure mutates the name (wrong entity).
            (format!("{name}尔"), format!("{name}尔"))
        };
        let roll: f64 = rng.gen();
        let hypernym = if roll < noise.concept_correct {
            hypernym
        } else if roll < noise.concept_correct + noise.concept_wrong_sense {
            all_concepts[rng.gen_range(0..all_concepts.len())].to_string()
        } else if roll
            < noise.concept_correct + noise.concept_wrong_sense + noise.concept_translationese
        {
            let m = translationese_mods[rng.gen_range(0..translationese_mods.len())];
            format!("{m}{hypernym}")
        } else {
            // Garbled transliteration: mixed-script junk.
            format!("{hypernym}T{}", idx % 97)
        };
        translated.push(Candidate::new(
            0,
            key,
            name,
            "",
            hypernym,
            Source::Import,
            0.5,
        ));
    }

    // 3) The paper's three filters.
    let tagger = PosTagger::new(cnp_text::dict::Dictionary::base());
    let before_meaning = translated.len();
    // Meaning: the hypernym must be well-formed Chinese.
    translated.retain(|c| c.hypernym.chars().all(cnp_text::chars::is_han));
    let _meaning_removed = before_meaning - translated.len();
    // POS: the hypernym must be nominal.
    translated.retain(|c| tagger.tag(&c.hypernym).is_nominal());
    // Transitivity: drop mutually-asserted pairs isA(A,B) ∧ isA(B,A).
    let pair_set: std::collections::HashSet<(String, String)> = translated
        .iter()
        .map(|c| (c.entity_name.clone(), c.hypernym.clone()))
        .collect();
    translated.retain(|c| !pair_set.contains(&(c.hypernym.clone(), c.entity_name.clone())));

    let candidates = CandidateSet::merge(translated);

    // 4) Assemble the taxonomy.
    let mut store = TaxonomyStore::new();
    for c in &candidates.items {
        let e = store.add_entity(&c.entity_name, bracket_of(&c.entity_key, &c.entity_name));
        let concept = store.add_concept(&c.hypernym);
        store.add_entity_is_a(e, concept, IsAMeta::new(Source::Import, c.confidence));
    }
    BaselineResult {
        name: "Probase-Tran",
        taxonomy: store,
        candidates,
    }
}

fn bracket_of<'a>(key: &'a str, name: &str) -> Option<&'a str> {
    key.strip_prefix(name)
        .and_then(|rest| rest.strip_prefix('（'))
        .and_then(|rest| rest.strip_suffix('）'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    #[test]
    fn precision_lands_near_the_papers_54_percent() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(93)).generate();
        let result = build(&corpus, &TranslationNoise::default(), 7);
        let correct = result
            .candidates
            .items
            .iter()
            .filter(|c| {
                corpus
                    .gold
                    .is_correct_entity_isa(&c.entity_key, &c.hypernym)
            })
            .count();
        let precision = correct as f64 / result.candidates.len().max(1) as f64;
        assert!(
            (0.40..0.70).contains(&precision),
            "Probase-Tran precision {precision:.3} outside plausible band"
        );
    }

    #[test]
    fn meaning_filter_removes_garbled_tokens() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(94)).generate();
        let result = build(&corpus, &TranslationNoise::default(), 8);
        assert!(result
            .candidates
            .items
            .iter()
            .all(|c| c.hypernym.chars().all(cnp_text::chars::is_han)));
    }

    #[test]
    fn translationese_inflates_concept_count() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(95)).generate();
        let with_noise = build(&corpus, &TranslationNoise::default(), 9);
        let clean = build(
            &corpus,
            &TranslationNoise {
                concept_correct: 1.0,
                concept_wrong_sense: 0.0,
                concept_translationese: 0.0,
                entity_correct: 1.0,
            },
            9,
        );
        assert!(
            with_noise.taxonomy.num_concepts() > clean.taxonomy.num_concepts(),
            "translationese should add concepts"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(96)).generate();
        let a = build(&corpus, &TranslationNoise::default(), 11);
        let b = build(&corpus, &TranslationNoise::default(), 11);
        assert_eq!(a.candidates.len(), b.candidates.len());
        assert_eq!(a.taxonomy.num_is_a(), b.taxonomy.num_is_a());
    }
}
