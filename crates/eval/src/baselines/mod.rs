//! The three comparison systems of Table I, re-implemented at the level the
//! paper compares them: which sources they use, whether they verify, and
//! what their characteristic error sources are.
//!
//! | System              | Sources          | Verification | Characteristic |
//! |---------------------|------------------|--------------|----------------|
//! | Chinese WikiTaxonomy| tag only         | yes (strict) | high precision, low coverage (small encyclopedia) |
//! | Bigcilin            | multiple         | no           | high coverage, ~90% precision |
//! | Probase-Tran        | translated Probase | 3 filters  | translation noise, ~55% precision |

pub mod bigcilin;
pub mod probase_tran;
pub mod wikitaxonomy;

use cnp_core::candidate::CandidateSet;
use cnp_taxonomy::TaxonomyStore;

/// A constructed baseline taxonomy plus the raw pairs for precision
/// sampling.
#[derive(Debug)]
pub struct BaselineResult {
    /// Display name (Table I row label).
    pub name: &'static str,
    /// The constructed taxonomy.
    pub taxonomy: TaxonomyStore,
    /// The isA pairs the taxonomy was built from.
    pub candidates: CandidateSet,
}
