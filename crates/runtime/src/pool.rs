//! Persistent-pool primitives for long-running services.
//!
//! The scoped `par_*` entry points on [`crate::Runtime`] spawn workers per
//! call and join them before returning — perfect for a pipeline stage,
//! useless for a network server that must keep worker threads alive across
//! an unbounded stream of connections *and* refuse work when it is already
//! saturated. This module fills that gap with two pieces:
//!
//! * [`BoundedQueue`] — a blocking MPMC queue with a hard capacity and a
//!   **typed** rejection path: [`BoundedQueue::try_push`] never blocks and
//!   hands the item back as [`PushError::Full`] when the queue is at
//!   capacity, which is exactly the admission-control contract a server
//!   needs to turn saturation into an explicit `429 Overloaded` instead of
//!   an ever-growing backlog.
//! * [`WorkerPool`] — a fixed set of named worker threads draining a
//!   `BoundedQueue` of jobs. [`WorkerPool::shutdown`] closes the queue,
//!   lets the workers finish every job already admitted (drain, don't
//!   drop) and joins them.
//!
//! Both follow the crate's house rules: standard-library primitives only
//! (`Mutex` + `Condvar`; the vendored crossbeam provides scoped threads,
//! not channels) and no unbounded buffering anywhere.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why [`BoundedQueue::try_push`] refused an item. The item always comes
/// back to the caller — refusal never loses work.
#[derive(PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue holds `capacity` items; admitting more would mean
    /// unbounded queueing. The caller decides how to shed the load.
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(t) | PushError::Closed(t) => t,
        }
    }
}

// Manual impl: jobs (`Box<dyn FnOnce()>`) are not `Debug`, but the refusal
// reason always is.
impl<T> std::fmt::Debug for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full(_) => write!(f, "PushError::Full(..)"),
            PushError::Closed(_) => write!(f, "PushError::Closed(..)"),
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity bound.
///
/// Producers use the non-blocking [`BoundedQueue::try_push`]; consumers
/// block on [`BoundedQueue::pop`] until an item arrives or the queue is
/// closed *and* drained. Closing is graceful by construction: items
/// admitted before [`BoundedQueue::close`] are still handed out.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` if there is room, without ever blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes are rejected as
    /// [`PushError::Closed`], consumers drain what was already admitted
    /// and then observe the end of the stream.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads behind a
/// [`BoundedQueue`] of jobs.
///
/// Unlike [`crate::Runtime`]'s scoped per-call workers, the pool's threads
/// live for the pool's lifetime and jobs are `'static` — the shape a
/// server needs for connection handling. Submission is admission-checked:
/// [`WorkerPool::try_execute`] rejects with [`PushError::Full`] instead of
/// queueing unboundedly.
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    shutting_down: Arc<AtomicBool>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queue", &self.queue)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to ≥ 1) named `name-N`, sharing a
    /// job queue of `queue_capacity` slots.
    pub fn new(name: &str, workers: usize, queue_capacity: usize) -> Self {
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_capacity));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let workers = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            queue,
            workers,
            shutting_down,
        }
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs admitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Submits a job without blocking; a saturated queue hands the job
    /// back as [`PushError::Full`] so the caller can shed load explicitly.
    pub fn try_execute<F>(&self, job: F) -> Result<(), PushError<Job>>
    where
        F: FnOnce() + Send + 'static,
    {
        self.queue.try_push(Box::new(job))
    }

    /// Signals shutdown without joining: pending jobs still drain, new
    /// submissions are refused. Lets a handler thread request shutdown
    /// while the owner later calls [`WorkerPool::shutdown`].
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether [`WorkerPool::begin_shutdown`] (or [`WorkerPool::shutdown`])
    /// has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: closes the queue, drains every admitted job and
    /// joins all workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            // A panicking worker already poisons the test that caused it;
            // double-panicking in drop would abort instead.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn try_push_full_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_then_ends_the_stream() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(PushError::Closed(9).into_inner(), 9);
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        #[allow(clippy::disallowed_methods)]
        // raw thread: the queue under test must not depend on the pool it powers
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(50));
        q.try_push(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.is_empty());
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn pool_runs_jobs_and_drains_on_shutdown() {
        let pool = WorkerPool::new("test", 4, 64);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut admitted = 0;
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            if pool
                .try_execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
                .is_ok()
            {
                admitted += 1;
            }
        }
        pool.shutdown();
        // Every admitted job ran before shutdown returned — drain, not drop.
        assert_eq!(counter.load(Ordering::SeqCst), admitted);
        assert!(admitted >= 1);
    }

    #[test]
    fn saturated_pool_rejects_with_typed_full() {
        let pool = WorkerPool::new("test", 1, 1);
        let gate = Arc::new(BoundedQueue::<()>::new(1));
        // Job 1 parks the only worker until the gate opens.
        let g = Arc::clone(&gate);
        pool.try_execute(move || {
            g.pop();
        })
        .unwrap();
        // Wait for the worker to pick job 1 up, freeing the queue slot.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        // Job 2 occupies the single queue slot; job 3 must be refused.
        pool.try_execute(|| {}).unwrap();
        let refused = pool.try_execute(|| {});
        assert!(matches!(refused, Err(PushError::Full(_))));
        gate.close();
        pool.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let pool = WorkerPool::new("test", 2, 4);
        pool.begin_shutdown();
        assert!(pool.is_shutting_down());
        assert!(matches!(pool.try_execute(|| {}), Err(PushError::Closed(_))));
        pool.shutdown();
    }
}
