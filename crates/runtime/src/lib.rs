#![forbid(unsafe_code)]
//! # cnp-runtime — the pipeline's shared parallel execution layer
//!
//! CN-Probase's headline claim is scale: 60 M isA relations extracted from
//! 17 M entity pages by a never-ending pipeline. Every stage of that
//! pipeline — corpus statistics, the four generation sources, candidate
//! merging, the three verification strategies and snapshot freezing — runs
//! through this crate's [`Runtime`] instead of growing its own ad-hoc
//! threading. Each `par_*` call distributes *chunks* of work over scoped
//! worker threads (spawned for that call and joined before it returns —
//! there is no persistent pool; a pooled or async backend can slot behind
//! this same API later) and reduces the per-chunk results **in chunk
//! order**, which gives the one property the whole system is built on:
//!
//! > **Determinism.** Chunk boundaries depend only on the input length
//! > ([`chunk_size`]), never on the thread count, and reductions always
//! > fold chunk results in ascending chunk order. A pipeline run with
//! > `threads = 1`, `2` or `8` therefore produces byte-identical output.
//!
//! Three primitives cover every stage:
//!
//! * [`Runtime::par_chunks_indexed`] — map a slice chunk-by-chunk, results
//!   returned in chunk order (the base index lets workers recover global
//!   positions);
//! * [`Runtime::par_map_reduce`] — the same, followed by an in-order fold;
//! * [`Runtime::par_shard_fold`] — the sharded-accumulator primitive:
//!   items are routed to shards by a caller-supplied key hash, each shard
//!   folds *its* items in original input order, and the per-shard outputs
//!   come back in shard order. [`CandidateSet::merge`]-style grouped
//!   reductions shard on the group key so all collisions land in one fold.
//!
//! Workers pull chunk indices from a shared atomic counter, so uneven
//! chunks load-balance naturally; scheduling order never leaks into
//! results because every result is slotted by its chunk index before the
//! reduction runs. Spawning scoped threads per call costs microseconds
//! and is amortised over chunked work ([`MIN_CHUNK`] keeps tiny inputs
//! inline); it is the price of keeping every primitive borrow-friendly
//! (`&[T]` in, no `'static` bounds).
//!
//! [`CandidateSet::merge`]: https://docs.rs/cnp_core

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod pool;

pub use pool::{BoundedQueue, PushError, WorkerPool};

/// Upper bound on the number of chunks an input is split into.
pub const MAX_PARTITIONS: usize = 64;

/// Lower bound on items per chunk (below this, spawning is pure overhead).
pub const MIN_CHUNK: usize = 32;

/// Worker threads to use when the caller does not specify: the machine's
/// available parallelism, with a fallback of 4 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Chunk size for a `len`-item input.
///
/// Depends **only** on `len` — never on the thread count — so
/// order-sensitive reductions see identical chunk boundaries no matter how
/// many workers execute them. Inputs split into at most [`MAX_PARTITIONS`]
/// chunks of at least [`MIN_CHUNK`] items.
pub fn chunk_size(len: usize) -> usize {
    len.div_ceil(MAX_PARTITIONS).max(MIN_CHUNK)
}

/// FNV-1a over raw bytes: a fixed, platform-independent hash for shard
/// routing. Not `DefaultHasher`, whose per-process random seed would make
/// shard assignment (and any shard-count-dependent output) unstable.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`stable_hash`] over a string's UTF-8 bytes.
pub fn stable_hash_str(s: &str) -> u64 {
    stable_hash(s.as_bytes())
}

/// Items of one shard, yielded in original input order as
/// `(original_index, &item)` pairs. See [`Runtime::par_shard_fold`].
/// Owns its index list so the borrow is tied only to the item slice.
pub struct ShardItems<'a, T> {
    items: &'a [T],
    indices: std::vec::IntoIter<u32>,
}

impl<'a, T> Iterator for ShardItems<'a, T> {
    type Item = (usize, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        let i = self.indices.next()?;
        Some((i as usize, &self.items[i as usize]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

/// A work-distribution handle: a thread count plus the chunked scheduling
/// policy. Cheap to construct; stages borrow it for the duration of a run.
/// Worker threads are scoped to each `par_*` call, not pooled across
/// calls.
///
/// All entry points degrade gracefully: one thread (or one chunk) runs the
/// work inline on the caller's thread with no spawning at all, and the
/// results are identical either way.
#[derive(Debug, Clone)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    /// A runtime over [`default_threads`] workers.
    fn default() -> Self {
        Runtime::new(default_threads())
    }
}

impl Runtime {
    /// Creates a runtime with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Runtime {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runtime: everything runs inline.
    pub fn serial() -> Self {
        Runtime::new(1)
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Core dispatch: evaluates `work(0..n_tasks)` on the pool and returns
    /// the results **indexed by task**, independent of which worker ran
    /// what. Workers pull task indices from a shared counter.
    fn run_indexed<R, F>(&self, n_tasks: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_indexed_capped(self.threads, n_tasks, work)
    }

    /// [`Runtime::run_indexed`] with an additional worker cap — `cap = 1`
    /// forces the inline path regardless of the runtime's thread count.
    fn run_indexed_capped<R, F>(&self, cap: usize, n_tasks: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_tasks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(cap).min(n_tasks);
        if workers <= 1 {
            return (0..n_tasks).map(work).collect();
        }
        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, R)>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let work = &work;
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_tasks {
                                break;
                            }
                            out.push((i, work(i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("runtime worker panicked"))
                .collect()
        })
        .expect("runtime scope");

        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n_tasks).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index was pulled exactly once"))
            .collect()
    }

    /// Maps `items` chunk-by-chunk on the pool. `f` receives the chunk's
    /// base index into `items` plus the chunk slice; the per-chunk results
    /// come back **in chunk order**, so concatenating them reproduces the
    /// serial left-to-right traversal exactly.
    pub fn par_chunks_indexed<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'a [T]) -> R + Sync,
    {
        let cs = chunk_size(items.len());
        let n_chunks = items.len().div_ceil(cs);
        self.run_indexed(n_chunks, |i| {
            let base = i * cs;
            f(base, &items[base..items.len().min(base + cs)])
        })
    }

    /// Chunked map followed by an in-order fold of the per-chunk results
    /// (chunk 0's accumulator absorbs chunk 1's, then chunk 2's, …).
    /// Returns `None` for an empty input.
    pub fn par_map_reduce<'a, T, A, M, F>(&self, items: &'a [T], map: M, reduce: F) -> Option<A>
    where
        T: Sync,
        A: Send,
        M: Fn(usize, &'a [T]) -> A + Sync,
        F: FnMut(A, A) -> A,
    {
        self.par_chunks_indexed(items, map)
            .into_iter()
            .reduce(reduce)
    }

    /// Maps `f` over `0..n` on the pool, returning the results in index
    /// order. For per-element work on index ranges (e.g. one ancestor row
    /// per concept); elements are processed in chunked batches internally.
    pub fn par_index_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let cs = chunk_size(n);
        let n_chunks = n.div_ceil(cs);
        let batches: Vec<Vec<R>> = self.run_indexed(n_chunks, |ci| {
            let base = ci * cs;
            (base..n.min(base + cs)).map(&f).collect()
        });
        batches.into_iter().flatten().collect()
    }

    /// Evaluates `f(0..n)` with task granularity 1 — no chunking, and
    /// (unlike the chunked primitives) no tiny-input inlining: `n ≥ 2`
    /// tasks always dispatch to workers. Returns the results in index
    /// order. For a small number of coarse, possibly uneven tasks (one
    /// per shard, one per worker); prefer [`Runtime::par_index_map`] for
    /// fine-grained per-element work.
    pub fn par_tasks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_indexed(n, f)
    }

    /// Classifies every item in parallel chunks (order-preserving), then
    /// splits the owned input: items whose verdict satisfies `keep`
    /// survive, in original order. Returns `(retained, verdicts)` — the
    /// full verdict list lets callers count removals per class.
    ///
    /// This is the one audited home of the "parallel keep-mask, serial
    /// stateful-iterator filter" idiom the verification strategies share;
    /// the mask is positional, so the retained sequence matches a serial
    /// `retain` exactly.
    pub fn par_classify_retain<T, V, C, K>(
        &self,
        items: Vec<T>,
        classify: C,
        keep: K,
    ) -> (Vec<T>, Vec<V>)
    where
        T: Sync + Send,
        V: Send,
        C: Fn(&T) -> V + Sync,
        K: Fn(&V) -> bool,
    {
        let verdicts: Vec<V> = self
            .par_chunks_indexed(&items, |_, chunk| {
                chunk.iter().map(&classify).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let mut verdict_iter = verdicts.iter();
        let retained = items
            .into_iter()
            .filter(|_| keep(verdict_iter.next().expect("one verdict per item")))
            .collect();
        (retained, verdicts)
    }

    /// The sharded-accumulator primitive. Every item is routed to shard
    /// `shard_of(item) % num_shards` (use [`stable_hash_str`] for string
    /// keys); `fold` then runs once per shard on the pool, seeing that
    /// shard's items **in original input order** as `(index, &item)`
    /// pairs. Per-shard outputs return in shard order.
    ///
    /// All items with equal shard keys meet in the same fold, so grouped
    /// reductions (dedup, per-key aggregation) need no cross-shard merge;
    /// reordering the shard outputs by each group's first original index
    /// reproduces the serial insertion order exactly.
    pub fn par_shard_fold<'a, T, R, S, F>(
        &self,
        items: &'a [T],
        num_shards: usize,
        shard_of: S,
        fold: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        S: Fn(&T) -> u64 + Sync,
        F: Fn(usize, ShardItems<'a, T>) -> R + Sync,
    {
        assert!(num_shards > 0, "num_shards must be positive");
        assert!(
            items.len() <= u32::MAX as usize,
            "par_shard_fold supports at most u32::MAX items"
        );
        // Pass 1 (parallel): shard id per item, concatenated in order.
        let shard_ids: Vec<Vec<u32>> = self.par_chunks_indexed(items, |_, chunk| {
            chunk
                .iter()
                .map(|t| (shard_of(t) % num_shards as u64) as u32)
                .collect()
        });
        // Pass 2 (serial, O(n)): per-shard index lists, ascending. Each
        // list sits behind a mutex only so pass 3 can *move* it out — a
        // shard is folded exactly once, so the lock is uncontended and the
        // indices transfer without copying.
        let mut shards: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        let mut idx = 0u32;
        for batch in shard_ids {
            for s in batch {
                shards[s as usize].push(idx);
                idx += 1;
            }
        }
        let shards: Vec<std::sync::Mutex<Vec<u32>>> =
            shards.into_iter().map(std::sync::Mutex::new).collect();
        // Pass 3 (parallel): fold each shard. Tiny inputs fold all shards
        // inline — spawning workers to visit `num_shards` mostly-empty
        // shards would be pure overhead.
        let cap = if items.len() <= MIN_CHUNK {
            1
        } else {
            self.threads
        };
        self.run_indexed_capped(cap, num_shards, |s| {
            let indices = std::mem::take(&mut *shards[s].lock().expect("shard lock"));
            fold(
                s,
                ShardItems {
                    items,
                    indices: indices.into_iter(),
                },
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_depends_only_on_len() {
        assert_eq!(chunk_size(0), MIN_CHUNK);
        assert_eq!(chunk_size(10), MIN_CHUNK);
        assert_eq!(chunk_size(64 * MIN_CHUNK), MIN_CHUNK);
        // Large inputs split into at most MAX_PARTITIONS chunks.
        let len: usize = 1_000_000;
        assert!(len.div_ceil(chunk_size(len)) <= MAX_PARTITIONS);
    }

    #[test]
    fn par_chunks_match_serial_traversal_at_any_thread_count() {
        let items: Vec<u64> = (0..1_000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            let mapped: Vec<u64> = rt
                .par_chunks_indexed(&items, |_, chunk| {
                    chunk.iter().map(|x| x * 3).collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(mapped, serial, "threads={threads}");
        }
    }

    #[test]
    fn base_index_recovers_global_positions() {
        let items = vec![7u32; 500];
        let rt = Runtime::new(4);
        let indexed: Vec<usize> = rt
            .par_chunks_indexed(&items, |base, chunk| {
                (0..chunk.len()).map(|off| base + off).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(indexed, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_folds_in_chunk_order() {
        // String concatenation is order-sensitive: any out-of-order
        // reduction would scramble the digits.
        let items: Vec<usize> = (0..300).collect();
        let serial: String = items.iter().map(|i| i.to_string()).collect();
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            let folded = rt
                .par_map_reduce(
                    &items,
                    |_, chunk| chunk.iter().map(|i| i.to_string()).collect::<String>(),
                    |mut a, b| {
                        a.push_str(&b);
                        a
                    },
                )
                .unwrap();
            assert_eq!(folded, serial, "threads={threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(Runtime::new(4)
            .par_map_reduce(&empty, |_, _| 0usize, |a, b| a + b)
            .is_none());
    }

    #[test]
    fn index_map_returns_results_in_index_order() {
        let rt = Runtime::new(8);
        let squares = rt.par_index_map(200, |i| i * i);
        assert_eq!(squares.len(), 200);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
        assert!(rt.par_index_map(0, |i| i).is_empty());
    }

    #[test]
    fn shard_fold_sees_items_in_original_order() {
        let items: Vec<u32> = (0..1_000).rev().collect();
        for threads in [1, 6] {
            let rt = Runtime::new(threads);
            let per_shard: Vec<Vec<(usize, u32)>> = rt.par_shard_fold(
                &items,
                7,
                |&x| u64::from(x),
                |shard, it| {
                    let collected: Vec<(usize, u32)> = it.map(|(i, &x)| (i, x)).collect();
                    for w in collected.windows(2) {
                        assert!(w[0].0 < w[1].0, "shard {shard} items out of order");
                    }
                    collected
                },
            );
            assert_eq!(per_shard.len(), 7);
            let mut all: Vec<(usize, u32)> = per_shard.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all.len(), items.len());
            for (i, (idx, x)) in all.into_iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(x, items[i]);
            }
        }
    }

    #[test]
    fn tasks_actually_fan_out_to_workers() {
        // Tasks 0 and 1 rendezvous on a barrier: the test can only finish
        // if two workers run them concurrently (with 4 workers and a task
        // held hostage at the barrier, another worker must pull the
        // partner task). This cannot pass on a single worker.
        let barrier = std::sync::Barrier::new(2);
        let rt = Runtime::new(4);
        let ids = rt.par_tasks(4, |i| {
            if i < 2 {
                barrier.wait();
            }
            (i, std::thread::current().id())
        });
        assert_eq!(ids.len(), 4);
        for (want, (got, _)) in ids.iter().enumerate() {
            assert_eq!(*got, want);
        }
        assert_ne!(ids[0].1, ids[1].1, "barrier partners ran on one thread");
    }

    #[test]
    fn tiny_shard_folds_run_inline() {
        let items: Vec<u32> = (0..MIN_CHUNK as u32).collect();
        let rt = Runtime::new(8);
        let tid = std::thread::current().id();
        let ran_on = rt.par_shard_fold(
            &items,
            16,
            |&x| u64::from(x),
            |_, it| {
                let _ = it.count();
                std::thread::current().id()
            },
        );
        assert!(
            ran_on.iter().all(|&t| t == tid),
            "tiny fold left the caller thread"
        );
    }

    #[test]
    fn classify_retain_preserves_order_and_verdicts() {
        let items: Vec<u32> = (0..500).collect();
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            let (kept, verdicts) = rt.par_classify_retain(items.clone(), |&x| x % 3, |&v| v != 0);
            assert_eq!(verdicts.len(), items.len());
            assert_eq!(
                kept,
                items
                    .iter()
                    .copied()
                    .filter(|x| x % 3 != 0)
                    .collect::<Vec<_>>()
            );
            assert_eq!(verdicts.iter().filter(|&&v| v == 0).count(), 167);
        }
    }

    #[test]
    fn shard_routing_is_stable_across_runs() {
        // FNV-1a with fixed constants: values must never change between
        // builds, or persisted shard layouts would silently break.
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash_str("演员"), stable_hash("演员".as_bytes()));
        assert_ne!(stable_hash_str("演员"), stable_hash_str("歌手"));
    }

    #[test]
    fn single_thread_runs_inline() {
        let rt = Runtime::serial();
        assert_eq!(rt.threads(), 1);
        let tid = std::thread::current().id();
        let ran_on: Vec<std::thread::ThreadId> =
            rt.par_index_map(100, |_| std::thread::current().id());
        assert!(ran_on.iter().all(|&t| t == tid));
    }

    #[test]
    fn zero_threads_clamp_to_one() {
        assert_eq!(Runtime::new(0).threads(), 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(Runtime::default().threads() >= 1);
    }
}
