//! Verification strategy C: syntax-based rules (paper §III-C).
//!
//! Rule (1): a hypernym must not be a thematic word — the 184-entry lexicon
//! (政治, 军事, 音乐 …) lists article *topics*, not classes.
//!
//! Rule (2): the stem of the hypernym's lexical head must not occur in a
//! non-head position of the hyponym: `isA(教育机构, 教育)` is wrong because
//! 教育 modifies the true head 机构 (implemented in
//! [`cnp_text::head::HeadAnalyzer`]).

use crate::candidate::CandidateSet;
use crate::context::PipelineContext;
use cnp_runtime::Runtime;
use cnp_text::lexicons::is_thematic;

/// Which syntax rules are enabled.
#[derive(Debug, Clone)]
pub struct SyntaxConfig {
    /// Rule (1): thematic-lexicon filter.
    pub thematic_rule: bool,
    /// Rule (2): head-stem rule.
    pub head_stem_rule: bool,
}

impl Default for SyntaxConfig {
    fn default() -> Self {
        SyntaxConfig {
            thematic_rule: true,
            head_stem_rule: true,
        }
    }
}

/// Which rule (if any) rejects a candidate.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Keep,
    Thematic,
    HeadStem,
}

/// Runs strategy C; returns the filtered set and per-rule removal counts
/// `(thematic_removed, head_stem_removed)`. Rule evaluation is a pure
/// per-candidate classification, so candidates partition across workers
/// ([`Runtime::par_classify_retain`]); per-rule counts come from the
/// verdict list and the surviving order matches the serial filter.
pub fn filter(
    set: CandidateSet,
    ctx: &PipelineContext,
    cfg: &SyntaxConfig,
    rt: &Runtime,
) -> (CandidateSet, usize, usize) {
    let (items, verdicts) = rt.par_classify_retain(
        set.items,
        |c| {
            if cfg.thematic_rule && is_thematic(&c.hypernym) {
                return Verdict::Thematic;
            }
            if cfg.head_stem_rule {
                // The hyponym is the entity name (word-level containment is
                // judged on the surface name, as in the paper's example).
                if ctx
                    .head
                    .violates_head_stem_rule(&c.entity_name, &c.hypernym)
                {
                    return Verdict::HeadStem;
                }
            }
            Verdict::Keep
        },
        |&v| v == Verdict::Keep,
    );
    let thematic_removed = verdicts.iter().filter(|&&v| v == Verdict::Thematic).count();
    let head_removed = verdicts.iter().filter(|&&v| v == Verdict::HeadStem).count();
    (CandidateSet { items }, thematic_removed, head_removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};
    use cnp_taxonomy::Source;

    fn ctx() -> PipelineContext {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(51)).generate();
        PipelineContext::build(&corpus, 2)
    }

    #[test]
    fn thematic_hypernyms_are_removed() {
        let ctx = ctx();
        let set = CandidateSet::merge(vec![
            Candidate::new(0, "刘德华", "刘德华", "", "音乐", Source::Tag, 0.9),
            Candidate::new(0, "刘德华", "刘德华", "", "歌手", Source::Tag, 0.9),
            Candidate::new(0, "刘德华", "刘德华", "", "政治", Source::Tag, 0.9),
        ]);
        let (filtered, thematic, _) = filter(set, &ctx, &SyntaxConfig::default(), &Runtime::new(2));
        assert_eq!(thematic, 2);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.items[0].hypernym, "歌手");
    }

    #[test]
    fn head_stem_violations_are_removed() {
        let ctx = ctx();
        // 教育机构 isA 教育 — the paper's own example for rule (2).
        let set = CandidateSet::merge(vec![Candidate::new(
            0,
            "教育机构",
            "教育机构",
            "",
            "教育",
            Source::Tag,
            0.9,
        )]);
        let (filtered, thematic, head) =
            filter(set, &ctx, &SyntaxConfig::default(), &Runtime::new(2));
        // 教育 is caught by whichever rule fires first; with the default
        // config the thematic rule sees 教育 first (教育 is in the lexicon).
        assert_eq!(filtered.len(), 0);
        assert_eq!(thematic + head, 1);
    }

    #[test]
    fn head_stem_rule_without_thematic_rule() {
        let ctx = ctx();
        let cfg = SyntaxConfig {
            thematic_rule: false,
            head_stem_rule: true,
        };
        let set = CandidateSet::merge(vec![
            Candidate::new(0, "教育机构", "教育机构", "", "教育", Source::Tag, 0.9),
            Candidate::new(0, "星辰大学", "星辰大学", "", "大学", Source::Tag, 0.9),
        ]);
        let (filtered, _, head) = filter(set, &ctx, &cfg, &Runtime::new(2));
        assert_eq!(head, 1);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.items[0].hypernym, "大学");
    }

    #[test]
    fn disabled_rules_pass_everything() {
        let ctx = ctx();
        let cfg = SyntaxConfig {
            thematic_rule: false,
            head_stem_rule: false,
        };
        let set = CandidateSet::merge(vec![Candidate::new(
            0,
            "刘德华",
            "刘德华",
            "",
            "音乐",
            Source::Tag,
            0.9,
        )]);
        let (filtered, t, h) = filter(set, &ctx, &cfg, &Runtime::new(2));
        assert_eq!((t, h), (0, 0));
        assert_eq!(filtered.len(), 1);
    }
}
