//! Verification strategy B: named-entity hypernyms (paper §III-B, Eq. 2).
//!
//! A named entity (美国, 刘德华) names an individual, so it cannot be a
//! hypernym. Two independent support signals are combined by a noisy-or:
//!
//! * `s1(H)` — share of corpus occurrences of `H` that are NE usages
//!   (from [`cnp_text::ner::NeStats`], built over the whole corpus);
//! * `s2(H)` — NE support inside the taxonomy under construction: how often
//!   `H` occurs as an entity (page name) versus as a hypernym.
//!
//! Candidates whose hypernym support exceeds the threshold are dropped.

use crate::candidate::CandidateSet;
use crate::context::PipelineContext;
use cnp_encyclopedia::Page;
use cnp_runtime::Runtime;
use cnp_text::ner::noisy_or;
use std::collections::{HashMap, HashSet};

/// Configuration for strategy B.
#[derive(Debug, Clone)]
pub struct NerFilterConfig {
    /// Candidates with `s(H)` above this are removed (paper: empirical).
    pub threshold: f64,
}

impl Default for NerFilterConfig {
    fn default() -> Self {
        NerFilterConfig { threshold: 0.6 }
    }
}

/// Computes `s2(H)` for every hypernym in the set: entity-usage count over
/// total usage count within the (candidate) taxonomy. Both usage counters
/// build in parallel chunks; counts are additive, so the support map is
/// thread-count-independent.
pub fn taxonomy_support(set: &CandidateSet, pages: &[Page], rt: &Runtime) -> HashMap<String, f64> {
    fn count_by<'a, T: Sync>(
        rt: &Runtime,
        items: &'a [T],
        key: impl Fn(&'a T) -> &'a str + Sync,
    ) -> HashMap<&'a str, usize> {
        rt.par_map_reduce(
            items,
            |_, chunk| {
                let mut m: HashMap<&str, usize> = HashMap::new();
                for t in chunk {
                    *m.entry(key(t)).or_insert(0) += 1;
                }
                m
            },
            |mut acc, part| {
                for (k, n) in part {
                    *acc.entry(k).or_insert(0) += n;
                }
                acc
            },
        )
        .unwrap_or_default()
    }
    let page_names = count_by(rt, pages, |p| p.name.as_str());
    let hyper_usage = count_by(rt, &set.items, |c| c.hypernym.as_str());
    let hypernyms: HashSet<&str> = set.items.iter().map(|c| c.hypernym.as_str()).collect();
    // cnp-lint: allow(determinism-contract) reason="collects straight into the support HashMap; each key's score is computed independently, so set order cannot reach the result"
    hypernyms
        .into_iter()
        .map(|h| {
            let as_entity = page_names.get(h).copied().unwrap_or(0) as f64;
            let as_hyper = hyper_usage.get(h).copied().unwrap_or(0) as f64;
            // A name that is *only* a page (never reused as hypernym
            // elsewhere) is pure NE; frequent hypernym usage dilutes it.
            let s2 = if as_entity + as_hyper == 0.0 {
                0.0
            } else {
                as_entity / (as_entity + as_hyper)
            };
            (h.to_string(), s2)
        })
        .collect()
}

/// Runs strategy B; returns the filtered set and the removal count. The
/// per-candidate noisy-or test evaluates in parallel partitions
/// ([`Runtime::par_classify_retain`]), preserving the serial surviving
/// order.
pub fn filter(
    set: CandidateSet,
    pages: &[Page],
    ctx: &PipelineContext,
    cfg: &NerFilterConfig,
    rt: &Runtime,
) -> (CandidateSet, usize) {
    let s2 = taxonomy_support(&set, pages, rt);
    let before = set.len();
    let (items, _) = rt.par_classify_retain(
        set.items,
        |c| {
            let s1 = ctx.ne_stats.support(&c.hypernym);
            let s2 = s2.get(&c.hypernym).copied().unwrap_or(0.0);
            noisy_or(s1, s2) <= cfg.threshold
        },
        |&keep| keep,
    );
    let removed = before - items.len();
    (CandidateSet { items }, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};
    use cnp_taxonomy::Source;

    #[test]
    fn s2_high_for_pure_entities_low_for_concepts() {
        let pages = vec![
            cnp_encyclopedia::Page {
                name: "临江市".into(),
                ..Default::default()
            },
            cnp_encyclopedia::Page {
                name: "甲".into(),
                ..Default::default()
            },
        ];
        let set = CandidateSet::merge(vec![
            Candidate::new(1, "甲", "甲", "", "临江市", Source::Tag, 0.9),
            Candidate::new(1, "甲", "甲", "", "演员", Source::Tag, 0.9),
            Candidate::new(0, "临江市", "临江市", "", "演员", Source::Tag, 0.9),
        ]);
        let s2 = taxonomy_support(&set, &pages, &Runtime::new(2));
        // 临江市: 1 page, 1 hypernym usage → 0.5; 演员: 0 pages, 2 usages → 0.
        assert!((s2["临江市"] - 0.5).abs() < 1e-9);
        assert_eq!(s2["演员"], 0.0);
    }

    #[test]
    fn removes_ne_hypernyms_keeps_concepts() {
        // Both NE hypernyms below need corpus support. 美国 occurs in
        // generated text of any seed; 临江市 only sometimes, so add its
        // page explicitly rather than depending on the RNG stream.
        let mut corpus = CorpusGenerator::new(CorpusConfig::tiny(41)).generate();
        corpus.pages.push(cnp_encyclopedia::Page {
            name: "临江市".into(),
            ..Default::default()
        });
        let ctx = crate::context::PipelineContext::build(&corpus, 2);
        let set = CandidateSet::merge(vec![
            Candidate::new(0, "某人", "某人", "", "美国", Source::Tag, 0.9),
            Candidate::new(0, "某人", "某人", "", "演员", Source::Tag, 0.9),
            Candidate::new(0, "某人", "某人", "", "临江市", Source::Tag, 0.9),
        ]);
        let (filtered, removed) = filter(
            set,
            &corpus.pages,
            &ctx,
            &NerFilterConfig::default(),
            &Runtime::new(2),
        );
        assert!(
            removed >= 2,
            "NE hypernyms should be removed, got {removed}"
        );
        assert!(filtered.items.iter().any(|c| c.hypernym == "演员"));
        assert!(!filtered.items.iter().any(|c| c.hypernym == "美国"));
    }

    #[test]
    fn threshold_one_disables_filtering() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(42)).generate();
        let ctx = crate::context::PipelineContext::build(&corpus, 2);
        let set = CandidateSet::merge(vec![Candidate::new(
            0,
            "某人",
            "某人",
            "",
            "美国",
            Source::Tag,
            0.9,
        )]);
        let (filtered, removed) = filter(
            set,
            &corpus.pages,
            &ctx,
            &NerFilterConfig { threshold: 1.0 },
            &Runtime::serial(),
        );
        assert_eq!(removed, 0);
        assert_eq!(filtered.len(), 1);
    }
}
