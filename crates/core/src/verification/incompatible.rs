//! Verification strategy A: incompatible concepts (paper §III-A, Eq. 1).
//!
//! Two concepts are *compatible* when they plausibly share entities
//! (singer/actor) and *incompatible* when they cannot (person/book).
//! Incompatible pairs are detected from data: low Jaccard overlap of
//! hyponym sets **and** low cosine similarity of attribute distributions.
//! When an entity carries two incompatible concepts, the one whose
//! attribute distribution diverges more from the entity's (larger KL,
//! Eq. 1) is dropped.

use crate::candidate::CandidateSet;
use cnp_encyclopedia::Page;
use cnp_runtime::Runtime;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Thresholds for strategy A.
#[derive(Debug, Clone)]
pub struct IncompatibleConfig {
    /// Concepts with Jaccard below this are overlap-incompatible.
    pub max_jaccard: f64,
    /// … and with attribute cosine below this are attribute-incompatible.
    pub max_cosine: f64,
    /// Concepts must have at least this many entities to participate
    /// (small concepts give unreliable statistics).
    pub min_extent: usize,
}

impl Default for IncompatibleConfig {
    fn default() -> Self {
        IncompatibleConfig {
            // A loose overlap pre-filter: genuinely compatible concepts
            // (singer/actor) share far more than 10% of their hyponyms at
            // corpus scale, while a handful of wrong edges cannot push two
            // incompatible concepts past it. The cosine test on attribute
            // distributions is the decisive signal.
            max_jaccard: 0.10,
            max_cosine: 0.25,
            min_extent: 5,
        }
    }
}

/// Per-concept statistics gathered from the candidate set.
///
/// Distributions use `BTreeMap` so floating-point accumulation happens in a
/// fixed key order — keeping KL/cosine comparisons bit-for-bit
/// reproducible across runs (near-ties decide which edge gets dropped).
/// The hyponym-page set is borrowed from the concept→pages index rather
/// than duplicated per concept.
struct ConceptInfo<'a> {
    entities: &'a HashSet<usize>,
    attr_dist: BTreeMap<String, f64>,
}

/// KL divergence `D(p ‖ q)` over attribute distributions with add-ε
/// smoothing on `q` (Eq. 1; smoothing keeps the score finite when the
/// concept lacks one of the entity's attributes).
pub fn kl_divergence(p: &BTreeMap<String, f64>, q: &BTreeMap<String, f64>) -> f64 {
    const EPS: f64 = 1e-6;
    let mut kl = 0.0;
    for (attr, &pv) in p {
        if pv <= 0.0 {
            continue;
        }
        let qv = q.get(attr).copied().unwrap_or(0.0) + EPS;
        kl += pv * (pv / qv).ln();
    }
    kl.max(0.0)
}

/// Cosine similarity of two sparse distributions.
pub fn cosine(p: &BTreeMap<String, f64>, q: &BTreeMap<String, f64>) -> f64 {
    let mut dot = 0.0;
    for (k, &pv) in p {
        if let Some(&qv) = q.get(k) {
            dot += pv * qv;
        }
    }
    let np: f64 = p.values().map(|v| v * v).sum::<f64>().sqrt();
    let nq: f64 = q.values().map(|v| v * v).sum::<f64>().sqrt();
    if np == 0.0 || nq == 0.0 {
        0.0
    } else {
        dot / (np * nq)
    }
}

/// Runs strategy A, returning the filtered candidate set and the number of
/// removed candidates.
///
/// All three expensive phases run in parallel partitions on the shared
/// runtime: per-page attribute gathering, per-concept statistics, and the
/// per-entity pair tests. The removal cascade is confined to one entity's
/// candidate list, so entity groups partition cleanly across workers and
/// the merged removal set is thread-count-independent.
pub fn filter(
    set: CandidateSet,
    pages: &[Page],
    cfg: &IncompatibleConfig,
    rt: &Runtime,
) -> (CandidateSet, usize) {
    // Entity attribute sets from infobox predicates (sorted + deduped for
    // deterministic accumulation order).
    let entity_attrs: Vec<Vec<&str>> = rt
        .par_chunks_indexed(pages, |_, chunk| {
            chunk
                .iter()
                .map(|p| {
                    let mut attrs: Vec<&str> =
                        p.infobox.iter().map(|t| t.predicate.as_str()).collect();
                    attrs.sort_unstable();
                    attrs.dedup();
                    attrs
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

    // Concept → distinct hyponym pages (set union is merge-order
    // invariant), then per-concept attribute distributions computed
    // independently — attribute counts accumulate in ascending page order,
    // and integer-valued f64 additions are exact, so the normalized
    // distribution is identical to the serial single-pass build.
    let concept_pages: HashMap<&str, HashSet<usize>> = rt
        .par_map_reduce(
            &set.items,
            |_, chunk| {
                let mut m: HashMap<&str, HashSet<usize>> = HashMap::new();
                for c in chunk {
                    m.entry(c.hypernym.as_str()).or_default().insert(c.page);
                }
                m
            },
            |mut acc, part| {
                for (k, v) in part {
                    acc.entry(k).or_default().extend(v);
                }
                acc
            },
        )
        .unwrap_or_default();
    // cnp-lint: allow(determinism-contract) reason="the keys are sorted on the next line before any ordered use"
    let mut concept_names: Vec<&str> = concept_pages.keys().copied().collect();
    concept_names.sort_unstable();
    let infos: Vec<ConceptInfo> = rt.par_index_map(concept_names.len(), |i| {
        let entities = &concept_pages[concept_names[i]];
        let mut sorted: Vec<usize> = entities.iter().copied().collect();
        sorted.sort_unstable();
        let mut attr_dist: BTreeMap<String, f64> = BTreeMap::new();
        for p in sorted {
            for &a in &entity_attrs[p] {
                *attr_dist.entry(a.to_string()).or_insert(0.0) += 1.0;
            }
        }
        let total: f64 = attr_dist.values().sum();
        if total > 0.0 {
            for v in attr_dist.values_mut() {
                *v /= total;
            }
        }
        ConceptInfo {
            entities,
            attr_dist,
        }
    });
    let concepts: HashMap<&str, ConceptInfo> = concept_names.into_iter().zip(infos).collect();

    // Entity attribute distributions (uniform over the page's predicates).
    let entity_dist: Vec<BTreeMap<String, f64>> = rt
        .par_chunks_indexed(&entity_attrs, |_, chunk| {
            chunk
                .iter()
                .map(|attrs| {
                    let n = attrs.len().max(1) as f64;
                    attrs
                        .iter()
                        .map(|a| ((*a).to_string(), 1.0 / n))
                        .collect::<BTreeMap<String, f64>>()
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

    // Group candidates per entity. BTreeMap keeps the group order
    // deterministic; removal decisions cascade (a removed edge is skipped
    // in later pair tests), but only *within* a group, so groups fan out
    // to workers independently.
    let mut by_entity: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, c) in set.items.iter().enumerate() {
        by_entity.entry(c.entity_key.as_str()).or_default().push(i);
    }
    let groups: Vec<&Vec<usize>> = by_entity.values().collect();

    let is_incompatible = |a: &ConceptInfo, b: &ConceptInfo| -> bool {
        if a.entities.len() < cfg.min_extent || b.entities.len() < cfg.min_extent {
            return false;
        }
        let inter = a.entities.intersection(b.entities).count() as f64;
        let union = (a.entities.len() + b.entities.len()) as f64 - inter;
        let jaccard = if union == 0.0 { 0.0 } else { inter / union };
        if jaccard > cfg.max_jaccard {
            return false;
        }
        cosine(&a.attr_dist, &b.attr_dist) < cfg.max_cosine
    };

    let removed: HashSet<usize> = rt
        .par_map_reduce(
            &groups,
            |_, group_chunk| {
                let mut removed: HashSet<usize> = HashSet::new();
                for indices in group_chunk {
                    for (ai, &i) in indices.iter().enumerate() {
                        for &j in indices.iter().skip(ai + 1) {
                            if removed.contains(&i) || removed.contains(&j) {
                                continue;
                            }
                            let (ci, cj) = (&set.items[i], &set.items[j]);
                            let (Some(info_i), Some(info_j)) = (
                                concepts.get(ci.hypernym.as_str()),
                                concepts.get(cj.hypernym.as_str()),
                            ) else {
                                continue;
                            };
                            if !is_incompatible(info_i, info_j) {
                                continue;
                            }
                            // Drop the concept with larger KL(v_att(e) ‖ v_att(c)).
                            let e_dist = &entity_dist[ci.page];
                            let kl_i = kl_divergence(e_dist, &info_i.attr_dist);
                            let kl_j = kl_divergence(e_dist, &info_j.attr_dist);
                            removed.insert(if kl_i > kl_j { i } else { j });
                        }
                    }
                }
                removed
            },
            |mut acc, part| {
                acc.extend(part);
                acc
            },
        )
        .unwrap_or_default();

    let n_removed = removed.len();
    let items = set
        .items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !removed.contains(i))
        .map(|(_, c)| c)
        .collect();
    (CandidateSet { items }, n_removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;
    use cnp_encyclopedia::InfoboxTriple;
    use cnp_taxonomy::Source;

    fn dist(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
    }

    #[test]
    fn kl_is_zero_for_identical_and_positive_otherwise() {
        let p = dist(&[("a", 0.5), ("b", 0.5)]);
        let q = dist(&[("a", 0.5), ("b", 0.5)]);
        assert!(kl_divergence(&p, &q) < 1e-9);
        let r = dist(&[("c", 1.0)]);
        assert!(kl_divergence(&p, &r) > 1.0);
    }

    #[test]
    fn cosine_bounds() {
        let p = dist(&[("a", 1.0)]);
        let q = dist(&[("a", 2.0)]);
        assert!((cosine(&p, &q) - 1.0).abs() < 1e-9);
        let r = dist(&[("b", 1.0)]);
        assert_eq!(cosine(&p, &r), 0.0);
        assert_eq!(cosine(&p, &BTreeMap::new()), 0.0);
    }

    /// Build a scene: many persons (职业/出生地 attributes) tagged 人物,
    /// many books (作者/出版社) tagged 图书, and one person wrongly tagged
    /// 图书. Strategy A must remove exactly that edge.
    #[test]
    fn removes_cross_domain_wrong_concept() {
        let mut pages = Vec::new();
        let mut cands = Vec::new();
        for i in 0..8 {
            pages.push(cnp_encyclopedia::Page {
                name: format!("人{i}"),
                infobox: vec![
                    InfoboxTriple::new("职业", "演员"),
                    InfoboxTriple::new("出生地", "某市"),
                ],
                ..Default::default()
            });
            cands.push(Candidate::new(
                i,
                format!("人{i}"),
                format!("人{i}"),
                "",
                "人物",
                Source::Tag,
                0.9,
            ));
        }
        for i in 0..8 {
            let page = 8 + i;
            pages.push(cnp_encyclopedia::Page {
                name: format!("书{i}"),
                infobox: vec![
                    InfoboxTriple::new("作者", "某人"),
                    InfoboxTriple::new("出版时间", "1999年"),
                ],
                ..Default::default()
            });
            cands.push(Candidate::new(
                page,
                format!("书{i}"),
                format!("书{i}"),
                "",
                "图书",
                Source::Tag,
                0.9,
            ));
        }
        // The wrong edge: person 0 also tagged 图书.
        cands.push(Candidate::new(
            0,
            "人0".to_string(),
            "人0".to_string(),
            "",
            "图书",
            Source::Tag,
            0.9,
        ));
        let set = CandidateSet::merge(cands);
        let before = set.len();
        let (filtered, removed) = filter(
            set,
            &pages,
            &IncompatibleConfig::default(),
            &Runtime::new(2),
        );
        assert_eq!(removed, 1);
        assert_eq!(filtered.len(), before - 1);
        assert!(
            !filtered
                .items
                .iter()
                .any(|c| c.entity_key == "人0" && c.hypernym == "图书"),
            "the wrong 图书 edge must be removed"
        );
        assert!(
            filtered
                .items
                .iter()
                .any(|c| c.entity_key == "人0" && c.hypernym == "人物"),
            "the correct 人物 edge must survive"
        );
    }

    /// Compatible concepts (shared entities) are never flagged.
    #[test]
    fn keeps_compatible_concepts() {
        let mut pages = Vec::new();
        let mut cands = Vec::new();
        for i in 0..8 {
            pages.push(cnp_encyclopedia::Page {
                name: format!("人{i}"),
                infobox: vec![InfoboxTriple::new("职业", "演员")],
                ..Default::default()
            });
            // Everyone is both singer and actor: high Jaccard → compatible.
            for concept in ["歌手", "演员"] {
                cands.push(Candidate::new(
                    i,
                    format!("人{i}"),
                    format!("人{i}"),
                    "",
                    concept,
                    Source::Tag,
                    0.9,
                ));
            }
        }
        let set = CandidateSet::merge(cands);
        let before = set.len();
        let (filtered, removed) = filter(
            set,
            &pages,
            &IncompatibleConfig::default(),
            &Runtime::new(2),
        );
        assert_eq!(removed, 0);
        assert_eq!(filtered.len(), before);
    }

    /// Small concepts (below min_extent) never participate.
    #[test]
    fn small_concepts_are_exempt() {
        let pages = vec![cnp_encyclopedia::Page {
            name: "甲".into(),
            infobox: vec![InfoboxTriple::new("职业", "演员")],
            ..Default::default()
        }];
        let set = CandidateSet::merge(vec![
            Candidate::new(0, "甲", "甲", "", "稀有概念一", Source::Tag, 0.9),
            Candidate::new(0, "甲", "甲", "", "稀有概念二", Source::Tag, 0.9),
        ]);
        let (_, removed) = filter(
            set,
            &pages,
            &IncompatibleConfig::default(),
            &Runtime::new(2),
        );
        assert_eq!(removed, 0);
    }
}
