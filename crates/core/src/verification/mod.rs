//! The verification module (paper §III): three heuristic strategies that
//! remove wrong isA candidates. A candidate is dropped as soon as *any*
//! strategy judges it wrong (the paper's disjunctive policy).

pub mod incompatible;
pub mod ner_filter;
pub mod syntax;

use crate::candidate::CandidateSet;
use crate::context::PipelineContext;
use cnp_encyclopedia::Page;
use cnp_runtime::Runtime;

/// Toggles and thresholds for the whole module.
#[derive(Debug, Clone, Default)]
pub struct VerificationConfig {
    /// Strategy A (incompatible concepts); `None` disables it.
    pub incompatible: Option<incompatible::IncompatibleConfig>,
    /// Strategy B (NER filter); `None` disables it.
    pub ner: Option<ner_filter::NerFilterConfig>,
    /// Strategy C (syntax rules); `None` disables it.
    pub syntax: Option<syntax::SyntaxConfig>,
}

impl VerificationConfig {
    /// All three strategies with default thresholds (the paper's setting).
    pub fn all() -> Self {
        VerificationConfig {
            incompatible: Some(Default::default()),
            ner: Some(Default::default()),
            syntax: Some(Default::default()),
        }
    }

    /// No verification (the Bigcilin-style ablation).
    pub fn none() -> Self {
        VerificationConfig::default()
    }
}

/// Per-strategy removal counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerificationReport {
    /// Removed by incompatible-concept detection.
    pub incompatible_removed: usize,
    /// Removed by the NER filter.
    pub ner_removed: usize,
    /// Removed by the thematic-lexicon rule.
    pub thematic_removed: usize,
    /// Removed by the head-stem rule.
    pub head_stem_removed: usize,
}

impl VerificationReport {
    /// Total removals across strategies.
    pub fn total(&self) -> usize {
        self.incompatible_removed
            + self.ner_removed
            + self.thematic_removed
            + self.head_stem_removed
    }
}

/// Runs the enabled strategies in the paper's order (A, B, C).
///
/// The strategies themselves stay strictly sequential — each consumes the
/// previous one's survivors, exactly as in the paper — but every strategy
/// filters its candidates in parallel partitions on the shared runtime,
/// with removal counts merged deterministically.
pub fn verify(
    mut set: CandidateSet,
    pages: &[Page],
    ctx: &PipelineContext,
    cfg: &VerificationConfig,
    rt: &Runtime,
) -> (CandidateSet, VerificationReport) {
    let mut report = VerificationReport::default();
    if let Some(inc_cfg) = &cfg.incompatible {
        let (next, removed) = incompatible::filter(set, pages, inc_cfg, rt);
        set = next;
        report.incompatible_removed = removed;
    }
    if let Some(ner_cfg) = &cfg.ner {
        let (next, removed) = ner_filter::filter(set, pages, ctx, ner_cfg, rt);
        set = next;
        report.ner_removed = removed;
    }
    if let Some(syn_cfg) = &cfg.syntax {
        let (next, thematic, head) = syntax::filter(set, ctx, syn_cfg, rt);
        set = next;
        report.thematic_removed = thematic;
        report.head_stem_removed = head;
    }
    (set, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};
    use cnp_taxonomy::Source;

    #[test]
    fn verification_improves_precision_on_synthetic_noise() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(61)).generate();
        let ctx = PipelineContext::build(&corpus, 2);
        // Raw tag candidates contain the generator's noise.
        let raw = CandidateSet::merge(crate::generation::tag::extract(
            &corpus.pages,
            &Runtime::new(2),
        ));
        let precision = |set: &CandidateSet| {
            let correct = set
                .items
                .iter()
                .filter(|c| {
                    corpus
                        .gold
                        .is_correct_entity_isa(&c.entity_key, &c.hypernym)
                        || corpus
                            .gold
                            .is_correct_concept_isa(&c.entity_name, &c.hypernym)
                })
                .count();
            correct as f64 / set.len().max(1) as f64
        };
        let before = precision(&raw);
        let before_len = raw.len();
        let (verified, report) = verify(
            raw,
            &corpus.pages,
            &ctx,
            &VerificationConfig::all(),
            &Runtime::new(2),
        );
        let after = precision(&verified);
        assert!(report.total() > 0, "verification removed nothing");
        assert!(
            after > before,
            "precision did not improve: {before:.3} → {after:.3}"
        );
        // Coverage cost must be bounded: no more than 20% of edges removed.
        assert!(verified.len() * 5 >= before_len * 4);
    }

    #[test]
    fn disabled_verification_is_identity() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(62)).generate();
        let ctx = PipelineContext::build(&corpus, 2);
        let raw = CandidateSet::merge(vec![Candidate::new(
            0,
            "某人",
            "某人",
            "",
            "音乐",
            Source::Tag,
            0.9,
        )]);
        let before = raw.len();
        let (after, report) = verify(
            raw,
            &corpus.pages,
            &ctx,
            &VerificationConfig::none(),
            &Runtime::serial(),
        );
        assert_eq!(after.len(), before);
        assert_eq!(report.total(), 0);
    }
}
