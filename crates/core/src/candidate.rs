//! Candidate isA relations — the interchange type between the generation
//! and verification modules (paper Fig. 2, “Candidate isA relations”).

use cnp_taxonomy::Source;

/// One candidate isA relation produced by a generation algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index of the producing page in the corpus page list.
    pub page: usize,
    /// Disambiguated entity key (`name（bracket）` or `name`).
    pub entity_key: String,
    /// Entity surface name.
    pub entity_name: String,
    /// Bracket disambiguation (empty when absent).
    pub bracket: String,
    /// Proposed hypernym.
    pub hypernym: String,
    /// Primary source (the highest-confidence proposer after merging).
    pub source: Source,
    /// Bitmask of *every* source that proposed this edge (see
    /// [`Candidate::proposed_by`]). Several sources often extract the same
    /// pair — 刘德华 isA 演员 comes from bracket, infobox and tag alike.
    pub sources_mask: u8,
    /// Extraction confidence in `[0, 1]`.
    pub confidence: f32,
}

impl Candidate {
    /// Builds a candidate from page coordinates.
    pub fn new(
        page: usize,
        entity_key: impl Into<String>,
        entity_name: impl Into<String>,
        bracket: impl Into<String>,
        hypernym: impl Into<String>,
        source: Source,
        confidence: f32,
    ) -> Self {
        Candidate {
            page,
            entity_key: entity_key.into(),
            entity_name: entity_name.into(),
            bracket: bracket.into(),
            hypernym: hypernym.into(),
            source,
            sources_mask: 1 << source.to_u8(),
            confidence,
        }
    }

    /// Did `source` (also) propose this edge?
    pub fn proposed_by(&self, source: Source) -> bool {
        self.sources_mask & (1 << source.to_u8()) != 0
    }
}

/// A deduplicated set of candidates.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// The candidates, deduplicated on `(entity_key, hypernym)`.
    pub items: Vec<Candidate>,
}

impl CandidateSet {
    /// Merges raw candidate streams, deduplicating on
    /// `(entity_key, hypernym)` and keeping the highest-confidence edge
    /// (ties keep the earlier source).
    pub fn merge<I: IntoIterator<Item = Candidate>>(streams: I) -> Self {
        let mut index: std::collections::HashMap<(String, String), usize> =
            std::collections::HashMap::new();
        let mut items: Vec<Candidate> = Vec::new();
        for c in streams {
            let key = (c.entity_key.clone(), c.hypernym.clone());
            match index.get(&key) {
                Some(&i) => {
                    let merged_mask = items[i].sources_mask | c.sources_mask;
                    if c.confidence > items[i].confidence {
                        items[i] = c;
                    }
                    items[i].sources_mask = merged_mask;
                }
                None => {
                    index.insert(key, items.len());
                    items.push(c);
                }
            }
        }
        CandidateSet { items }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Candidates per source, as `(source, count)` in a stable order.
    pub fn counts_by_source(&self) -> Vec<(Source, usize)> {
        let order = [
            Source::Bracket,
            Source::Abstract,
            Source::Infobox,
            Source::Tag,
        ];
        order
            .iter()
            .map(|&s| (s, self.items.iter().filter(|c| c.source == s).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(key: &str, hyper: &str, source: Source, conf: f32) -> Candidate {
        Candidate::new(0, key, key, "", hyper, source, conf)
    }

    #[test]
    fn merge_dedups_and_keeps_highest_confidence() {
        let set = CandidateSet::merge(vec![
            cand("刘德华", "演员", Source::Tag, 0.9),
            cand("刘德华", "演员", Source::Bracket, 0.96),
            cand("刘德华", "歌手", Source::Tag, 0.9),
        ]);
        assert_eq!(set.len(), 2);
        let actor = set.items.iter().find(|c| c.hypernym == "演员").unwrap();
        assert_eq!(actor.source, Source::Bracket);
        assert_eq!(actor.confidence, 0.96);
    }

    #[test]
    fn merge_keeps_earlier_on_confidence_tie() {
        let set = CandidateSet::merge(vec![
            cand("甲", "乙", Source::Tag, 0.9),
            cand("甲", "乙", Source::Infobox, 0.9),
        ]);
        assert_eq!(set.items[0].source, Source::Tag);
    }

    #[test]
    fn counts_by_source() {
        let set = CandidateSet::merge(vec![
            cand("a", "b", Source::Tag, 0.9),
            cand("a", "c", Source::Bracket, 0.9),
            cand("b", "c", Source::Bracket, 0.9),
        ]);
        let counts = set.counts_by_source();
        assert!(counts.contains(&(Source::Bracket, 2)));
        assert!(counts.contains(&(Source::Tag, 1)));
        assert!(counts.contains(&(Source::Abstract, 0)));
    }
}
