//! Candidate isA relations — the interchange type between the generation
//! and verification modules (paper Fig. 2, “Candidate isA relations”).

use cnp_runtime::{stable_hash_str, Runtime};
use cnp_taxonomy::Source;

/// One candidate isA relation produced by a generation algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index of the producing page in the corpus page list.
    pub page: usize,
    /// Disambiguated entity key (`name（bracket）` or `name`).
    pub entity_key: String,
    /// Entity surface name.
    pub entity_name: String,
    /// Bracket disambiguation (empty when absent).
    pub bracket: String,
    /// Proposed hypernym.
    pub hypernym: String,
    /// Primary source (the highest-confidence proposer after merging).
    pub source: Source,
    /// Bitmask of *every* source that proposed this edge (see
    /// [`Candidate::proposed_by`]). Several sources often extract the same
    /// pair — 刘德华 isA 演员 comes from bracket, infobox and tag alike.
    pub sources_mask: u8,
    /// Extraction confidence in `[0, 1]`.
    pub confidence: f32,
}

impl Candidate {
    /// Builds a candidate from page coordinates.
    pub fn new(
        page: usize,
        entity_key: impl Into<String>,
        entity_name: impl Into<String>,
        bracket: impl Into<String>,
        hypernym: impl Into<String>,
        source: Source,
        confidence: f32,
    ) -> Self {
        Candidate {
            page,
            entity_key: entity_key.into(),
            entity_name: entity_name.into(),
            bracket: bracket.into(),
            hypernym: hypernym.into(),
            source,
            sources_mask: 1 << source.to_u8(),
            confidence,
        }
    }

    /// Did `source` (also) propose this edge?
    pub fn proposed_by(&self, source: Source) -> bool {
        self.sources_mask & (1 << source.to_u8()) != 0
    }
}

/// A deduplicated set of candidates.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// The candidates, deduplicated on `(entity_key, hypernym)`.
    pub items: Vec<Candidate>,
}

impl CandidateSet {
    /// Merges raw candidate streams, deduplicating on
    /// `(entity_key, hypernym)` and keeping the highest-confidence edge
    /// (ties keep the earlier source).
    pub fn merge<I: IntoIterator<Item = Candidate>>(streams: I) -> Self {
        let mut index: std::collections::HashMap<(String, String), usize> =
            std::collections::HashMap::new();
        let mut items: Vec<Candidate> = Vec::new();
        for c in streams {
            let key = (c.entity_key.clone(), c.hypernym.clone());
            match index.get(&key) {
                Some(&i) => {
                    let merged_mask = items[i].sources_mask | c.sources_mask;
                    if c.confidence > items[i].confidence {
                        items[i] = c;
                    }
                    items[i].sources_mask = merged_mask;
                }
                None => {
                    index.insert(key, items.len());
                    items.push(c);
                }
            }
        }
        CandidateSet { items }
    }

    /// Shards the merge (the pipeline's contraction point) over `rt`.
    ///
    /// Candidates route to shards by hypernym hash, so every collision of a
    /// `(entity_key, hypernym)` key lands in one shard; each shard folds
    /// its candidates in original stream order, remembering the key's
    /// first-occurrence index and winning candidate, and the shard outputs
    /// re-sort on that index. The parallel phase only reads borrowed
    /// candidates — survivors are *moved* out of the input afterwards, so
    /// no strings are cloned. The result is **identical to
    /// [`CandidateSet::merge`]** — same survivors, same order — at every
    /// thread and shard count.
    pub fn merge_with(items: Vec<Candidate>, rt: &Runtime) -> Self {
        if rt.threads() == 1 {
            return Self::merge(items);
        }
        /// Fixed shard count: comfortably above any worker count we run
        /// with, small enough that near-empty shards stay cheap.
        const SHARDS: usize = 32;
        /// Per-key fold state: first-occurrence index (the output sort
        /// key), index of the current winning candidate, its confidence,
        /// and the accumulated source mask.
        struct Slot {
            first_seen: u32,
            winner: u32,
            confidence: f32,
            sources_mask: u8,
        }
        let folded: Vec<Vec<Slot>> = rt.par_shard_fold(
            &items,
            SHARDS,
            |c| stable_hash_str(&c.hypernym),
            |_, shard_items| {
                let mut index: std::collections::HashMap<(&str, &str), usize> =
                    std::collections::HashMap::new();
                let mut merged: Vec<Slot> = Vec::new();
                for (orig, c) in shard_items {
                    let key = (c.entity_key.as_str(), c.hypernym.as_str());
                    match index.get(&key) {
                        Some(&i) => {
                            let slot = &mut merged[i];
                            slot.sources_mask |= c.sources_mask;
                            if c.confidence > slot.confidence {
                                slot.winner = orig as u32;
                                slot.confidence = c.confidence;
                            }
                        }
                        None => {
                            index.insert(key, merged.len());
                            merged.push(Slot {
                                first_seen: orig as u32,
                                winner: orig as u32,
                                confidence: c.confidence,
                                sources_mask: c.sources_mask,
                            });
                        }
                    }
                }
                merged
            },
        );
        // cnp-lint: allow(determinism-contract) reason="folded is the runtime's per-shard Vec (the fold's FxHashMap is drained inside each shard); the first_seen sort below fixes the order"
        let mut slots: Vec<Slot> = folded.into_iter().flatten().collect();
        slots.sort_unstable_by_key(|s| s.first_seen);
        // Winners are distinct (one per key), so each take() hits once.
        let mut pool: Vec<Option<Candidate>> = items.into_iter().map(Some).collect();
        let items = slots
            .into_iter()
            .map(|s| {
                let mut c = pool[s.winner as usize]
                    .take()
                    .expect("each winner is taken exactly once");
                c.sources_mask = s.sources_mask;
                c
            })
            .collect();
        CandidateSet { items }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Candidates per source, as `(source, count)` in a stable order.
    pub fn counts_by_source(&self) -> Vec<(Source, usize)> {
        let order = [
            Source::Bracket,
            Source::Abstract,
            Source::Infobox,
            Source::Tag,
        ];
        order
            .iter()
            .map(|&s| (s, self.items.iter().filter(|c| c.source == s).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(key: &str, hyper: &str, source: Source, conf: f32) -> Candidate {
        Candidate::new(0, key, key, "", hyper, source, conf)
    }

    #[test]
    fn merge_dedups_and_keeps_highest_confidence() {
        let set = CandidateSet::merge(vec![
            cand("刘德华", "演员", Source::Tag, 0.9),
            cand("刘德华", "演员", Source::Bracket, 0.96),
            cand("刘德华", "歌手", Source::Tag, 0.9),
        ]);
        assert_eq!(set.len(), 2);
        let actor = set.items.iter().find(|c| c.hypernym == "演员").unwrap();
        assert_eq!(actor.source, Source::Bracket);
        assert_eq!(actor.confidence, 0.96);
    }

    #[test]
    fn merge_keeps_earlier_on_confidence_tie() {
        let set = CandidateSet::merge(vec![
            cand("甲", "乙", Source::Tag, 0.9),
            cand("甲", "乙", Source::Infobox, 0.9),
        ]);
        assert_eq!(set.items[0].source, Source::Tag);
    }

    #[test]
    fn sharded_merge_equals_serial_merge() {
        // A stream with heavy duplication, confidence ties (earlier source
        // must win) and upgrades (later higher confidence must win),
        // spread over enough distinct hypernyms to hit many shards.
        let mut stream = Vec::new();
        for round in 0..6 {
            for e in 0..40 {
                for h in 0..25 {
                    let conf = 0.5 + 0.1 * ((e + h + round) % 5) as f32;
                    let source = match (e + h + round) % 3 {
                        0 => Source::Tag,
                        1 => Source::Bracket,
                        _ => Source::Infobox,
                    };
                    stream.push(cand(&format!("实体{e}"), &format!("概念{h}"), source, conf));
                }
            }
        }
        let serial = CandidateSet::merge(stream.clone());
        for threads in [2, 4, 8] {
            let sharded = CandidateSet::merge_with(stream.clone(), &Runtime::new(threads));
            assert_eq!(sharded.items, serial.items, "threads={threads}");
        }
        // The serial fast path is the serial merge itself.
        let fast = CandidateSet::merge_with(stream, &Runtime::serial());
        assert_eq!(fast.items, serial.items);
    }

    #[test]
    fn counts_by_source() {
        let set = CandidateSet::merge(vec![
            cand("a", "b", Source::Tag, 0.9),
            cand("a", "c", Source::Bracket, 0.9),
            cand("b", "c", Source::Bracket, 0.9),
        ]);
        let counts = set.counts_by_source();
        assert!(counts.contains(&(Source::Bracket, 2)));
        assert!(counts.contains(&(Source::Tag, 1)));
        assert!(counts.contains(&(Source::Abstract, 0)));
    }
}
