//! Predicate discovery on infobox SPO triples (paper §II).
//!
//! Distant supervision: high-precision isA pairs from the bracket source
//! are aligned with `<entity, predicate, value>` triples. A predicate whose
//! values frequently coincide with known hypernyms encodes an implicit isA
//! relation (职业, 类型 …). The paper discovered **341 candidates** and
//! manually kept **12**; we rank candidates by alignment rate and keep the
//! top `k = 12` (the manual-selection stand-in, documented in DESIGN.md),
//! then extract isA relations from the selected predicates' triples.

use crate::candidate::Candidate;
use cnp_encyclopedia::Page;
use cnp_runtime::Runtime;
use cnp_taxonomy::Source;
use std::collections::{HashMap, HashSet};

/// Default confidence for infobox-derived candidates.
pub const INFOBOX_CONFIDENCE: f32 = 0.85;

/// One discovered predicate with its alignment statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateStats {
    /// Predicate name.
    pub predicate: String,
    /// Triples of this predicate whose value matched a bracket hypernym.
    pub aligned: usize,
    /// Total triples of this predicate.
    pub total: usize,
}

impl PredicateStats {
    /// Alignment rate (the selection score).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.aligned as f64 / self.total as f64
        }
    }
}

/// Outcome of predicate discovery.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// Every predicate with ≥ 1 alignment (paper: 341 candidates).
    pub candidates: Vec<PredicateStats>,
    /// The selected isA-bearing predicates (paper: 12, manually chosen).
    pub selected: Vec<String>,
}

/// Discovers isA-bearing predicates by aligning bracket pairs with triples.
///
/// `bracket_pairs` maps entity keys to their bracket-derived hypernyms.
/// Alignment counting runs in parallel page chunks; the per-chunk counts
/// are additive, so the merged statistics are thread-count-independent.
pub fn discover_predicates(
    pages: &[Page],
    bracket_pairs: &HashMap<String, HashSet<String>>,
    top_k: usize,
    min_support: usize,
    rt: &Runtime,
) -> DiscoveryResult {
    let stats: HashMap<&str, (usize, usize)> = rt
        .par_map_reduce(
            pages,
            |_, chunk| {
                let mut stats: HashMap<&str, (usize, usize)> = HashMap::new();
                for page in chunk {
                    let key = page.key();
                    let known = bracket_pairs.get(&key);
                    for t in &page.infobox {
                        let entry = stats.entry(t.predicate.as_str()).or_insert((0, 0));
                        entry.1 += 1;
                        if let Some(known) = known {
                            if known.contains(&t.value) {
                                entry.0 += 1;
                            }
                        }
                    }
                }
                stats
            },
            |mut acc, part| {
                for (p, (aligned, total)) in part {
                    let entry = acc.entry(p).or_insert((0, 0));
                    entry.0 += aligned;
                    entry.1 += total;
                }
                acc
            },
        )
        .unwrap_or_default();
    // cnp-lint: allow(determinism-contract) reason="the full sort below (rate, aligned, predicate tie-break) is a total order, so map iteration order washes out"
    let mut candidates: Vec<PredicateStats> = stats
        .into_iter()
        .filter(|(_, (aligned, _))| *aligned >= 1)
        .map(|(p, (aligned, total))| PredicateStats {
            predicate: p.to_string(),
            aligned,
            total,
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.rate()
            .partial_cmp(&a.rate())
            .unwrap()
            .then_with(|| b.aligned.cmp(&a.aligned))
            .then_with(|| a.predicate.cmp(&b.predicate))
    });
    let selected = candidates
        .iter()
        .filter(|c| c.total >= min_support)
        .take(top_k)
        .map(|c| c.predicate.clone())
        .collect();
    DiscoveryResult {
        candidates,
        selected,
    }
}

/// Extracts isA candidates from the selected predicates' triples, in
/// parallel page chunks concatenated in page order.
///
/// Values that cannot be class names (digits, over-long literals,
/// punctuation) are dropped at extraction time.
pub fn extract(pages: &[Page], selected: &[String], rt: &Runtime) -> Vec<Candidate> {
    let wanted: HashSet<&str> = selected.iter().map(String::as_str).collect();
    let parts = rt.par_chunks_indexed(pages, |base, chunk| {
        let mut out = Vec::new();
        for (off, page) in chunk.iter().enumerate() {
            for t in &page.infobox {
                if !wanted.contains(t.predicate.as_str()) {
                    continue;
                }
                if !plausible_class_value(&t.value) || t.value == page.name {
                    continue;
                }
                out.push(Candidate::new(
                    base + off,
                    page.key(),
                    page.name.clone(),
                    page.bracket_str(),
                    t.value.clone(),
                    Source::Infobox,
                    INFOBOX_CONFIDENCE,
                ));
            }
        }
        out
    });
    parts.into_iter().flatten().collect()
}

/// A value can name a class when it is short, purely Han, digit-free text.
fn plausible_class_value(v: &str) -> bool {
    let n = v.chars().count();
    (2..=8).contains(&n) && v.chars().all(cnp_text::chars::is_han)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::InfoboxTriple;

    fn page(name: &str, triples: Vec<(&str, &str)>) -> Page {
        Page {
            name: name.into(),
            infobox: triples
                .into_iter()
                .map(|(p, v)| InfoboxTriple::new(p, v))
                .collect(),
            ..Default::default()
        }
    }

    fn bracket_pairs(pairs: &[(&str, &str)]) -> HashMap<String, HashSet<String>> {
        let mut m: HashMap<String, HashSet<String>> = HashMap::new();
        for (e, h) in pairs {
            m.entry((*e).to_string())
                .or_default()
                .insert((*h).to_string());
        }
        m
    }

    #[test]
    fn discovery_ranks_isa_predicates_first() {
        let pages = vec![
            page("甲", vec![("职业", "歌手"), ("出生地", "临江市")]),
            page("乙", vec![("职业", "演员"), ("相关奖项", "演员")]),
            page("丙", vec![("职业", "作家"), ("出生地", "云梦县")]),
        ];
        let known = bracket_pairs(&[("甲", "歌手"), ("乙", "演员"), ("丙", "作家")]);
        let result = discover_predicates(&pages, &known, 1, 2, &Runtime::new(2));
        // 职业 aligns 3/3; 相关奖项 aligns 1/1 but lacks support.
        assert_eq!(result.selected, vec!["职业"]);
        assert!(result.candidates.iter().any(|c| c.predicate == "相关奖项"));
        let occupation = result
            .candidates
            .iter()
            .find(|c| c.predicate == "职业")
            .unwrap();
        assert_eq!(occupation.aligned, 3);
        assert_eq!(occupation.total, 3);
        assert!((occupation.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unaligned_predicates_are_not_candidates() {
        let pages = vec![page("甲", vec![("职业", "歌手"), ("身高", "180cm")])];
        let known = bracket_pairs(&[("甲", "歌手")]);
        let result = discover_predicates(&pages, &known, 12, 1, &Runtime::serial());
        assert!(result.candidates.iter().all(|c| c.predicate != "身高"));
    }

    #[test]
    fn extraction_uses_only_selected_predicates() {
        let pages = vec![page(
            "甲",
            vec![("职业", "歌手"), ("出生地", "临江市"), ("职业", "演员")],
        )];
        let cands = extract(&pages, &["职业".to_string()], &Runtime::new(2));
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.source == Source::Infobox));
        assert!(cands.iter().any(|c| c.hypernym == "歌手"));
        assert!(cands.iter().any(|c| c.hypernym == "演员"));
    }

    #[test]
    fn implausible_values_are_dropped() {
        let pages = vec![page(
            "甲",
            vec![("职业", "180cm"), ("职业", "歌"), ("职业", "自由撰稿人")],
        )];
        let cands = extract(&pages, &["职业".to_string()], &Runtime::new(2));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].hypernym, "自由撰稿人");
    }

    #[test]
    fn self_values_are_dropped() {
        let pages = vec![page("演员", vec![("职业", "演员")])];
        let cands = extract(&pages, &["职业".to_string()], &Runtime::new(2));
        assert!(cands.is_empty());
    }
}
