//! Neural generation from abstracts (paper §II).
//!
//! Distant supervision: every entity whose bracket yielded a high-precision
//! hypernym contributes a training pair (segmented abstract → hypernym).
//! A CopyNet encoder-decoder is trained on those pairs and then generates
//! hypernyms for pages — crucially also for pages *without* a bracket,
//! which is where this source adds coverage. The copy mechanism handles
//! hypernyms that are out-of-vocabulary but present in the abstract (the
//! paper's stated reason for choosing CopyNet over a plain seq2seq).

use crate::candidate::Candidate;
use cnp_encyclopedia::Page;
use cnp_nn::copynet::{CopyNet, CopyNetConfig, CopySample};
use cnp_nn::vocab::Vocab;
use cnp_runtime::Runtime;
use cnp_taxonomy::Source;
use cnp_text::segment::Segmenter;
use std::collections::{HashMap, HashSet};

/// Default confidence for abstract-derived candidates.
pub const ABSTRACT_CONFIDENCE: f32 = 0.75;

/// Configuration of the neural-generation stage.
#[derive(Debug, Clone)]
pub struct NeuralConfig {
    /// Training epochs over the distant-supervision set.
    pub epochs: usize,
    /// Model hyperparameters.
    pub model: CopyNetConfig,
    /// Cap on distant-supervision samples (keeps training time bounded).
    pub max_samples: usize,
    /// Vocabulary cap.
    pub max_vocab: usize,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        NeuralConfig {
            epochs: 8,
            model: CopyNetConfig::default(),
            max_samples: 4_000,
            max_vocab: 4_000,
        }
    }
}

impl NeuralConfig {
    /// A fast preset for tests and doctests.
    pub fn fast() -> Self {
        NeuralConfig {
            epochs: 3,
            model: CopyNetConfig {
                embed_dim: 16,
                hidden_dim: 24,
                max_src_len: 16,
                max_tgt_len: 2,
                lr: 0.02,
                batch_size: 8,
                seed: 17,
            },
            max_samples: 600,
            max_vocab: 1_500,
        }
    }
}

/// Builds the distant-supervision dataset: (segmented abstract → bracket
/// hypernym) for every page with bracket-derived pairs.
pub fn build_dataset(
    pages: &[Page],
    seg: &Segmenter,
    bracket_pairs: &HashMap<String, HashSet<String>>,
    max_samples: usize,
) -> Vec<CopySample> {
    let mut samples = Vec::new();
    for page in pages {
        if samples.len() >= max_samples {
            break;
        }
        if page.abstract_text.is_empty() {
            continue;
        }
        let Some(hypernyms) = bracket_pairs.get(&page.key()) else {
            continue;
        };
        let src = seg.words(&page.abstract_text);
        if src.is_empty() {
            continue;
        }
        // The most general bracket hypernym (usually a single word after
        // segmentation) is the cleanest target. Ties break lexicographically
        // so the choice never depends on set iteration order.
        if let Some(h) = hypernyms
            .iter()
            .min_by_key(|h| (h.chars().count(), h.as_str()))
        {
            let tgt = seg.words(h);
            if !tgt.is_empty() && tgt.len() <= 2 {
                samples.push(CopySample { src, tgt });
            }
        }
    }
    samples
}

/// Trains the CopyNet on the distant-supervision set; returns the model
/// and the per-epoch losses.
pub fn train(samples: &[CopySample], cfg: &NeuralConfig) -> (CopyNet, Vec<f32>) {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for s in samples {
        for t in s.src.iter().chain(s.tgt.iter()) {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
    }
    let vocab = Vocab::build(counts, cfg.max_vocab);
    let mut model = CopyNet::new(vocab, cfg.model.clone());
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        losses.push(model.train_epoch(samples));
    }
    (model, losses)
}

/// Generates hypernym candidates for every page from its abstract.
///
/// Per-page inference (segmentation + greedy decoding) is embarrassingly
/// parallel and runs in page chunks on the shared runtime; training stays
/// serial because minibatch SGD is order-sensitive. Chunk results
/// concatenate in page order.
pub fn extract(pages: &[Page], seg: &Segmenter, model: &CopyNet, rt: &Runtime) -> Vec<Candidate> {
    let parts = rt.par_chunks_indexed(pages, |base, chunk| {
        let mut out = Vec::new();
        for (off, page) in chunk.iter().enumerate() {
            if page.abstract_text.is_empty() {
                continue;
            }
            let src = seg.words(&page.abstract_text);
            if src.is_empty() {
                continue;
            }
            let generated = model.generate(&src);
            let hypernym: String = generated.concat();
            if hypernym.chars().count() < 2 || hypernym == page.name {
                continue;
            }
            if !hypernym.chars().all(cnp_text::chars::is_han) {
                continue;
            }
            out.push(Candidate::new(
                base + off,
                page.key(),
                page.name.clone(),
                page.bracket_str(),
                hypernym,
                Source::Abstract,
                ABSTRACT_CONFIDENCE,
            ));
        }
        out
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_text::dict::Dictionary;
    use cnp_text::pos::PosTag;

    fn seg() -> Segmenter {
        let mut d = Dictionary::base();
        for (w, f) in [("演员", 500), ("歌手", 500), ("作家", 400), ("出生", 300)] {
            d.add_word(w, f, PosTag::Noun);
        }
        Segmenter::new(d)
    }

    fn pages() -> Vec<Page> {
        let mk = |name: &str, concept: &str| Page {
            name: name.into(),
            bracket: Some(concept.into()),
            abstract_text: format!("{name}，1980年出生，著名{concept}。"),
            ..Default::default()
        };
        vec![
            mk("王伟", "演员"),
            mk("李娜", "歌手"),
            mk("张磊", "作家"),
            mk("刘洋", "演员"),
            mk("陈静", "歌手"),
            mk("杨丽", "作家"),
        ]
    }

    fn pairs(pages: &[Page]) -> HashMap<String, HashSet<String>> {
        pages
            .iter()
            .map(|p| {
                let mut s = HashSet::new();
                s.insert(p.bracket.clone().unwrap());
                (p.key(), s)
            })
            .collect()
    }

    #[test]
    fn dataset_pairs_abstract_with_bracket_hypernym() {
        let pages = pages();
        let seg = seg();
        let samples = build_dataset(&pages, &seg, &pairs(&pages), 100);
        assert_eq!(samples.len(), 6);
        assert_eq!(samples[0].tgt, vec!["演员"]);
        assert!(samples[0].src.concat().contains("出生"));
    }

    #[test]
    fn dataset_respects_sample_cap() {
        let pages = pages();
        let seg = seg();
        let samples = build_dataset(&pages, &seg, &pairs(&pages), 2);
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn end_to_end_learns_template_corpus() {
        let pages = pages();
        let seg = seg();
        let samples = build_dataset(&pages, &seg, &pairs(&pages), 100);
        let mut cfg = NeuralConfig::fast();
        cfg.epochs = 40;
        let (model, losses) = train(&samples, &cfg);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "training did not converge: {losses:?}"
        );
        let cands = extract(&pages, &seg, &model, &Runtime::new(2));
        // The model should recover the concept for most template pages.
        let correct = cands
            .iter()
            .filter(|c| {
                let page = &pages[c.page];
                page.bracket.as_deref() == Some(c.hypernym.as_str())
            })
            .count();
        assert!(
            correct >= 4,
            "only {correct}/6 abstracts produced the right concept: {cands:?}"
        );
    }

    #[test]
    fn extract_skips_empty_and_self_hypernyms() {
        let seg = seg();
        let samples = vec![CopySample {
            src: vec!["著名".into(), "演员".into()],
            tgt: vec!["演员".into()],
        }];
        let (model, _) = train(&samples, &NeuralConfig::fast());
        let page = Page {
            name: "演员".into(),
            abstract_text: "著名演员。".into(),
            ..Default::default()
        };
        let cands = extract(&[page], &seg, &model, &Runtime::serial());
        // Whatever the model outputs, it must never propose the page name.
        assert!(cands.iter().all(|c| c.hypernym != "演员"));
    }
}
