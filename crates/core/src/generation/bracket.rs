//! The separation algorithm (paper §II, Figure 3).
//!
//! Input: a disambiguated entity `e(x)` where `x` is the bracket noun
//! compound. The compound is word-segmented, then adjacent words are
//! merged bottom-up into a binary tree guided by PMI comparisons over a
//! sliding three-element window (Steps 1–4 of the paper). The hypernyms
//! are the nodes hanging off the tree's rightmost path: for
//! 蚂蚁金服首席战略官 → tree ((蚂蚁⊕金服)(首席⊕战略官)) → hypernyms
//! {首席战略官, 战略官}.
//!
//! Consecutive rightmost-path hypernyms also yield subconcept pairs
//! (首席战略官 isA 战略官), the main supply of CN-Probase's
//! subconcept–concept relations.
//!
//! The paper is silent on termination when the window rules make no merge
//! in a full pass (possible with adversarial PMI landscapes); we then merge
//! the adjacent pair with maximum PMI, which preserves the algorithm's
//! greedy character.

use cnp_text::pmi::PmiModel;
use cnp_text::segment::Segmenter;

/// A node of the separation binary tree.
#[derive(Debug, Clone, PartialEq)]
pub enum SepNode {
    /// A single segmented word.
    Leaf(String),
    /// A merge of two adjacent constituents.
    Branch(Box<SepNode>, Box<SepNode>),
}

impl SepNode {
    /// Concatenated surface string of the subtree.
    pub fn text(&self) -> String {
        match self {
            SepNode::Leaf(w) => w.clone(),
            SepNode::Branch(l, r) => format!("{}{}", l.text(), r.text()),
        }
    }

    /// First (leftmost) word of the subtree — used for boundary PMI.
    fn first_word(&self) -> &str {
        match self {
            SepNode::Leaf(w) => w,
            SepNode::Branch(l, _) => l.first_word(),
        }
    }

    /// Last (rightmost) word of the subtree.
    fn last_word(&self) -> &str {
        match self {
            SepNode::Leaf(w) => w,
            SepNode::Branch(_, r) => r.last_word(),
        }
    }
}

/// Result of running the separation algorithm on one bracket part.
#[derive(Debug, Clone)]
pub struct SeparationResult {
    /// The binary tree over the segmented words.
    pub tree: SepNode,
    /// Hypernyms: rightmost-path node strings below the root, specific →
    /// general (首席战略官, 战略官).
    pub hypernyms: Vec<String>,
}

/// The separation algorithm over a segmenter and PMI model.
#[derive(Debug)]
pub struct SeparationAlgorithm<'a> {
    seg: &'a Segmenter,
    pmi: &'a PmiModel,
}

impl<'a> SeparationAlgorithm<'a> {
    /// Creates the algorithm over shared corpus statistics.
    pub fn new(seg: &'a Segmenter, pmi: &'a PmiModel) -> Self {
        SeparationAlgorithm { seg, pmi }
    }

    /// Boundary PMI between adjacent constituents: last word of `a` vs
    /// first word of `b`.
    fn node_pmi(&self, a: &SepNode, b: &SepNode) -> f64 {
        self.pmi.pmi(a.last_word(), b.first_word())
    }

    /// Runs the algorithm on one noun compound (no 、 splitting).
    pub fn separate_compound(&self, compound: &str) -> Option<SeparationResult> {
        let words = self.seg.words(compound);
        if words.is_empty() {
            return None;
        }
        let mut nodes: Vec<SepNode> = words.into_iter().map(SepNode::Leaf).collect();

        while nodes.len() > 1 {
            let merge_at = self.pick_merge(&nodes);
            let right = nodes.remove(merge_at + 1);
            let left = std::mem::replace(&mut nodes[merge_at], SepNode::Leaf(String::new()));
            nodes[merge_at] = SepNode::Branch(Box::new(left), Box::new(right));
        }
        let tree = nodes.pop().expect("non-empty");

        // Hypernyms: walk the rightmost path, collecting each right child's
        // full string (specific → general).
        let mut hypernyms = Vec::new();
        let mut cur = &tree;
        while let SepNode::Branch(_, r) = cur {
            hypernyms.push(r.text());
            cur = r;
        }
        if hypernyms.is_empty() {
            // Single-word compound: the word itself is the hypernym.
            hypernyms.push(tree.text());
        }
        hypernyms.retain(|h| h.chars().count() >= 2);
        if hypernyms.is_empty() {
            return None;
        }
        Some(SeparationResult { tree, hypernyms })
    }

    /// Picks the next pair to merge with the paper's sliding-window Steps
    /// 1–4, falling back to the max-PMI adjacent pair.
    fn pick_merge(&self, nodes: &[SepNode]) -> usize {
        let n = nodes.len();
        if n == 2 {
            return 0;
        }
        // Slide the window (i−1, i, i+1) from the right (Step 1–3).
        let mut i = n - 2; // middle element index
        loop {
            let left_pmi = self.node_pmi(&nodes[i - 1], &nodes[i]);
            let right_pmi = self.node_pmi(&nodes[i], &nodes[i + 1]);
            if left_pmi < right_pmi {
                // Step 2: merge (x_i ⊕ x_{i+1}).
                return i;
            }
            if i == 1 {
                // Step 4: window reached the leftmost element.
                if left_pmi > right_pmi {
                    return 0; // merge (x_1 ⊕ x_2)
                }
                break;
            }
            // Step 3: move the window left.
            i -= 1;
        }
        // Fallback: merge the adjacent pair with maximum PMI.
        let mut best = 0usize;
        let mut best_pmi = f64::NEG_INFINITY;
        for j in 0..n - 1 {
            let p = self.node_pmi(&nodes[j], &nodes[j + 1]);
            if p > best_pmi {
                best_pmi = p;
                best = j;
            }
        }
        best
    }

    /// Runs the algorithm on a full bracket: 、/，-separated parts are
    /// separate compounds (刘德华's bracket in Fig. 1 lists three).
    pub fn separate(&self, bracket: &str) -> Vec<SeparationResult> {
        bracket
            .split(['、', '，', ','])
            .filter(|part| !part.trim().is_empty())
            .filter_map(|part| self.separate_compound(part.trim()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_text::dict::Dictionary;
    use cnp_text::ngram::NgramCounter;
    use cnp_text::pos::PosTag;

    /// Corpus statistics mimicking Fig. 3: 蚂蚁金服 is a strong collocation,
    /// 首席战略官 a medium one, and 金服→首席 never co-occurs elsewhere.
    fn fixture() -> (Segmenter, PmiModel) {
        let mut dict = Dictionary::base();
        for (w, f) in [
            ("蚂蚁", 300),
            ("金服", 200),
            ("战略官", 150),
            ("男演员", 400),
            ("演员", 600),
            ("歌手", 500),
        ] {
            dict.add_word(w, f, PosTag::Noun);
        }
        let mut counts = NgramCounter::new();
        for _ in 0..30 {
            counts.observe(&["蚂蚁", "金服"]);
        }
        for _ in 0..8 {
            counts.observe(&["首席", "战略官"]);
        }
        for _ in 0..2 {
            counts.observe(&["金服", "首席"]);
        }
        for _ in 0..25 {
            counts.observe(&["中国", "香港"]);
        }
        for _ in 0..3 {
            counts.observe(&["香港", "男演员"]);
        }
        for _ in 0..4 {
            counts.observe(&["香港", "歌手"]);
        }
        // Concept words occur standalone throughout the corpus (tags,
        // abstracts), which keeps their unigram probability realistic —
        // without this, PMI's rare-word bias would glue 香港+男演员.
        for _ in 0..30 {
            counts.observe(&["男演员"]);
            counts.observe(&["歌手"]);
        }
        (Segmenter::new(dict), PmiModel::new(counts))
    }

    #[test]
    fn figure3_example_produces_expected_tree_and_hypernyms() {
        let (seg, pmi) = fixture();
        let alg = SeparationAlgorithm::new(&seg, &pmi);
        let result = alg.separate_compound("蚂蚁金服首席战略官").unwrap();
        // Tree: ((蚂蚁⊕金服) ⊕ (首席⊕战略官))
        assert_eq!(
            result.tree,
            SepNode::Branch(
                Box::new(SepNode::Branch(
                    Box::new(SepNode::Leaf("蚂蚁".into())),
                    Box::new(SepNode::Leaf("金服".into())),
                )),
                Box::new(SepNode::Branch(
                    Box::new(SepNode::Leaf("首席".into())),
                    Box::new(SepNode::Leaf("战略官".into())),
                )),
            )
        );
        assert_eq!(result.hypernyms, vec!["首席战略官", "战略官"]);
    }

    #[test]
    fn modifier_compound_yields_head_concept() {
        let (seg, pmi) = fixture();
        let alg = SeparationAlgorithm::new(&seg, &pmi);
        let result = alg.separate_compound("中国香港男演员").unwrap();
        assert_eq!(result.hypernyms, vec!["男演员"]);
    }

    #[test]
    fn single_word_compound_is_its_own_hypernym() {
        let (seg, pmi) = fixture();
        let alg = SeparationAlgorithm::new(&seg, &pmi);
        let result = alg.separate_compound("演员").unwrap();
        assert_eq!(result.hypernyms, vec!["演员"]);
    }

    #[test]
    fn multi_part_bracket_processes_each_part() {
        let (seg, pmi) = fixture();
        let alg = SeparationAlgorithm::new(&seg, &pmi);
        let results = alg.separate("中国香港男演员、歌手");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].hypernyms, vec!["男演员"]);
        assert_eq!(results[1].hypernyms, vec!["歌手"]);
    }

    #[test]
    fn empty_and_punct_brackets_yield_nothing() {
        let (seg, pmi) = fixture();
        let alg = SeparationAlgorithm::new(&seg, &pmi);
        assert!(alg.separate("").is_empty());
        assert!(alg.separate("、、").is_empty());
    }

    #[test]
    fn tree_text_reconstructs_input() {
        let (seg, pmi) = fixture();
        let alg = SeparationAlgorithm::new(&seg, &pmi);
        for compound in ["蚂蚁金服首席战略官", "中国香港男演员", "香港歌手"] {
            let r = alg.separate_compound(compound).unwrap();
            assert_eq!(r.tree.text(), compound);
        }
    }

    #[test]
    fn hypernyms_are_suffixes_of_the_compound() {
        let (seg, pmi) = fixture();
        let alg = SeparationAlgorithm::new(&seg, &pmi);
        let r = alg.separate_compound("蚂蚁金服首席战略官").unwrap();
        for h in &r.hypernyms {
            assert!(
                "蚂蚁金服首席战略官".ends_with(h.as_str()),
                "{h} is not a suffix"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Compounds assembled from known dictionary words.
        fn compound_strategy() -> impl Strategy<Value = String> {
            let pool = [
                "蚂蚁",
                "金服",
                "首席",
                "战略官",
                "中国",
                "香港",
                "男演员",
                "歌手",
                "演员",
            ];
            proptest::collection::vec(0usize..pool.len(), 1..5)
                .prop_map(move |idx| idx.into_iter().map(|i| pool[i]).collect::<String>())
        }

        proptest! {
            /// The binary tree always reconstructs the compound exactly, and
            /// every hypernym is a non-empty suffix of it.
            #[test]
            fn tree_partitions_and_hypernyms_are_suffixes(compound in compound_strategy()) {
                let (seg, pmi) = fixture();
                let alg = SeparationAlgorithm::new(&seg, &pmi);
                if let Some(r) = alg.separate_compound(&compound) {
                    prop_assert_eq!(r.tree.text(), compound.clone());
                    prop_assert!(!r.hypernyms.is_empty());
                    for h in &r.hypernyms {
                        prop_assert!(compound.ends_with(h.as_str()), "{} !suffix of {}", h, compound);
                        prop_assert!(h.chars().count() >= 2);
                    }
                    // Hypernyms are ordered specific -> general (shrinking).
                    for w in r.hypernyms.windows(2) {
                        prop_assert!(w[0].len() > w[1].len());
                        prop_assert!(w[0].ends_with(w[1].as_str()));
                    }
                }
            }

            /// Multi-part brackets yield exactly one result per non-empty part.
            #[test]
            fn parts_are_independent(a in compound_strategy(), b in compound_strategy()) {
                let (seg, pmi) = fixture();
                let alg = SeparationAlgorithm::new(&seg, &pmi);
                let joined = format!("{a}、{b}");
                let results = alg.separate(&joined);
                let singles =
                    alg.separate_compound(&a).into_iter().count()
                    + alg.separate_compound(&b).into_iter().count();
                prop_assert_eq!(results.len(), singles);
            }
        }
    }
}
