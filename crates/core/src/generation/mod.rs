//! The generation module (paper §II): four extraction algorithms, one per
//! encyclopedia source, plus candidate merging.
//!
//! | Source   | Algorithm            | Module          |
//! |----------|----------------------|-----------------|
//! | bracket  | separation algorithm | [`bracket`]     |
//! | abstract | neural generation    | [`abstract_gen`]|
//! | infobox  | predicate discovery  | [`infobox`]     |
//! | tag      | direct extraction    | [`tag`]         |

pub mod abstract_gen;
pub mod bracket;
pub mod infobox;
pub mod tag;

use crate::candidate::Candidate;
use crate::context::PipelineContext;
use cnp_encyclopedia::Page;
use cnp_runtime::Runtime;
use cnp_taxonomy::Source;
use std::collections::{HashMap, HashSet};

/// Default confidence for bracket-derived candidates (the paper measures
/// 96.2% precision for this source).
pub const BRACKET_CONFIDENCE: f32 = 0.96;

/// Runs the separation algorithm over all pages (in parallel on the shared
/// runtime) and returns the candidates plus the subconcept pairs implied by
/// rightmost-path chains (首席战略官 → 战略官). Chunk results concatenate
/// in page order, so the output is identical at every thread count.
pub fn extract_bracket(
    pages: &[Page],
    ctx: &PipelineContext,
    rt: &Runtime,
) -> (Vec<Candidate>, Vec<(String, String)>) {
    let parts = rt.par_chunks_indexed(pages, |base, page_chunk| {
        let alg = bracket::SeparationAlgorithm::new(&ctx.segmenter, &ctx.pmi);
        let mut cands = Vec::new();
        let mut pairs = Vec::new();
        for (off, page) in page_chunk.iter().enumerate() {
            let Some(br) = &page.bracket else { continue };
            for result in alg.separate(br) {
                for h in &result.hypernyms {
                    cands.push(Candidate::new(
                        base + off,
                        page.key(),
                        page.name.clone(),
                        page.bracket_str(),
                        h.clone(),
                        Source::Bracket,
                        BRACKET_CONFIDENCE,
                    ));
                }
                for w in result.hypernyms.windows(2) {
                    pairs.push((w[0].clone(), w[1].clone()));
                }
            }
        }
        (cands, pairs)
    });
    let mut candidates = Vec::new();
    let mut chains: Vec<(String, String)> = Vec::new();
    for (cands, pairs) in parts {
        candidates.extend(cands);
        chains.extend(pairs);
    }
    (candidates, chains)
}

/// Groups bracket candidates per entity key — the high-precision prior for
/// distant supervision (infobox alignment, abstract dataset).
pub fn bracket_pairs_by_entity(candidates: &[Candidate]) -> HashMap<String, HashSet<String>> {
    let mut map: HashMap<String, HashSet<String>> = HashMap::new();
    for c in candidates {
        if c.source == Source::Bracket {
            map.entry(c.entity_key.clone())
                .or_default()
                .insert(c.hypernym.clone());
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    #[test]
    fn bracket_extraction_produces_mostly_gold_pairs() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(31)).generate();
        let ctx = PipelineContext::build(&corpus, 2);
        let (cands, chains) = extract_bracket(&corpus.pages, &ctx, &Runtime::new(2));
        assert!(!cands.is_empty());
        let correct = cands
            .iter()
            .filter(|c| {
                corpus
                    .gold
                    .is_correct_entity_isa(&c.entity_key, &c.hypernym)
            })
            .count();
        let precision = correct as f64 / cands.len() as f64;
        assert!(
            precision > 0.85,
            "bracket precision {precision:.3} too low ({correct}/{})",
            cands.len()
        );
        // 首席X chains appear when business brackets are present.
        for (sub, sup) in &chains {
            assert!(sub.ends_with(sup.as_str()), "{sub} !endswith {sup}");
        }
    }

    #[test]
    fn parallel_and_serial_extraction_agree() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(32)).generate();
        let ctx = PipelineContext::build(&corpus, 2);
        let (a, chains_a) = extract_bracket(&corpus.pages, &ctx, &Runtime::serial());
        let (b, chains_b) = extract_bracket(&corpus.pages, &ctx, &Runtime::new(4));
        // Chunk results concatenate in page order: not merely the same
        // set, the same sequence.
        assert_eq!(a, b);
        assert_eq!(chains_a, chains_b);
    }

    #[test]
    fn bracket_pairs_index_groups_by_entity() {
        let cands = vec![
            Candidate::new(0, "甲", "甲", "", "演员", Source::Bracket, 0.9),
            Candidate::new(0, "甲", "甲", "", "歌手", Source::Bracket, 0.9),
            Candidate::new(1, "乙", "乙", "", "作家", Source::Tag, 0.9),
        ];
        let map = bracket_pairs_by_entity(&cands);
        assert_eq!(map["甲"].len(), 2);
        assert!(
            !map.contains_key("乙"),
            "tag candidates must not seed the prior"
        );
    }
}
