//! Direct extraction from tags (paper §II).
//!
//! “A majority of tags are the hypernyms of the entities. We directly
//! regard the tags as the hypernyms of an entity.” All cleaning is left to
//! the verification module, exactly as in the paper.

use crate::candidate::Candidate;
use cnp_encyclopedia::Page;
use cnp_runtime::Runtime;
use cnp_taxonomy::Source;

/// Default confidence for tag-derived candidates.
pub const TAG_CONFIDENCE: f32 = 0.90;

/// Extracts tag candidates from one page.
pub fn extract_page(page_idx: usize, page: &Page) -> Vec<Candidate> {
    page.tags
        .iter()
        .filter(|t| !t.is_empty() && t.as_str() != page.name)
        .map(|t| {
            Candidate::new(
                page_idx,
                page.key(),
                page.name.clone(),
                page.bracket_str(),
                t.clone(),
                Source::Tag,
                TAG_CONFIDENCE,
            )
        })
        .collect()
}

/// Extracts tag candidates from all pages, in parallel page chunks
/// concatenated in page order.
pub fn extract(pages: &[Page], rt: &Runtime) -> Vec<Candidate> {
    rt.par_chunks_indexed(pages, |base, chunk| {
        chunk
            .iter()
            .enumerate()
            .flat_map(|(off, p)| extract_page(base + off, p))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_every_tag() {
        let page = Page {
            name: "刘德华".into(),
            bracket: Some("男演员".into()),
            tags: vec!["人物".into(), "演员".into(), "音乐".into()],
            ..Default::default()
        };
        let cands = extract_page(0, &page);
        assert_eq!(cands.len(), 3);
        assert!(cands.iter().all(|c| c.source == Source::Tag));
        assert!(cands.iter().all(|c| c.entity_key == "刘德华（男演员）"));
        // Noise (音乐) is NOT filtered here — that's verification's job.
        assert!(cands.iter().any(|c| c.hypernym == "音乐"));
    }

    #[test]
    fn self_tags_are_skipped() {
        let page = Page {
            name: "演员".into(),
            tags: vec!["演员".into(), "娱乐人物".into()],
            ..Default::default()
        };
        let cands = extract_page(0, &page);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].hypernym, "娱乐人物");
    }

    #[test]
    fn extract_covers_all_pages() {
        let pages = vec![
            Page {
                name: "甲".into(),
                tags: vec!["人物".into()],
                ..Default::default()
            },
            Page {
                name: "乙".into(),
                tags: vec!["作品".into(), "电影".into()],
                ..Default::default()
            },
        ];
        let cands = extract(&pages, &Runtime::new(2));
        assert_eq!(cands.len(), 3);
        assert_eq!(cands[0].page, 0);
        assert_eq!(cands[2].page, 1);
    }
}
