#![forbid(unsafe_code)]
//! # cnp-core — the CN-Probase construction framework
//!
//! This crate is the paper's primary contribution (Chen et al., ICDE
//! 2019): a *generation and verification* framework that builds a
//! large-scale Chinese taxonomy from the four sources of an encyclopedia
//! page — bracket, abstract, infobox and tag (Figure 2).
//!
//! * [`context`] — corpus-wide statistics shared by all stages.
//! * [`generation`] — the four extraction algorithms: separation algorithm
//!   (bracket, Fig. 3), CopyNet neural generation (abstract), predicate
//!   discovery (infobox), direct extraction (tag).
//! * [`verification`] — the three filters: incompatible concepts (KL,
//!   Eq. 1), NER support (noisy-or, Eq. 2), syntax rules.
//! * [`pipeline`] — end-to-end orchestration producing a
//!   [`cnp_taxonomy::TaxonomyStore`].
//! * [`report`] — per-stage counters and timings (the Figure 2 dataflow).
//!
//! ```
//! use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};
//! use cnp_core::{Pipeline, PipelineConfig};
//!
//! let corpus = CorpusGenerator::new(CorpusConfig::tiny(7)).generate();
//! let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
//! assert!(outcome.taxonomy.num_is_a() > 0);
//! println!("{}", outcome.report);
//! ```

pub mod candidate;
pub mod context;
pub mod generation;
pub mod pipeline;
pub mod report;
pub mod verification;

pub use candidate::{Candidate, CandidateSet};
pub use context::PipelineContext;
pub use pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
pub use report::PipelineReport;
