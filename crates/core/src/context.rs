//! Pipeline context: corpus-wide statistics every stage shares.
//!
//! Built once per corpus, in parallel over page chunks on the shared
//! [`cnp_runtime::Runtime`]: the segmenter (base dictionary + corpus
//! vocabulary + HMM trained on the corpus's own segmentations), the PMI
//! model that drives the separation algorithm, NE statistics for
//! verification strategy B, and the lexical-head analyzer for the syntax
//! rules. Per-chunk statistics are reduced in chunk order, so the built
//! context is identical at every thread count.

use cnp_encyclopedia::Corpus;
use cnp_runtime::Runtime;
use cnp_text::{
    dict::Dictionary,
    head::HeadAnalyzer,
    hmm::HmmModel,
    ner::{NeRecognizer, NeStats},
    ngram::NgramCounter,
    pmi::PmiModel,
    pos::PosTagger,
    segment::Segmenter,
};

/// Shared, read-only corpus statistics.
#[derive(Debug)]
pub struct PipelineContext {
    /// Word segmenter over base + corpus dictionary.
    pub segmenter: Segmenter,
    /// PMI model over segmented corpus text.
    pub pmi: PmiModel,
    /// NE support statistics (`s1` of Eq. 2).
    pub ne_stats: NeStats,
    /// Named-entity recognizer.
    pub ner: NeRecognizer,
    /// Lexical-head analyzer for syntax rules.
    pub head: HeadAnalyzer,
    /// POS tagger (used by baselines).
    pub pos: PosTagger,
}

/// Sentences kept for HMM training (distant supervision over our own
/// segmentations; more adds training time without adding signal).
const HMM_SENTENCE_CAP: usize = 2_000;

/// Only pages below this index contribute HMM sentences. The bound is a
/// property of the *corpus position*, not of the chunking, so the harvested
/// sentence list — and therefore the trained HMM — is identical at every
/// thread count.
const HMM_PAGE_CAP: usize = 2_000;

impl PipelineContext {
    /// Builds the context from a corpus using `threads` worker threads.
    /// The result is independent of `threads`.
    pub fn build(corpus: &Corpus, threads: usize) -> Self {
        Self::build_with(corpus, &Runtime::new(threads))
    }

    /// Builds the context on an existing [`Runtime`].
    pub fn build_with(corpus: &Corpus, rt: &Runtime) -> Self {
        // Dictionary: base vocabulary + corpus-derived words.
        let mut dict = Dictionary::base();
        for (word, freq, pos) in corpus.dictionary() {
            dict.add_word(&word, freq, pos);
        }
        let bootstrap = Segmenter::new(dict.clone());

        // Parallel pass: segment all page text, counting n-grams and NE
        // occurrences per chunk, then merge in chunk order. N-gram and NE
        // counts are additive (merge-order invariant); the HMM sentence
        // list is order-sensitive, which the in-order reduction plus the
        // page-index harvest bound keep deterministic.
        let ner_boot = NeRecognizer::new(dict.clone());
        let reduced = rt.par_map_reduce(
            &corpus.pages,
            |base, pages| {
                let mut counts = NgramCounter::new();
                let mut ne = NeStats::new();
                let mut hmm_sents: Vec<Vec<String>> = Vec::new();
                for (off, page) in pages.iter().enumerate() {
                    let harvest_hmm = base + off < HMM_PAGE_CAP;
                    let mut texts: Vec<&str> = vec![&page.abstract_text];
                    if let Some(b) = &page.bracket {
                        texts.push(b);
                    }
                    for t in &page.tags {
                        texts.push(t);
                    }
                    for text in texts {
                        let words = bootstrap.words(text);
                        for w in &words {
                            ne.observe(w, ner_boot.is_entity(w));
                        }
                        counts.observe(&words);
                        if harvest_hmm && hmm_sents.len() < HMM_SENTENCE_CAP {
                            hmm_sents.push(words.clone());
                        }
                    }
                    // Page names are NE usages by definition.
                    ne.observe(&page.name, true);
                }
                (counts, ne, hmm_sents)
            },
            |mut acc, part| {
                acc.0.merge(&part.0);
                acc.1.merge(part.1);
                acc.2.extend(part.2);
                acc
            },
        );
        let (merged_counts, merged_ne, mut sentences_for_hmm) =
            reduced.unwrap_or_else(|| (NgramCounter::new(), NeStats::new(), Vec::new()));
        sentences_for_hmm.truncate(HMM_SENTENCE_CAP);

        // HMM trained on the bootstrapped segmentations (distant
        // supervision over our own output, as jieba's model was trained on
        // segmented corpora).
        let hmm = HmmModel::train(
            sentences_for_hmm
                .iter()
                .map(|s| s.iter().map(String::as_str)),
        );
        let segmenter = Segmenter::with_hmm(dict.clone(), hmm);

        PipelineContext {
            segmenter: segmenter.clone(),
            pmi: PmiModel::new(merged_counts),
            ne_stats: merged_ne,
            ner: NeRecognizer::new(dict.clone()),
            head: HeadAnalyzer::new(segmenter),
            pos: PosTagger::new(dict),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    fn ctx() -> (Corpus, PipelineContext) {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(21)).generate();
        let ctx = PipelineContext::build(&corpus, 2);
        (corpus, ctx)
    }

    #[test]
    fn segmenter_knows_corpus_concepts() {
        let (_, ctx) = ctx();
        let words = ctx.segmenter.words("他是男演员");
        assert!(words.contains(&"男演员".to_string()), "{words:?}");
    }

    #[test]
    fn pmi_model_sees_corpus_bigrams() {
        let (_, ctx) = ctx();
        assert!(ctx.pmi.counts().total_unigrams() > 1000);
        assert!(ctx.pmi.counts().total_bigrams() > 500);
    }

    #[test]
    fn ne_stats_flag_places_not_concepts() {
        let (_, ctx) = ctx();
        // 中国 is a dictionary place name: support should be 1.
        assert!(ctx.ne_stats.support("中国") > 0.9);
        // Concepts are never NEs.
        assert!(ctx.ne_stats.support("演员") < 0.1);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(22)).generate();
        let a = PipelineContext::build(&corpus, 1);
        let b = PipelineContext::build(&corpus, 4);
        assert_eq!(
            a.pmi.counts().total_unigrams(),
            b.pmi.counts().total_unigrams()
        );
        assert_eq!(
            a.pmi.counts().total_bigrams(),
            b.pmi.counts().total_bigrams()
        );
        assert_eq!(a.ne_stats.support("中国"), b.ne_stats.support("中国"));
        // The HMM sentence harvest is order-sensitive; the page-index
        // bound keeps it (and thus segmentation of unknown text) identical
        // at every thread count.
        for text in ["李明华是著名男演员", "临江市出生的作家"] {
            assert_eq!(a.segmenter.words(text), b.segmenter.words(text), "{text}");
        }
    }
}
