//! End-to-end pipeline: the generation + verification framework of
//! Figure 2, producing a [`TaxonomyStore`].

use crate::candidate::CandidateSet;
use crate::context::PipelineContext;
use crate::generation::{self, abstract_gen, infobox, tag};
use crate::report::{time_stage, PipelineReport, Stage};
use crate::verification::{self, VerificationConfig};
use cnp_encyclopedia::Corpus;
use cnp_runtime::Runtime;
use cnp_taxonomy::{
    DeltaOverlay, FrozenTaxonomy, IsAMeta, PersistError, Source, Symbol, TaxonomyRead,
    TaxonomyStats, TaxonomyStore,
};
use std::collections::HashSet;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Worker threads for every pipeline stage (defaults to the machine's
    /// available parallelism). Output never depends on this value.
    pub threads: usize,
    /// Enable the bracket source (separation algorithm).
    pub enable_bracket: bool,
    /// Enable the abstract source (neural generation).
    pub enable_abstract: bool,
    /// Enable the infobox source (predicate discovery).
    pub enable_infobox: bool,
    /// Enable the tag source (direct extraction).
    pub enable_tag: bool,
    /// Neural-generation settings.
    pub neural: abstract_gen::NeuralConfig,
    /// Predicates kept by the selection step (paper: 12).
    pub predicate_top_k: usize,
    /// Minimum triple support for a selectable predicate.
    pub predicate_min_support: usize,
    /// Verification strategies.
    pub verification: VerificationConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            threads: cnp_runtime::default_threads(),
            enable_bracket: true,
            enable_abstract: true,
            enable_infobox: true,
            enable_tag: true,
            neural: abstract_gen::NeuralConfig::default(),
            predicate_top_k: 12,
            predicate_min_support: 5,
            verification: VerificationConfig::all(),
        }
    }
}

impl PipelineConfig {
    /// Fast preset for tests/doctests: small CopyNet, two threads.
    pub fn fast() -> Self {
        PipelineConfig {
            threads: 2,
            neural: abstract_gen::NeuralConfig::fast(),
            ..Default::default()
        }
    }

    /// All sources, no verification — the ablation baseline.
    pub fn unverified() -> Self {
        PipelineConfig {
            verification: VerificationConfig::none(),
            ..Self::fast()
        }
    }
}

/// Pipeline outcome: the taxonomy plus everything needed for evaluation.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The constructed taxonomy.
    pub taxonomy: TaxonomyStore,
    /// Construction statistics (Figure 2 counters).
    pub report: PipelineReport,
    /// The verified candidates the taxonomy was built from.
    pub candidates: CandidateSet,
    /// Bracket rightmost-path chains `(sub, sup)` that assembly turned into
    /// subconcept→concept edges; incremental updates replay them too.
    pub chains: Vec<(String, String)>,
    /// Worker threads the producing run used ([`PipelineConfig::threads`]);
    /// [`PipelineOutcome::freeze`] reuses the same budget.
    pub threads: usize,
}

impl PipelineOutcome {
    /// Freezes the constructed taxonomy into the read-optimized serving
    /// snapshot ([`FrozenTaxonomy`]), on the same thread budget the
    /// pipeline ran with — a `threads = 1` run never spawns workers here
    /// either.
    pub fn freeze(&self) -> FrozenTaxonomy {
        FrozenTaxonomy::freeze_with(&self.taxonomy, &Runtime::new(self.threads))
    }

    /// Freezes the taxonomy and persists the serving snapshot (format v2)
    /// in one step; later boots go straight through the serve crate's
    /// `TaxonomyService::from_snapshot_file` (or the compatibility
    /// `ProbaseApi`) without re-running the freeze. Returns the frozen
    /// snapshot for immediate serving.
    pub fn save_frozen(&self, path: &std::path::Path) -> Result<FrozenTaxonomy, PersistError> {
        let frozen = self.freeze();
        frozen.save_to_file(path)?;
        Ok(frozen)
    }

    /// Freezes the taxonomy and persists it in the v3 view format: the
    /// smallest snapshot and the fastest boot — `FrozenTaxonomyView::open`
    /// serves straight off the loaded buffer instead of materialising
    /// owned sections. Older boots still work: `Snapshot::load_from_file`
    /// reads every format. Returns the frozen snapshot for immediate
    /// serving.
    pub fn save_view(&self, path: &std::path::Path) -> Result<FrozenTaxonomy, PersistError> {
        let frozen = self.freeze();
        std::fs::write(path, cnp_taxonomy::persist::encode_frozen_v3(&frozen))?;
        Ok(frozen)
    }

    /// Diffs this batch against a serving snapshot and returns the
    /// [`DeltaOverlay`] that brings `base` up to date — the write half of
    /// never-ending extraction without re-freezing the world: ship the
    /// sidecar to a running `cnp_server` via `POST /admin/ingest` instead
    /// of rebuilding and reloading the full snapshot.
    ///
    /// The delta is *additive*: new concepts, entities, edges, aliases and
    /// attributes, plus metadata upserts for edges whose source or
    /// confidence changed. Relations the batch does not mention are left
    /// untouched — absence from one corpus batch is not evidence of
    /// retraction, so no retract ops are ever emitted here (curation
    /// produces those by hand). Iteration follows the batch store's
    /// insertion-ordered ids, so the same outcome diffed against the same
    /// base always yields the identical op sequence.
    pub fn delta_against<B: TaxonomyRead>(&self, base: &B) -> DeltaOverlay {
        let store = &self.taxonomy;
        let text = |sym: Symbol| store.interner().resolve(sym);
        let mut delta = DeltaOverlay::new();

        for c in store.concept_ids() {
            let name = store.concept_name(c);
            let base_c = base.find_concept(name);
            if base_c.is_none() {
                delta.add_concept(name);
            }
            for &(sup, meta) in store.parents_of(c) {
                let sup_name = store.concept_name(sup);
                let known = base_c.is_some_and(|bc| {
                    base.find_concept(sup_name).is_some_and(|bsup| {
                        base.parents_of(bc).any(|(p, m)| p == bsup && m == meta)
                    })
                });
                if !known {
                    delta.upsert_concept_is_a(name, sup_name, meta);
                }
            }
        }

        for e in store.entity_ids() {
            let record = store.entity(e);
            let name = text(record.name);
            let disambig = (record.disambig != Symbol(0)).then(|| text(record.disambig));
            let base_e = base.find_entity(name, disambig);
            if base_e.is_none() {
                delta.add_entity(name, disambig);
            }
            for &(c, meta) in store.concepts_of(e) {
                let concept = store.concept_name(c);
                let known = base_e.is_some_and(|be| {
                    base.find_concept(concept)
                        .is_some_and(|bc| base.entity_edge(be, bc) == Some(meta))
                });
                if !known {
                    delta.upsert_entity_is_a(name, disambig, concept, meta);
                }
            }
            for &alias in store.aliases_of(e) {
                let alias = text(alias);
                let known = base_e.is_some_and(|be| base.men2ent(alias).contains(&be));
                if !known {
                    delta.add_alias(name, disambig, alias);
                }
            }
            // Attributes are a build-time signal with no read-side
            // accessor to diff against; replay dedupes, so emitting them
            // for every batch entity is exact, just not minimal.
            for &attr in store.attributes_of(e) {
                delta.add_attribute(name, disambig, text(attr));
            }
        }
        delta
    }
}

/// The CN-Probase construction pipeline.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Configuration access.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs generation and verification on `corpus` and merges the
    /// surviving relations into an existing store — the *never-ending
    /// extraction* mode in which the deployed system ingests CN-DBpedia
    /// batches. Returns the construction report and the verified batch.
    /// After a batch lands, freeze the store ([`FrozenTaxonomy::freeze`])
    /// to publish a fresh read-optimized serving snapshot.
    pub fn run_into(
        &self,
        corpus: &Corpus,
        store: &mut TaxonomyStore,
    ) -> (PipelineReport, CandidateSet) {
        let outcome = self.run(corpus);
        let mut report = outcome.report;
        // Replay the batch through the exact same code path `assemble`
        // uses for a fresh build (a fresh store merely has no prior
        // concepts); the two modes drifting apart is how the dropped-chains
        // bug happened.
        report.cycle_edges_removed +=
            replay_candidates(store, &outcome.candidates, &outcome.chains, corpus);
        report.stats = TaxonomyStats::of(store);
        (report, outcome.candidates)
    }

    /// Runs generation, verification and taxonomy assembly on `corpus`.
    ///
    /// Every stage executes on one shared [`Runtime`] sized by
    /// [`PipelineConfig::threads`]; the output is identical at every
    /// thread count (see the runtime crate's determinism contract).
    pub fn run(&self, corpus: &Corpus) -> PipelineOutcome {
        let cfg = &self.config;
        let rt = Runtime::new(cfg.threads);
        let mut report = PipelineReport {
            pages: corpus.pages.len(),
            ..Default::default()
        };
        let mut timings: Vec<(Stage, std::time::Duration)> = Vec::new();
        let ctx = time_stage(&mut timings, Stage::Context, || {
            PipelineContext::build_with(corpus, &rt)
        });

        // ---- generation ----
        let mut all_candidates = Vec::new();
        let mut chains: Vec<(String, String)> = Vec::new();

        let bracket_pairs = time_stage(&mut timings, Stage::Bracket, || {
            if cfg.enable_bracket {
                let (cands, bracket_chains) = generation::extract_bracket(&corpus.pages, &ctx, &rt);
                report.bracket_candidates = cands.len();
                let pairs = generation::bracket_pairs_by_entity(&cands);
                all_candidates.extend(cands);
                chains.extend(bracket_chains);
                pairs
            } else {
                Default::default()
            }
        });

        time_stage(&mut timings, Stage::Infobox, || {
            if cfg.enable_infobox {
                let discovery = infobox::discover_predicates(
                    &corpus.pages,
                    &bracket_pairs,
                    cfg.predicate_top_k,
                    cfg.predicate_min_support,
                    &rt,
                );
                report.predicate_candidates = discovery.candidates.len();
                report.predicates_selected = discovery.selected.clone();
                let cands = infobox::extract(&corpus.pages, &discovery.selected, &rt);
                report.infobox_candidates = cands.len();
                all_candidates.extend(cands);
            }
        });

        time_stage(&mut timings, Stage::Abstract, || {
            if cfg.enable_abstract {
                let samples = abstract_gen::build_dataset(
                    &corpus.pages,
                    &ctx.segmenter,
                    &bracket_pairs,
                    cfg.neural.max_samples,
                );
                report.neural_samples = samples.len();
                if !samples.is_empty() {
                    let (model, losses) = abstract_gen::train(&samples, &cfg.neural);
                    report.neural_losses = losses;
                    let cands = abstract_gen::extract(&corpus.pages, &ctx.segmenter, &model, &rt);
                    report.abstract_candidates = cands.len();
                    all_candidates.extend(cands);
                }
            }
        });

        time_stage(&mut timings, Stage::Tag, || {
            if cfg.enable_tag {
                let cands = tag::extract(&corpus.pages, &rt);
                report.tag_candidates = cands.len();
                all_candidates.extend(cands);
            }
        });

        let merged = time_stage(&mut timings, Stage::Merge, || {
            let merged = CandidateSet::merge_with(all_candidates, &rt);
            report.merged_candidates = merged.len();
            merged
        });

        // ---- verification ----
        let verified = time_stage(&mut timings, Stage::Verification, || {
            let (verified, vreport) =
                verification::verify(merged, &corpus.pages, &ctx, &cfg.verification, &rt);
            report.verification = vreport;
            report.final_candidates = verified.len();
            verified
        });

        // ---- taxonomy assembly ----
        let taxonomy = time_stage(&mut timings, Stage::Assembly, || {
            let (taxonomy, cycle_removed) = assemble(&verified, &chains, corpus);
            report.cycle_edges_removed = cycle_removed;
            report.stats = TaxonomyStats::of(&taxonomy);
            taxonomy
        });

        report.stage_timings = timings;
        PipelineOutcome {
            taxonomy,
            report,
            candidates: verified,
            chains,
            threads: cfg.threads,
        }
    }
}

/// Builds the taxonomy store from verified candidates.
///
/// A surviving hypernym string is a *concept*. A page whose name equals a
/// concept (and that has no bracket) is itself a concept page: its
/// candidates become subconcept→concept edges. All other pages are
/// entities with entity→concept edges, infobox-predicate attributes and
/// mention aliases. Bracket rightmost-path chains add further subconcept
/// edges; any cycles are repaired by dropping the weakest edge.
fn assemble(
    verified: &CandidateSet,
    chains: &[(String, String)],
    corpus: &Corpus,
) -> (TaxonomyStore, usize) {
    let mut store = TaxonomyStore::new();
    let removed = replay_candidates(&mut store, verified, chains, corpus);
    (store, removed)
}

/// Replays a verified batch (candidates + bracket chains) into `store` and
/// repairs any cycles, returning the number of edges dropped.
///
/// This is the **single** code path behind both construction modes:
/// [`assemble`] calls it with a fresh store and [`Pipeline::run_into`]
/// with a populated one — the never-ending mode used to duplicate this
/// logic and drifted (it silently dropped the bracket chains). A name
/// counts as a concept when the batch proposes it as a hypernym or the
/// store knew it *before* this replay; concept ids are append-only, so
/// `index < n_prior_concepts` identifies the pre-batch ones without being
/// confused by concepts the replay itself adds along the way. For a fresh
/// store the prior set is empty and the rule reduces to the fresh-build
/// one.
fn replay_candidates(
    store: &mut TaxonomyStore,
    candidates: &CandidateSet,
    chains: &[(String, String)],
    corpus: &Corpus,
) -> usize {
    let n_prior_concepts = store.num_concepts();
    let concept_names: HashSet<&str> = candidates
        .items
        .iter()
        .map(|c| c.hypernym.as_str())
        .collect();
    let known = |store: &TaxonomyStore, name: &str| {
        concept_names.contains(name)
            || store
                .find_concept(name)
                .is_some_and(|c| c.index() < n_prior_concepts)
    };

    for c in &candidates.items {
        let page = &corpus.pages[c.page];
        let sup = store.add_concept(&c.hypernym);
        let meta = IsAMeta::new(c.source, c.confidence);
        let is_concept_page = page.bracket.is_none() && known(store, &page.name);
        if is_concept_page {
            let sub = store.add_concept(&page.name);
            store.add_concept_is_a(sub, sup, meta);
        } else {
            let e = store.add_entity(&page.name, page.bracket.as_deref());
            store.add_entity_is_a(e, sup, meta);
            for t in &page.infobox {
                store.add_attribute(e, &t.predicate);
            }
            for alias in &page.aliases {
                store.add_alias(e, alias);
            }
        }
    }

    for (sub, sup) in chains {
        if known(store, sub) || known(store, sup) {
            let sub = store.add_concept(sub);
            let sup = store.add_concept(sup);
            store.add_concept_is_a(sub, sup, IsAMeta::new(Source::SubConcept, 0.9));
        }
    }

    cnp_taxonomy::closure::break_cycles(store).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_encyclopedia::{CorpusConfig, CorpusGenerator};

    fn run_tiny(seed: u64) -> (Corpus, PipelineOutcome) {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(seed)).generate();
        let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
        (corpus, outcome)
    }

    #[test]
    fn end_to_end_builds_nonempty_taxonomy() {
        let (_, outcome) = run_tiny(71);
        assert!(outcome.taxonomy.num_is_a() > 200);
        assert!(outcome.taxonomy.num_concepts() > 50);
        assert!(outcome.taxonomy.num_entities() > 100);
        assert!(outcome.report.final_candidates > 0);
        assert!(cnp_taxonomy::closure::is_dag(&outcome.taxonomy));
    }

    #[test]
    fn all_four_sources_contribute() {
        let (_, outcome) = run_tiny(72);
        let r = &outcome.report;
        assert!(r.bracket_candidates > 0, "bracket produced nothing");
        assert!(r.abstract_candidates > 0, "abstract produced nothing");
        assert!(r.infobox_candidates > 0, "infobox produced nothing");
        assert!(r.tag_candidates > 0, "tag produced nothing");
        assert!(
            r.merged_candidates
                <= r.bracket_candidates
                    + r.abstract_candidates
                    + r.infobox_candidates
                    + r.tag_candidates
        );
    }

    #[test]
    fn predicate_discovery_selects_up_to_k() {
        let (_, outcome) = run_tiny(73);
        let r = &outcome.report;
        assert!(r.predicate_candidates >= r.predicates_selected.len());
        assert!(r.predicates_selected.len() <= 12);
        // The flagship isA predicate must be discovered.
        assert!(
            r.predicates_selected.iter().any(|p| p == "职业"),
            "职业 not selected: {:?}",
            r.predicates_selected
        );
    }

    #[test]
    fn verification_runs_and_removes_noise() {
        let (_, outcome) = run_tiny(74);
        assert!(outcome.report.verification.total() > 0);
        assert!(outcome.report.final_candidates < outcome.report.merged_candidates);
    }

    #[test]
    fn final_precision_beats_unverified() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(75)).generate();
        let verified = Pipeline::new(PipelineConfig::fast()).run(&corpus);
        let unverified = Pipeline::new(PipelineConfig::unverified()).run(&corpus);
        let precision = |o: &PipelineOutcome| {
            let correct = o
                .candidates
                .items
                .iter()
                .filter(|c| {
                    corpus
                        .gold
                        .is_correct_entity_isa(&c.entity_key, &c.hypernym)
                        || corpus
                            .gold
                            .is_correct_concept_isa(&c.entity_name, &c.hypernym)
                })
                .count();
            correct as f64 / o.candidates.len().max(1) as f64
        };
        let p_v = precision(&verified);
        let p_u = precision(&unverified);
        assert!(
            p_v > p_u,
            "verified precision {p_v:.3} not above unverified {p_u:.3}"
        );
    }

    #[test]
    fn entity_pages_with_brackets_stay_entities() {
        let (corpus, outcome) = run_tiny(76);
        // Find a bracketed page and assert it became an entity, not a concept.
        let page = corpus
            .pages
            .iter()
            .find(|p| p.bracket.is_some())
            .expect("bracketed page exists");
        let found = outcome
            .taxonomy
            .find_entity(&page.name, page.bracket.as_deref());
        // The page only appears if some candidate survived; then it must be
        // an entity.
        if let Some(e) = found {
            assert!(!outcome.taxonomy.concepts_of(e).is_empty());
        }
    }

    #[test]
    fn incremental_update_grows_an_existing_taxonomy() {
        let batch1 = CorpusGenerator::new(CorpusConfig::tiny(781)).generate();
        let batch2 = CorpusGenerator::new(CorpusConfig::tiny(782)).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let mut store = pipeline.run(&batch1).taxonomy;
        let before = TaxonomyStats::of(&store);
        let (report, batch_candidates) = pipeline.run_into(&batch2, &mut store);
        let after = TaxonomyStats::of(&store);
        assert!(after.entities > before.entities);
        assert!(after.total_is_a() > before.total_is_a());
        assert!(!batch_candidates.is_empty());
        assert_eq!(report.stats, after);
        assert!(cnp_taxonomy::closure::is_dag(&store));
    }

    /// Regression: `run_into` used to silently drop the bracket
    /// rightmost-path chains that `assemble` turns into subconcept→concept
    /// edges, so never-ending extraction grew a flatter hierarchy than a
    /// fresh build on the same pages.
    #[test]
    fn run_into_replays_bracket_chains_like_a_fresh_build() {
        let batch = CorpusGenerator::new(CorpusConfig::tiny(784)).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let fresh = pipeline.run(&batch);
        assert!(!fresh.chains.is_empty(), "corpus produced no chains");
        let mut store = TaxonomyStore::new();
        let (report, _) = pipeline.run_into(&batch, &mut store);
        assert_eq!(
            report.stats.concept_is_a, fresh.report.stats.concept_is_a,
            "incremental mode must grow the same concept hierarchy"
        );
        assert_eq!(report.stats, fresh.report.stats);
    }

    #[test]
    fn outcome_freezes_into_equivalent_snapshot() {
        let (_, outcome) = run_tiny(78);
        let frozen = outcome.freeze();
        assert_eq!(frozen.num_entities(), outcome.taxonomy.num_entities());
        assert_eq!(frozen.num_is_a(), outcome.taxonomy.num_is_a());
        assert_eq!(frozen.topo_order().len(), outcome.taxonomy.num_concepts());
    }

    #[test]
    fn update_is_idempotent_for_the_same_batch() {
        let batch = CorpusGenerator::new(CorpusConfig::tiny(783)).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let mut store = pipeline.run(&batch).taxonomy;
        let before = TaxonomyStats::of(&store);
        // Re-ingesting the same batch must not duplicate edges.
        let _ = pipeline.run_into(&batch, &mut store);
        let after = TaxonomyStats::of(&store);
        assert_eq!(before.entity_is_a, after.entity_is_a);
        assert_eq!(before.entities, after.entities);
    }

    #[test]
    fn delta_against_empty_base_reproduces_the_batch() {
        let (_, outcome) = run_tiny(79);
        let empty = FrozenTaxonomy::freeze(&TaxonomyStore::new());
        let delta = outcome.delta_against(&empty);
        let mut replayed = TaxonomyStore::new();
        delta.apply_to_store(&mut replayed);
        assert_eq!(
            TaxonomyStats::of(&replayed),
            TaxonomyStats::of(&outcome.taxonomy)
        );
    }

    #[test]
    fn delta_against_own_snapshot_carries_only_attributes() {
        let (_, outcome) = run_tiny(79);
        let frozen = outcome.freeze();
        let delta = outcome.delta_against(&frozen);
        // Every relation is already served; only the undiffable attribute
        // ops remain (and replaying them is a no-op).
        let attrs: usize = outcome
            .taxonomy
            .entity_ids()
            .map(|e| outcome.taxonomy.attributes_of(e).len())
            .sum();
        assert_eq!(delta.num_ops(), attrs);
        let before = TaxonomyStats::of(&outcome.taxonomy);
        let mut store = outcome.taxonomy.clone();
        delta.apply_to_store(&mut store);
        assert_eq!(TaxonomyStats::of(&store), before);
        // And the diff itself is deterministic.
        assert_eq!(delta, outcome.delta_against(&frozen));
    }

    #[test]
    fn delta_brings_a_live_overlay_up_to_date() {
        let batch1 = CorpusGenerator::new(CorpusConfig::tiny(791)).generate();
        let batch2 = CorpusGenerator::new(CorpusConfig::tiny(792)).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let base = pipeline.run(&batch1).freeze();
        let outcome2 = pipeline.run(&batch2);
        let delta = outcome2.delta_against(&base);
        assert!(!delta.is_empty(), "disjoint batch produced no delta");
        let view = cnp_taxonomy::OverlayView::new(base).apply(&delta);
        // Every batch-2 relation is now served through the overlay with
        // at least the batch's confidence semantics: the edge exists.
        for e in outcome2.taxonomy.entity_ids() {
            let record = outcome2.taxonomy.entity(e);
            let name = outcome2.taxonomy.interner().resolve(record.name);
            let disambig = (record.disambig != Symbol(0))
                .then(|| outcome2.taxonomy.interner().resolve(record.disambig));
            let ve = view
                .find_entity(name, disambig)
                .unwrap_or_else(|| panic!("entity {name} missing after ingest"));
            for &(c, _) in outcome2.taxonomy.concepts_of(e) {
                let concept = outcome2.taxonomy.concept_name(c);
                let vc = view.find_concept(concept).expect("concept missing");
                assert!(
                    view.entity_edge(ve, vc).is_some(),
                    "edge {name} → {concept} missing after ingest"
                );
            }
        }
    }

    #[test]
    fn report_timings_cover_all_stages() {
        let (_, outcome) = run_tiny(77);
        let stages: Vec<crate::report::Stage> = outcome
            .report
            .stage_timings
            .iter()
            .map(|&(s, _)| s)
            .collect();
        // Every stage appears exactly once, in execution order.
        assert_eq!(stages, crate::report::Stage::ALL);
    }

    #[test]
    fn default_threads_follow_available_parallelism() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.threads, cnp_runtime::default_threads());
        assert!(cfg.threads >= 1);
        // The test preset stays pinned at two workers.
        assert_eq!(PipelineConfig::fast().threads, 2);
    }
}
