//! Construction report: per-stage counters mirroring the dataflow of the
//! paper's Figure 2 (generation → candidates → verification → taxonomy).

use crate::verification::VerificationReport;
use cnp_taxonomy::TaxonomyStats;
use std::fmt;
use std::time::Duration;

/// End-to-end construction statistics.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Pages consumed.
    pub pages: usize,
    /// Candidates produced by the separation algorithm (bracket).
    pub bracket_candidates: usize,
    /// Candidates produced by neural generation (abstract).
    pub abstract_candidates: usize,
    /// Candidates produced by predicate discovery (infobox).
    pub infobox_candidates: usize,
    /// Candidates produced by direct extraction (tag).
    pub tag_candidates: usize,
    /// Candidates after merging/deduplication.
    pub merged_candidates: usize,
    /// Verification removals.
    pub verification: VerificationReport,
    /// Candidates surviving verification.
    pub final_candidates: usize,
    /// Predicate-discovery candidate count (paper: 341).
    pub predicate_candidates: usize,
    /// Selected isA-bearing predicates (paper: 12).
    pub predicates_selected: Vec<String>,
    /// Distant-supervision sample count (paper: 300 k+).
    pub neural_samples: usize,
    /// Per-epoch CopyNet training losses.
    pub neural_losses: Vec<f32>,
    /// Subconcept edges removed to restore a DAG.
    pub cycle_edges_removed: usize,
    /// Final taxonomy size.
    pub stats: TaxonomyStats,
    /// Wall-clock time per stage.
    pub stage_timings: Vec<(String, Duration)>,
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CN-Probase construction report")?;
        writeln!(f, "  input pages:            {}", self.pages)?;
        writeln!(f, "  generation module")?;
        writeln!(f, "    bracket  (separation): {}", self.bracket_candidates)?;
        writeln!(f, "    abstract (neural):     {}", self.abstract_candidates)?;
        writeln!(f, "    infobox  (predicates): {}", self.infobox_candidates)?;
        writeln!(f, "    tag      (direct):     {}", self.tag_candidates)?;
        writeln!(f, "    merged candidates:     {}", self.merged_candidates)?;
        writeln!(
            f,
            "    predicates: {} candidates -> {} selected",
            self.predicate_candidates,
            self.predicates_selected.len()
        )?;
        writeln!(f, "  verification module")?;
        writeln!(
            f,
            "    incompatible concepts: -{}",
            self.verification.incompatible_removed
        )?;
        writeln!(
            f,
            "    NER filter:            -{}",
            self.verification.ner_removed
        )?;
        writeln!(
            f,
            "    syntax rules:          -{} (thematic {}, head-stem {})",
            self.verification.thematic_removed + self.verification.head_stem_removed,
            self.verification.thematic_removed,
            self.verification.head_stem_removed
        )?;
        writeln!(f, "    surviving candidates:  {}", self.final_candidates)?;
        writeln!(f, "  taxonomy: {}", self.stats)?;
        writeln!(f, "  cycle edges removed:     {}", self.cycle_edges_removed)?;
        writeln!(f, "  stage timings:")?;
        for (stage, d) in &self.stage_timings {
            writeln!(f, "    {stage:<22} {:>8.1} ms", d.as_secs_f64() * 1e3)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_sections() {
        let mut r = PipelineReport {
            pages: 10,
            bracket_candidates: 5,
            tag_candidates: 7,
            ..Default::default()
        };
        r.stage_timings
            .push(("context".into(), Duration::from_millis(12)));
        let text = r.to_string();
        assert!(text.contains("generation module"));
        assert!(text.contains("verification module"));
        assert!(text.contains("separation"));
        assert!(text.contains("context"));
    }
}
