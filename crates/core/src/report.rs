//! Construction report: per-stage counters mirroring the dataflow of the
//! paper's Figure 2 (generation → candidates → verification → taxonomy).

use crate::verification::VerificationReport;
use cnp_taxonomy::TaxonomyStats;
use std::fmt;
use std::time::Duration;

/// The pipeline's stages, in execution order — the typed key for
/// [`PipelineReport::stage_timings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Corpus-wide statistics ([`crate::context::PipelineContext`]).
    Context,
    /// Bracket source: the separation algorithm.
    Bracket,
    /// Infobox source: predicate discovery + extraction.
    Infobox,
    /// Abstract source: CopyNet training + generation.
    Abstract,
    /// Tag source: direct extraction.
    Tag,
    /// Candidate merging/deduplication.
    Merge,
    /// The three verification strategies.
    Verification,
    /// Taxonomy assembly (store build + cycle repair).
    Assembly,
}

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; 8] = [
        Stage::Context,
        Stage::Bracket,
        Stage::Infobox,
        Stage::Abstract,
        Stage::Tag,
        Stage::Merge,
        Stage::Verification,
        Stage::Assembly,
    ];

    /// Stable display name (the strings the stringly-typed report used).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Context => "context",
            Stage::Bracket => "bracket",
            Stage::Infobox => "infobox",
            Stage::Abstract => "abstract",
            Stage::Tag => "tag",
            Stage::Merge => "merge",
            Stage::Verification => "verification",
            Stage::Assembly => "assembly",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Runs `f`, recording its wall time against `stage` in `timings`.
///
/// This is the pipeline's **only** clock read: stage bodies stay pure
/// functions of their inputs, and the measured duration flows solely into
/// [`PipelineReport::stage_timings`] (observability), never into stage
/// output.
pub fn time_stage<T>(
    timings: &mut Vec<(Stage, Duration)>,
    stage: Stage,
    f: impl FnOnce() -> T,
) -> T {
    // cnp-lint: allow(determinism-contract) reason="sole sanctioned clock read; duration feeds stage_timings (observability), never stage output"
    let clock = std::time::Instant::now();
    let out = f();
    timings.push((stage, clock.elapsed()));
    out
}

/// End-to-end construction statistics.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Pages consumed.
    pub pages: usize,
    /// Candidates produced by the separation algorithm (bracket).
    pub bracket_candidates: usize,
    /// Candidates produced by neural generation (abstract).
    pub abstract_candidates: usize,
    /// Candidates produced by predicate discovery (infobox).
    pub infobox_candidates: usize,
    /// Candidates produced by direct extraction (tag).
    pub tag_candidates: usize,
    /// Candidates after merging/deduplication.
    pub merged_candidates: usize,
    /// Verification removals.
    pub verification: VerificationReport,
    /// Candidates surviving verification.
    pub final_candidates: usize,
    /// Predicate-discovery candidate count (paper: 341).
    pub predicate_candidates: usize,
    /// Selected isA-bearing predicates (paper: 12).
    pub predicates_selected: Vec<String>,
    /// Distant-supervision sample count (paper: 300 k+).
    pub neural_samples: usize,
    /// Per-epoch CopyNet training losses.
    pub neural_losses: Vec<f32>,
    /// Subconcept edges removed to restore a DAG.
    pub cycle_edges_removed: usize,
    /// Final taxonomy size.
    pub stats: TaxonomyStats,
    /// Wall-clock time per stage.
    pub stage_timings: Vec<(Stage, Duration)>,
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CN-Probase construction report")?;
        writeln!(f, "  input pages:            {}", self.pages)?;
        writeln!(f, "  generation module")?;
        writeln!(f, "    bracket  (separation): {}", self.bracket_candidates)?;
        writeln!(f, "    abstract (neural):     {}", self.abstract_candidates)?;
        writeln!(f, "    infobox  (predicates): {}", self.infobox_candidates)?;
        writeln!(f, "    tag      (direct):     {}", self.tag_candidates)?;
        writeln!(f, "    merged candidates:     {}", self.merged_candidates)?;
        writeln!(
            f,
            "    predicates: {} candidates -> {} selected",
            self.predicate_candidates,
            self.predicates_selected.len()
        )?;
        writeln!(f, "  verification module")?;
        writeln!(
            f,
            "    incompatible concepts: -{}",
            self.verification.incompatible_removed
        )?;
        writeln!(
            f,
            "    NER filter:            -{}",
            self.verification.ner_removed
        )?;
        writeln!(
            f,
            "    syntax rules:          -{} (thematic {}, head-stem {})",
            self.verification.thematic_removed + self.verification.head_stem_removed,
            self.verification.thematic_removed,
            self.verification.head_stem_removed
        )?;
        writeln!(f, "    surviving candidates:  {}", self.final_candidates)?;
        writeln!(f, "  taxonomy: {}", self.stats)?;
        writeln!(f, "  cycle edges removed:     {}", self.cycle_edges_removed)?;
        writeln!(f, "  stage timings:")?;
        for (stage, d) in &self.stage_timings {
            writeln!(
                f,
                "    {:<22} {:>8.1} ms",
                stage.as_str(),
                d.as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_sections() {
        let mut r = PipelineReport {
            pages: 10,
            bracket_candidates: 5,
            tag_candidates: 7,
            ..Default::default()
        };
        r.stage_timings
            .push((Stage::Context, Duration::from_millis(12)));
        let text = r.to_string();
        assert!(text.contains("generation module"));
        assert!(text.contains("verification module"));
        assert!(text.contains("separation"));
        assert!(text.contains("context"));
    }

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped);
        assert_eq!(names.first(), Some(&"context"));
        assert_eq!(names.last(), Some(&"assembly"));
        assert_eq!(Stage::Merge.to_string(), "merge");
    }
}
