//! Transitive hypernym closure and cycle handling.
//!
//! `getConcept` may return transitive hypernyms (刘德华 → 男演员 → 演员 →
//! 人物), so the store needs reachability over subconcept→concept edges. A
//! healthy taxonomy is a DAG; extraction noise can create cycles, which
//! [`break_cycles`] repairs by deleting the lowest-confidence edge on each
//! cycle.

use crate::hash::{FxHashMap, FxHashSet};
use crate::store::{ConceptId, TaxonomyStore};
use parking_lot::Mutex;
use std::sync::Arc;

/// All concepts reachable from `start` through parent edges, in BFS order,
/// excluding `start` itself. Cycles are tolerated (visited-set).
pub fn ancestors(store: &TaxonomyStore, start: ConceptId) -> Vec<ConceptId> {
    let mut seen: FxHashSet<ConceptId> = FxHashSet::default();
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(c) = queue.pop_front() {
        for &(p, _) in store.parents_of(c) {
            if seen.insert(p) {
                order.push(p);
                queue.push_back(p);
            }
        }
    }
    order
}

/// All concepts reachable from `start` through child edges (the transitive
/// hyponym concepts), excluding `start`.
pub fn descendants(store: &TaxonomyStore, start: ConceptId) -> Vec<ConceptId> {
    let mut seen: FxHashSet<ConceptId> = FxHashSet::default();
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(c) = queue.pop_front() {
        for &ch in store.children_of(c) {
            if seen.insert(ch) {
                order.push(ch);
                queue.push_back(ch);
            }
        }
    }
    order
}

/// Finds one cycle among concept edges, returned as a list of edges
/// `(sub, sup)` forming the cycle; `None` when the hierarchy is a DAG.
pub fn find_cycle(store: &TaxonomyStore) -> Option<Vec<(ConceptId, ConceptId)>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let n = store.num_concepts();
    let mut color = vec![Color::White; n];
    // Iterative DFS keeping the grey path so the cycle can be reconstructed.
    for root in store.concept_ids() {
        if color[root.index()] != Color::White {
            continue;
        }
        let mut stack: Vec<(ConceptId, usize)> = vec![(root, 0)];
        let mut path: Vec<ConceptId> = vec![root];
        color[root.index()] = Color::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let parents = store.parents_of(node);
            if *next < parents.len() {
                let (p, _) = parents[*next];
                *next += 1;
                match color[p.index()] {
                    Color::White => {
                        color[p.index()] = Color::Grey;
                        stack.push((p, 0));
                        path.push(p);
                    }
                    Color::Grey => {
                        // Found a back edge: reconstruct the cycle p → … → node → p.
                        let pos = path
                            .iter()
                            .position(|&x| x == p)
                            .expect("grey node on path");
                        let mut edges = Vec::new();
                        for w in path[pos..].windows(2) {
                            edges.push((w[0], w[1]));
                        }
                        edges.push((node, p));
                        return Some(edges);
                    }
                    Color::Black => {}
                }
            } else {
                color[node.index()] = Color::Black;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Returns `true` when the concept hierarchy contains no cycle.
pub fn is_dag(store: &TaxonomyStore) -> bool {
    find_cycle(store).is_none()
}

/// Repeatedly removes the lowest-confidence edge of each discovered cycle
/// until the hierarchy is a DAG. Returns the removed edges.
pub fn break_cycles(store: &mut TaxonomyStore) -> Vec<(ConceptId, ConceptId)> {
    let mut removed = Vec::new();
    while let Some(cycle) = find_cycle(store) {
        let &(sub, sup) = cycle
            .iter()
            .min_by(|&&(a, b), &&(c, d)| {
                let ca = edge_confidence(store, a, b);
                let cb = edge_confidence(store, c, d);
                // total_cmp: NaN orders above every number instead of
                // panicking, so a poisoned confidence loses the tie-break.
                ca.total_cmp(&cb)
            })
            .expect("cycle is non-empty");
        store.remove_concept_is_a(sub, sup);
        removed.push((sub, sup));
    }
    removed
}

fn edge_confidence(store: &TaxonomyStore, sub: ConceptId, sup: ConceptId) -> f32 {
    store
        .parents_of(sub)
        .iter()
        .find(|(c, _)| *c == sup)
        .map(|(_, m)| m.confidence)
        .unwrap_or(0.0)
}

/// Memoized ancestor cache for hot `getConcept(transitive)` queries.
///
/// Thread-safe: readers share the store immutably and the cache behind a
/// mutex, so API servers can answer queries from many threads.
#[derive(Debug, Default)]
pub struct AncestorCache {
    cache: Mutex<FxHashMap<ConceptId, Arc<[ConceptId]>>>,
}

impl AncestorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ancestors of `c`, computed once then shared.
    pub fn ancestors(&self, store: &TaxonomyStore, c: ConceptId) -> Arc<[ConceptId]> {
        if let Some(hit) = self.cache.lock().get(&c) {
            return Arc::clone(hit);
        }
        let computed: Arc<[ConceptId]> = ancestors(store, c).into();
        self.cache.lock().insert(c, Arc::clone(&computed));
        computed
    }

    /// Drops all cached entries (call after mutating the store).
    pub fn invalidate(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    fn meta(conf: f32) -> IsAMeta {
        IsAMeta::new(Source::SubConcept, conf)
    }

    /// 男演员 → 演员 → 人物; 歌手 → 人物.
    fn chain_store() -> (TaxonomyStore, ConceptId, ConceptId, ConceptId, ConceptId) {
        let mut s = TaxonomyStore::new();
        let male_actor = s.add_concept("男演员");
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        let singer = s.add_concept("歌手");
        s.add_concept_is_a(male_actor, actor, meta(0.9));
        s.add_concept_is_a(actor, person, meta(0.9));
        s.add_concept_is_a(singer, person, meta(0.9));
        (s, male_actor, actor, person, singer)
    }

    #[test]
    fn ancestors_follow_transitive_parents() {
        let (s, male_actor, actor, person, _) = chain_store();
        let up = ancestors(&s, male_actor);
        assert_eq!(up, vec![actor, person]);
        assert!(ancestors(&s, person).is_empty());
    }

    #[test]
    fn descendants_follow_transitive_children() {
        let (s, male_actor, actor, person, singer) = chain_store();
        let down = descendants(&s, person);
        assert!(down.contains(&actor));
        assert!(down.contains(&male_actor));
        assert!(down.contains(&singer));
        assert_eq!(down.len(), 3);
    }

    #[test]
    fn dag_detection() {
        let (mut s, male_actor, _, person, _) = chain_store();
        assert!(is_dag(&s));
        // person → 男演员 closes a cycle.
        s.add_concept_is_a(person, male_actor, meta(0.1));
        assert!(!is_dag(&s));
    }

    #[test]
    fn break_cycles_removes_lowest_confidence_edge() {
        let (mut s, male_actor, actor, person, _) = chain_store();
        s.add_concept_is_a(person, male_actor, meta(0.1));
        let removed = break_cycles(&mut s);
        assert_eq!(removed, vec![(person, male_actor)]);
        assert!(is_dag(&s));
        // The legitimate chain survives.
        assert_eq!(ancestors(&s, male_actor), vec![actor, person]);
    }

    #[test]
    fn break_cycles_handles_two_node_cycle() {
        let mut s = TaxonomyStore::new();
        let a = s.add_concept("甲");
        let b = s.add_concept("乙");
        s.add_concept_is_a(a, b, meta(0.9));
        s.add_concept_is_a(b, a, meta(0.2));
        let removed = break_cycles(&mut s);
        assert_eq!(removed, vec![(b, a)]);
        assert!(is_dag(&s));
    }

    /// Regression: a NaN confidence (possible through the public `IsAMeta`
    /// fields) used to panic `partial_cmp(..).unwrap()` during cycle repair.
    #[test]
    fn break_cycles_survives_nan_confidence() {
        let mut s = TaxonomyStore::new();
        let a = s.add_concept("甲");
        let b = s.add_concept("乙");
        let nan_meta = IsAMeta {
            source: Source::SubConcept,
            confidence: f32::NAN,
        };
        s.add_concept_is_a(a, b, nan_meta);
        s.add_concept_is_a(b, a, meta(0.2));
        let removed = break_cycles(&mut s);
        // NaN orders above every number under total_cmp, so the real 0.2
        // edge is the minimum and gets removed — without a panic.
        assert_eq!(removed, vec![(b, a)]);
        assert!(is_dag(&s));
    }

    #[test]
    fn ancestor_cache_returns_same_results_and_invalidates() {
        let (s, male_actor, actor, person, _) = chain_store();
        let cache = AncestorCache::new();
        let first = cache.ancestors(&s, male_actor);
        assert_eq!(first.as_ref(), &[actor, person]);
        let second = cache.ancestors(&s, male_actor);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second call must be a cache hit"
        );
        cache.invalidate();
        let third = cache.ancestors(&s, male_actor);
        assert_eq!(third.as_ref(), first.as_ref());
    }

    #[test]
    fn diamond_is_a_dag() {
        let mut s = TaxonomyStore::new();
        let bottom = s.add_concept("底");
        let l = s.add_concept("左");
        let r = s.add_concept("右");
        let top = s.add_concept("顶");
        s.add_concept_is_a(bottom, l, meta(0.9));
        s.add_concept_is_a(bottom, r, meta(0.9));
        s.add_concept_is_a(l, top, meta(0.9));
        s.add_concept_is_a(r, top, meta(0.9));
        assert!(is_dag(&s));
        let up = ancestors(&s, bottom);
        assert_eq!(up.len(), 3); // top counted once
    }
}
