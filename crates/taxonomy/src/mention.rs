//! Mention index: surface form → candidate entities.
//!
//! Backs the `men2ent` API (Table II, 43.9 M calls — the hottest endpoint).
//! A mention resolves through three key classes:
//!
//! 1. the bare entity name (刘德华 → every 刘德华 sense),
//! 2. the full disambiguated key (刘德华（中国香港男演员）→ that sense),
//! 3. registered aliases (Andy Lau → 刘德华（中国香港男演员）).

use crate::hash::FxHashMap;
use crate::interner::Symbol;
use crate::store::{EntityId, TaxonomyStore};

/// True when a mention carries a `（…）` disambiguation — the only form a
/// full key can take. Shared by the build-time [`MentionIndex`], the
/// frozen snapshot and the serve-layer key resolution so the `men2ent`
/// paths can never disagree on when the full-key table applies.
pub fn has_disambig(mention: &str) -> bool {
    mention.contains('（')
}

/// Immutable mention index built from a store snapshot.
#[derive(Debug, Clone, Default)]
pub struct MentionIndex {
    by_mention: FxHashMap<Symbol, Vec<EntityId>>,
    full_keys: FxHashMap<String, EntityId>,
}

impl MentionIndex {
    /// Builds the index over all entities in `store`.
    pub fn build(store: &mut TaxonomyStore) -> Self {
        let mut by_mention: FxHashMap<Symbol, Vec<EntityId>> = FxHashMap::default();
        let mut full_keys = FxHashMap::default();
        let ids: Vec<EntityId> = store.entity_ids().collect();
        for id in ids {
            let rec = store.entity(id);
            by_mention.entry(rec.name).or_default().push(id);
            for &alias in store.aliases_of(id).to_vec().iter() {
                by_mention.entry(alias).or_default().push(id);
            }
            // Only disambiguated senses get a full-key entry: a bracket-less
            // sense has `entity_key == name`, and registering that as a full
            // key would shadow every disambiguated sibling sense.
            if rec.disambig != crate::interner::Symbol(0) {
                full_keys.insert(store.entity_key(id), id);
            }
        }
        for v in by_mention.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        MentionIndex {
            by_mention,
            full_keys,
        }
    }

    /// Resolves a mention to candidate entities (the `men2ent` API).
    ///
    /// A full disambiguated key resolves to exactly its sense; a bare name
    /// or alias resolves to every matching sense. The full-key table is
    /// only consulted when the mention carries a `（…）` disambiguation, so
    /// a bracket-less sense never shadows its disambiguated siblings.
    pub fn men2ent(&self, store: &TaxonomyStore, mention: &str) -> Vec<EntityId> {
        if has_disambig(mention) {
            if let Some(&id) = self.full_keys.get(mention) {
                return vec![id];
            }
        }
        let Some(sym) = store.interner().get(mention) else {
            return Vec::new();
        };
        self.by_mention.get(&sym).cloned().unwrap_or_default()
    }

    /// Number of distinct mention keys (names + aliases).
    pub fn num_mentions(&self) -> usize {
        self.by_mention.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    fn store_with_senses() -> (TaxonomyStore, EntityId, EntityId, MentionIndex) {
        let mut s = TaxonomyStore::new();
        let actor = s.add_entity("刘德华", Some("中国香港男演员"));
        let prof = s.add_entity("刘德华", Some("大学教授"));
        s.add_alias(actor, "Andy Lau");
        let c = s.add_concept("演员");
        s.add_entity_is_a(actor, c, IsAMeta::new(Source::Tag, 0.9));
        let idx = MentionIndex::build(&mut s);
        (s, actor, prof, idx)
    }

    #[test]
    fn bare_name_resolves_all_senses() {
        let (s, actor, prof, idx) = store_with_senses();
        let hits = idx.men2ent(&s, "刘德华");
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&actor));
        assert!(hits.contains(&prof));
    }

    #[test]
    fn full_key_resolves_single_sense() {
        let (s, actor, _, idx) = store_with_senses();
        assert_eq!(idx.men2ent(&s, "刘德华（中国香港男演员）"), vec![actor]);
    }

    #[test]
    fn alias_resolves() {
        let (s, actor, _, idx) = store_with_senses();
        assert_eq!(idx.men2ent(&s, "Andy Lau"), vec![actor]);
    }

    #[test]
    fn unknown_mention_is_empty() {
        let (s, _, _, idx) = store_with_senses();
        assert!(idx.men2ent(&s, "不存在").is_empty());
    }

    /// Regression: a bracket-less sense has `entity_key == name`; looking
    /// the bare name up through the full-key table used to return only
    /// that sense and hide every disambiguated sibling.
    #[test]
    fn bare_sense_does_not_shadow_disambiguated_senses() {
        let mut s = TaxonomyStore::new();
        let bare = s.add_entity("刘德华", None);
        let actor = s.add_entity("刘德华", Some("中国香港男演员"));
        let idx = MentionIndex::build(&mut s);
        let hits = idx.men2ent(&s, "刘德华");
        assert_eq!(hits.len(), 2, "bare mention must surface every sense");
        assert!(hits.contains(&bare));
        assert!(hits.contains(&actor));
        // The full key still resolves to exactly its sense.
        assert_eq!(idx.men2ent(&s, "刘德华（中国香港男演员）"), vec![actor]);
    }

    #[test]
    fn mention_count_includes_aliases() {
        let (_, _, _, idx) = store_with_senses();
        // 刘德华 + Andy Lau = 2 mention keys.
        assert_eq!(idx.num_mentions(), 2);
    }
}
