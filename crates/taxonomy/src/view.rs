//! Zero-copy snapshot views — serving Table II queries straight off the
//! loaded v3 buffer.
//!
//! [`FrozenTaxonomyView::open`] takes ownership of one contiguous
//! [`Bytes`] buffer (the v3 snapshot written by
//! [`crate::persist::encode_frozen_v3`]) and validates it *in place*:
//! framing, checksum, string-table shape, the sorted lookup indexes, and a
//! single sweep over every varint-CSR payload. No section is copied into
//! an owned `Vec` — boot cost is the validation sweep, and every query
//! afterwards decodes the handful of varints it touches, directly from the
//! buffer.
//!
//! Contrast with the two owned paths:
//!
//! * v1 (`Snapshot::Store`) — decode a mutable store, then freeze:
//!   Tarjan + closure + depth DP on every boot.
//! * v2 ([`FrozenTaxonomy::decode`]) — validate-and-go, but still one
//!   owned allocation per section and raw `u32` columns on disk.
//! * v3 (this module) — validate-and-go with **zero per-section
//!   allocation** and delta/varint-compressed columns.
//!
//! What v2 rebuilds as hash maps, v3 stores as sorted permutations
//! (`SSRT`: symbols by string bytes; `CSRT`: concepts by name symbol) and
//! the view binary-searches. Edge metadata lives once in the `MDCT`
//! dictionary — meta rows carry varint indices into it, and the hyponym
//! rows (`CENT`) mirror each edge's index inline so `getEntity` ranks by
//! confidence without probing the entity-side adjacency. Full disambiguated keys
//! (`刘德华（中国香港男演员）`) are resolved by splitting the mention at a
//! `（…）` pair and scanning the name's mention row — no materialised
//! full-key table. The one observable divergence from the owned map: a
//! name that itself contains a full-width bracket can in principle admit
//! more than one split; the view takes the first match, the owned table
//! the freeze-time key. Encoder-produced snapshots of such corpora behave
//! identically for every key the freeze actually indexed.
//!
//! The view's accessors are panic-free by construction (the
//! `no-panic-serving-path` lint covers this file): malformed indexes
//! yield empty rows or `None`, never a slice panic. Structural validity
//! is guaranteed by `open`; *semantic* invariants (topo permutation,
//! closure correctness, key uniqueness) are deferred to
//! [`FrozenTaxonomyView::to_frozen`], which materialises an owned
//! [`FrozenTaxonomy`] through the same `validate_frozen` gate the v2
//! decoder uses.

use crate::frozen::{Csr, FrozenTaxonomy};
use crate::interner::{Interner, Symbol};
use crate::mention::has_disambig;
use crate::persist::{
    self, PersistError, RawSections, ANCC_BITSET, ANCC_RANGES, SEC_ANCESTOR_SUCC, SEC_CHECKSUM,
    SEC_CONCEPTS, SEC_CONCEPT_CHILDREN, SEC_CONCEPT_ENTITIES, SEC_CONCEPT_PARENTS,
    SEC_CONCEPT_SORT, SEC_DEPTH, SEC_ENTITIES, SEC_ENTITY_ALIASES, SEC_ENTITY_ATTRS,
    SEC_ENTITY_CONCEPTS, SEC_INTERNER, SEC_MENTIONS, SEC_MENTION_HASH, SEC_META_DICT, SEC_STR_SORT,
    SEC_TOPO, VCSR_BLOCK,
};
use crate::store::{ConceptId, EntityId, EntityRecord, IsAMeta, Source};
use crate::varint::{unzigzag, varint_at};
use bytes::Bytes;
use cnp_runtime::stable_hash;
use std::fmt;
use std::ops::Range;
use std::path::Path;

/// One varint-CSR relation, addressed into the snapshot buffer.
#[derive(Clone, Copy, Debug, Default)]
struct Vcsr {
    rows: usize,
    entries: usize,
    /// Byte offset of the block directory (`ceil(rows/VCSR_BLOCK)` × u32).
    dir: usize,
    /// Byte offset of the row payload.
    payload: usize,
    payload_len: usize,
}

/// A read-only taxonomy served directly from one v3 snapshot buffer.
///
/// Cloning is cheap ([`Bytes`] is reference-counted); the clone shares the
/// underlying buffer.
#[derive(Clone)]
pub struct FrozenTaxonomyView {
    buf: Bytes,
    n_strings: usize,
    n_entities: usize,
    n_concepts: usize,
    /// Distinct mention keys = non-empty `MENT` rows, counted at open.
    n_mentions: usize,
    /// Byte offset of the cumulative string-end array (`n_strings` × u32).
    str_ends: usize,
    /// Byte range of the concatenated UTF-8 string blob.
    str_blob: Range<usize>,
    /// Byte offset of `SSRT` (symbols sorted by string bytes).
    str_sorted: usize,
    /// Byte offset of the entity table (`n_entities` × (name, disambig)).
    entities_at: usize,
    /// Byte offset of the concept table (`n_concepts` × name symbol).
    concepts_at: usize,
    /// Byte offset of `CSRT` (concept ids sorted by name symbol).
    concept_sorted: usize,
    topo_at: usize,
    depth_at: usize,
    /// Byte offset of the `MDCT` entries (`meta_dict_len` × (source u8,
    /// confidence f32)) — the shared edge-metadata dictionary every meta
    /// row indexes into.
    meta_dict_at: usize,
    meta_dict_len: usize,
    entity_concepts: Vcsr,
    concept_entities: Vcsr,
    concept_parents: Vcsr,
    concept_children: Vcsr,
    entity_attrs: Vcsr,
    entity_aliases: Vcsr,
    ancestors: Vcsr,
    by_mention: Vcsr,
    /// Byte offset of the `MHSH` rows (`n_mentions` × (hash u32, sym
    /// u32), sorted by hash) — the `men2ent` fast path.
    mention_hash_at: usize,
}

impl fmt::Debug for FrozenTaxonomyView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenTaxonomyView")
            .field("snapshot_bytes", &self.buf.len())
            .field("entities", &self.n_entities)
            .field("concepts", &self.n_concepts)
            .field("strings", &self.n_strings)
            .finish()
    }
}

/// Bounds-checked little-endian u32 read; `None` past the end.
fn u32_le(bytes: &[u8], off: usize) -> Option<u32> {
    let b = bytes.get(off..off.checked_add(4)?)?;
    Some(u32::from_le_bytes(b.try_into().ok()?))
}

fn u64_le(bytes: &[u8], off: usize) -> Option<u64> {
    let b = bytes.get(off..off.checked_add(8)?)?;
    Some(u64::from_le_bytes(b.try_into().ok()?))
}

/// What a VCSR row holds — drives per-element validation in the open sweep.
#[derive(Clone, Copy)]
enum RowKind {
    /// Delta-encoded ids, each `< max`.
    Ids { max: usize },
    /// Delta-encoded ids, strictly ascending, each `< max` (mention rows).
    SortedIds { max: usize },
    /// Delta-encoded ids, each `< max`, each followed by a varint index
    /// into the `MDCT` metadata dictionary (`< dict`).
    Pairs { max: usize, dict: usize },
    /// Succinct ancestor closure rows (ranges or bitset).
    Closure { max: usize },
}

impl FrozenTaxonomyView {
    /// Opens a v3 snapshot over `buf`, validating structure in place.
    ///
    /// Validation covers framing + checksum, the string table (monotone
    /// ends, whole-blob UTF-8, char-boundary ends), both sorted lookup
    /// indexes (strict ascent proves they are permutations and that
    /// strings/concept symbols are unique), symbol/id bounds of every
    /// table, and a full sweep of every varint-CSR payload — directory
    /// offsets, row lengths, per-element bounds, sortedness, edge
    /// metadata, closure canonical form — so query-path decoding can
    /// trust row shapes without re-checking.
    pub fn open(buf: Bytes) -> Result<Self, PersistError> {
        let bytes: &[u8] = &buf;
        let version = persist::peek_version(bytes)?;
        if version != persist::VERSION_VIEW {
            return Err(PersistError::BadVersion(version));
        }

        // ----- section walk: same framing + checksum contract as v2 ------
        const TAGS: [[u8; 4]; 17] = [
            SEC_INTERNER,
            SEC_STR_SORT,
            SEC_ENTITIES,
            SEC_CONCEPTS,
            SEC_CONCEPT_SORT,
            SEC_ENTITY_CONCEPTS,
            SEC_CONCEPT_ENTITIES,
            SEC_CONCEPT_PARENTS,
            SEC_CONCEPT_CHILDREN,
            SEC_ENTITY_ATTRS,
            SEC_ENTITY_ALIASES,
            SEC_ANCESTOR_SUCC,
            SEC_TOPO,
            SEC_DEPTH,
            SEC_MENTIONS,
            SEC_META_DICT,
            SEC_MENTION_HASH,
        ];
        const NAMES: [&str; 17] = [
            "INTR", "SSRT", "ENTS", "CNPT", "CSRT", "ECON", "CENT", "CPAR", "CCHD", "EATT", "EALS",
            "ANCC", "TOPO", "DPTH", "MENT", "MDCT", "MHSH",
        ];
        let mut sec: [Option<Range<usize>>; 17] = std::array::from_fn(|_| None);
        let mut pos = 8usize;
        let mut checksum_seen = false;
        while pos < bytes.len() {
            if checksum_seen {
                return Err(PersistError::BadIndex("data after checksum section"));
            }
            let header = bytes
                .get(
                    pos..pos
                        .checked_add(12)
                        .ok_or(PersistError::Truncated("section header"))?,
                )
                .ok_or(PersistError::Truncated("section header"))?;
            let tag: [u8; 4] = header
                .get(..4)
                .and_then(|b| b.try_into().ok())
                .ok_or(PersistError::Truncated("section header"))?;
            let len = u64_le(header, 4).ok_or(PersistError::Truncated("section header"))?;
            let len = usize::try_from(len).map_err(|_| PersistError::Truncated("section body"))?;
            let body_start = pos
                .checked_add(12)
                .ok_or(PersistError::Truncated("section body"))?;
            let body_end = body_start
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or(PersistError::Truncated("section body"))?;
            if tag == SEC_CHECKSUM {
                if len != 8 {
                    return Err(PersistError::BadIndex("checksum section length"));
                }
                let digest =
                    u64_le(bytes, body_start).ok_or(PersistError::Truncated("checksum"))?;
                if digest != stable_hash(bytes.get(..pos).unwrap_or(&[])) {
                    return Err(PersistError::BadChecksum);
                }
                if body_end != bytes.len() {
                    return Err(PersistError::BadIndex("data after checksum section"));
                }
                checksum_seen = true;
            } else if let Some(slot) = TAGS.iter().position(|t| *t == tag) {
                sec[slot] = Some(body_start..body_end);
            }
            // Unknown tag: a future extension — skip, the checksum covers it.
            pos = body_end;
        }
        if !checksum_seen {
            return Err(PersistError::MissingSection("CKSM"));
        }
        let take = |slot: usize| -> Result<Range<usize>, PersistError> {
            sec.get(slot)
                .and_then(|r| r.clone())
                .ok_or(PersistError::MissingSection(
                    NAMES.get(slot).copied().unwrap_or("?"),
                ))
        };

        // ----- INTR: cumulative-ends string table -------------------------
        let intr = take(0)?;
        let n_strings =
            u32_le(bytes, intr.start).ok_or(PersistError::Truncated("string count"))? as usize;
        if n_strings == 0 {
            // Symbol(0) (the empty string) exists in any interner.
            return Err(PersistError::BadIndex("string count"));
        }
        let str_ends = intr.start + 4;
        let ends_len = n_strings
            .checked_mul(4)
            .ok_or(PersistError::Truncated("string ends"))?;
        let blob_start = str_ends
            .checked_add(ends_len)
            .filter(|&b| b <= intr.end)
            .ok_or(PersistError::Truncated("string ends"))?;
        let str_blob = blob_start..intr.end;
        let blob = bytes.get(str_blob.clone()).unwrap_or(&[]);
        let text = std::str::from_utf8(blob).map_err(|_| PersistError::BadUtf8)?;
        let end_at = |i: usize| u32_le(bytes, str_ends + i * 4).unwrap_or(0) as usize;
        let mut prev_end = 0usize;
        for i in 0..n_strings {
            let e = end_at(i);
            if e < prev_end || (i == 0 && e != 0) {
                return Err(PersistError::BadIndex("string ends"));
            }
            if !text.is_char_boundary(e) {
                return Err(PersistError::BadUtf8);
            }
            prev_end = e;
        }
        if prev_end != blob.len() {
            return Err(PersistError::BadIndex("string blob length"));
        }
        let str_of = |i: usize| -> &str {
            let start = if i == 0 { 0 } else { end_at(i - 1) };
            text.get(start..end_at(i)).unwrap_or("")
        };

        // ----- SSRT: symbols sorted by string bytes -----------------------
        // Strict ascent in a total order proves: all entries distinct, all
        // strings distinct, and (n values < n) the index is a permutation.
        let ssrt = take(1)?;
        if ssrt.end - ssrt.start != ends_len {
            return Err(PersistError::BadIndex("string sort length"));
        }
        let str_sorted = ssrt.start;
        let mut prev_sym: Option<usize> = None;
        for k in 0..n_strings {
            let s = u32_le(bytes, str_sorted + k * 4)
                .ok_or(PersistError::Truncated("string sort"))? as usize;
            if s >= n_strings {
                return Err(PersistError::BadIndex("string sort symbol"));
            }
            if let Some(p) = prev_sym {
                if str_of(p) >= str_of(s) {
                    return Err(PersistError::BadIndex("string sort order"));
                }
            }
            prev_sym = Some(s);
        }

        // ----- ENTS / CNPT: fixed-width tables ----------------------------
        let ents = take(2)?;
        let n_entities =
            u32_le(bytes, ents.start).ok_or(PersistError::Truncated("entity count"))? as usize;
        let ents_len = n_entities
            .checked_mul(8)
            .and_then(|l| l.checked_add(4))
            .ok_or(PersistError::Truncated("entity table"))?;
        if ents.end - ents.start != ents_len {
            return Err(PersistError::BadIndex("entity table length"));
        }
        let entities_at = ents.start + 4;
        for i in 0..n_entities {
            let name = u32_le(bytes, entities_at + i * 8).unwrap_or(u32::MAX) as usize;
            let dis = u32_le(bytes, entities_at + i * 8 + 4).unwrap_or(u32::MAX) as usize;
            if name >= n_strings || dis >= n_strings {
                return Err(PersistError::BadIndex("entity symbol"));
            }
        }
        let cnpt = take(3)?;
        let n_concepts =
            u32_le(bytes, cnpt.start).ok_or(PersistError::Truncated("concept count"))? as usize;
        let cnpt_len = n_concepts
            .checked_mul(4)
            .and_then(|l| l.checked_add(4))
            .ok_or(PersistError::Truncated("concept table"))?;
        if cnpt.end - cnpt.start != cnpt_len {
            return Err(PersistError::BadIndex("concept table length"));
        }
        let concepts_at = cnpt.start + 4;
        for i in 0..n_concepts {
            let sym = u32_le(bytes, concepts_at + i * 4).unwrap_or(u32::MAX) as usize;
            if sym >= n_strings {
                return Err(PersistError::BadIndex("concept symbol"));
            }
        }

        // ----- CSRT: concepts sorted by name symbol -----------------------
        let csrt = take(4)?;
        if csrt.end - csrt.start != n_concepts * 4 {
            return Err(PersistError::BadIndex("concept sort length"));
        }
        let concept_sorted = csrt.start;
        let sym_of = |c: usize| u32_le(bytes, concepts_at + c * 4).unwrap_or(u32::MAX);
        let mut prev_concept: Option<usize> = None;
        for k in 0..n_concepts {
            let c = u32_le(bytes, concept_sorted + k * 4)
                .ok_or(PersistError::Truncated("concept sort"))? as usize;
            if c >= n_concepts {
                return Err(PersistError::BadIndex("concept sort id"));
            }
            if let Some(p) = prev_concept {
                if sym_of(p) >= sym_of(c) {
                    return Err(PersistError::BadIndex("concept sort order"));
                }
            }
            prev_concept = Some(c);
        }

        // ----- MDCT: deduplicated edge-metadata dictionary ----------------
        // Strict ascent by `(source, confidence-bits)` proves the entries
        // are distinct and makes re-encoding deterministic.
        let mdct = take(15)?;
        let meta_dict_len = u32_le(bytes, mdct.start)
            .ok_or(PersistError::Truncated("meta dictionary count"))?
            as usize;
        let mdct_len = meta_dict_len
            .checked_mul(5)
            .and_then(|l| l.checked_add(4))
            .ok_or(PersistError::Truncated("meta dictionary"))?;
        if mdct.end - mdct.start != mdct_len {
            return Err(PersistError::BadIndex("meta dictionary length"));
        }
        let meta_dict_at = mdct.start + 4;
        let mut prev_key: Option<(u8, u32)> = None;
        for i in 0..meta_dict_len {
            let src = bytes
                .get(meta_dict_at + i * 5)
                .copied()
                .ok_or(PersistError::Truncated("meta dictionary"))?;
            Source::from_u8(src).ok_or(PersistError::BadIndex("edge source tag"))?;
            let bits = u32_le(bytes, meta_dict_at + i * 5 + 1)
                .ok_or(PersistError::Truncated("meta dictionary"))?;
            let conf = f32::from_bits(bits);
            if !(0.0..=1.0).contains(&conf) {
                return Err(PersistError::BadIndex("edge confidence"));
            }
            if prev_key.is_some_and(|p| p >= (src, bits)) {
                return Err(PersistError::BadIndex("meta dictionary order"));
            }
            prev_key = Some((src, bits));
        }

        // ----- varint-CSR relations ---------------------------------------
        let (entity_concepts, _) = open_vcsr(
            bytes,
            take(5)?,
            n_entities,
            RowKind::Pairs {
                max: n_concepts,
                dict: meta_dict_len,
            },
            "entity-concept CSR",
        )?;
        let (concept_entities, _) = open_vcsr(
            bytes,
            take(6)?,
            n_concepts,
            RowKind::Pairs {
                max: n_entities,
                dict: meta_dict_len,
            },
            "concept-entity CSR",
        )?;
        let (concept_parents, _) = open_vcsr(
            bytes,
            take(7)?,
            n_concepts,
            RowKind::Pairs {
                max: n_concepts,
                dict: meta_dict_len,
            },
            "concept-parent CSR",
        )?;
        let (concept_children, _) = open_vcsr(
            bytes,
            take(8)?,
            n_concepts,
            RowKind::Ids { max: n_concepts },
            "concept-child CSR",
        )?;
        let (entity_attrs, _) = open_vcsr(
            bytes,
            take(9)?,
            n_entities,
            RowKind::Ids { max: n_strings },
            "entity-attribute CSR",
        )?;
        let (entity_aliases, _) = open_vcsr(
            bytes,
            take(10)?,
            n_entities,
            RowKind::Ids { max: n_strings },
            "entity-alias CSR",
        )?;
        let (ancestors, _) = open_vcsr(
            bytes,
            take(11)?,
            n_concepts,
            RowKind::Closure { max: n_concepts },
            "ancestor closure",
        )?;
        let (by_mention, n_mentions) = open_vcsr(
            bytes,
            take(14)?,
            n_strings,
            RowKind::SortedIds { max: n_entities },
            "mention CSR",
        )?;

        // ----- MHSH: mention-key hash index -------------------------------
        // Each entry's hash is recomputed from the string it names, so a
        // valid section is exactly `sort_by_hash(non-empty mention rows)`
        // — strict ascent on (hash, sym) plus per-entry hash equality
        // forbids duplicates, and the count must match the mention rows.
        // (That the listed syms are exactly the non-empty rows is checked
        // when materialising, like the other cross-section mirrors.)
        let mhsh = take(16)?;
        let mention_hash_n = u32_le(bytes, mhsh.start)
            .ok_or(PersistError::Truncated("mention hash count"))?
            as usize;
        let mhsh_len = mention_hash_n
            .checked_mul(8)
            .and_then(|l| l.checked_add(4))
            .ok_or(PersistError::Truncated("mention hash index"))?;
        if mhsh.end - mhsh.start != mhsh_len {
            return Err(PersistError::BadIndex("mention hash index length"));
        }
        if mention_hash_n != n_mentions {
            return Err(PersistError::BadIndex("mention hash count"));
        }
        let mention_hash_at = mhsh.start + 4;
        let mut prev_hash: Option<(u32, u32)> = None;
        for i in 0..mention_hash_n {
            let hash = u32_le(bytes, mention_hash_at + i * 8)
                .ok_or(PersistError::Truncated("mention hash index"))?;
            let sym = u32_le(bytes, mention_hash_at + i * 8 + 4)
                .ok_or(PersistError::Truncated("mention hash index"))?;
            if sym as usize >= n_strings {
                return Err(PersistError::BadIndex("mention hash symbol"));
            }
            if stable_hash(str_of(sym as usize).as_bytes()) as u32 != hash {
                return Err(PersistError::BadIndex("mention hash value"));
            }
            if prev_hash.is_some_and(|p| p >= (hash, sym)) {
                return Err(PersistError::BadIndex("mention hash order"));
            }
            prev_hash = Some((hash, sym));
        }
        // Paired relations must agree on edge counts; deep symmetry is
        // checked when materialising (`to_frozen`).
        if entity_concepts.entries != concept_entities.entries
            || concept_parents.entries != concept_children.entries
        {
            return Err(PersistError::BadIndex("edge count symmetry"));
        }

        // ----- TOPO / DPTH ------------------------------------------------
        let topo = take(12)?;
        let topo_n =
            u32_le(bytes, topo.start).ok_or(PersistError::Truncated("topo count"))? as usize;
        if topo_n != n_concepts || topo.end - topo.start != 4 + n_concepts * 4 {
            return Err(PersistError::BadIndex("topo/depth length"));
        }
        let topo_at = topo.start + 4;
        for i in 0..n_concepts {
            if u32_le(bytes, topo_at + i * 4).unwrap_or(u32::MAX) as usize >= n_concepts {
                return Err(PersistError::BadIndex("topo concept id"));
            }
        }
        let dpth = take(13)?;
        let dpth_n =
            u32_le(bytes, dpth.start).ok_or(PersistError::Truncated("depth count"))? as usize;
        if dpth_n != n_concepts || dpth.end - dpth.start != 4 + n_concepts * 4 {
            return Err(PersistError::BadIndex("topo/depth length"));
        }
        let depth_at = dpth.start + 4;

        Ok(FrozenTaxonomyView {
            buf,
            n_strings,
            n_entities,
            n_concepts,
            n_mentions,
            str_ends,
            str_blob,
            str_sorted,
            entities_at,
            concepts_at,
            concept_sorted,
            topo_at,
            depth_at,
            meta_dict_at,
            meta_dict_len,
            entity_concepts,
            concept_entities,
            concept_parents,
            concept_children,
            entity_attrs,
            entity_aliases,
            ancestors,
            by_mention,
            mention_hash_at,
        })
    }

    /// Reads `path` and opens it as a v3 view. One read, zero re-copies.
    pub fn load_from_file(path: &Path) -> Result<Self, PersistError> {
        let bytes = std::fs::read(path)?;
        Self::open(Bytes::from(bytes))
    }

    /// The raw snapshot bytes backing this view.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// A zero-copy handle to the backing buffer (`Bytes` is refcounted);
    /// lets `crate::compact` reopen the same snapshot without copying.
    pub(crate) fn bytes_handle(&self) -> Bytes {
        self.buf.clone()
    }

    // ----- raw accessors (panic-free) -------------------------------------

    fn u32_at(&self, off: usize) -> u32 {
        u32_le(&self.buf, off).unwrap_or(0)
    }

    fn str_at(&self, i: usize) -> &str {
        let start = if i == 0 {
            0
        } else {
            self.u32_at(self.str_ends + (i - 1) * 4) as usize
        };
        let end = self.u32_at(self.str_ends + i * 4) as usize;
        self.buf
            .get(self.str_blob.clone())
            .and_then(|blob| blob.get(start..end))
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("")
    }

    /// Binary search over `SSRT`: string → symbol.
    fn lookup_sym(&self, s: &str) -> Option<Symbol> {
        let mut lo = 0usize;
        let mut hi = self.n_strings;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let sym = self.u32_at(self.str_sorted + mid * 4) as usize;
            match self.str_at(sym).cmp(s) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(Symbol(sym as u32)),
            }
        }
        None
    }

    fn concept_sym(&self, c: usize) -> u32 {
        self.u32_at(self.concepts_at + c * 4)
    }

    /// Row `i` of a varint-CSR: one directory jump, then at most
    /// `VCSR_BLOCK - 1` length skips.
    fn vcsr_row(&self, v: &Vcsr, i: usize) -> &[u8] {
        if i >= v.rows {
            return &[];
        }
        let payload = self
            .buf
            .get(v.payload..v.payload + v.payload_len)
            .unwrap_or(&[]);
        let mut pos = self.u32_at(v.dir + (i / VCSR_BLOCK) * 4) as usize;
        let mut skip = i % VCSR_BLOCK;
        loop {
            let Some((len, next)) = varint_at(payload, pos) else {
                return &[];
            };
            let len = usize::try_from(len).unwrap_or(usize::MAX);
            let end = next.saturating_add(len).min(payload.len());
            if skip == 0 {
                return payload.get(next..end).unwrap_or(&[]);
            }
            skip -= 1;
            pos = end;
        }
    }

    // ----- strings & handles ----------------------------------------------

    /// Resolves an interned symbol (empty string for out-of-range symbols).
    pub fn resolve(&self, sym: Symbol) -> &str {
        if sym.index() < self.n_strings {
            self.str_at(sym.index())
        } else {
            ""
        }
    }

    /// Record for an entity id.
    pub fn entity(&self, id: EntityId) -> EntityRecord {
        EntityRecord {
            name: Symbol(self.u32_at(self.entities_at + id.index() * 8)),
            disambig: Symbol(self.u32_at(self.entities_at + id.index() * 8 + 4)),
        }
    }

    /// Full display key: `name（disambig）` or just `name`.
    pub fn entity_key(&self, id: EntityId) -> String {
        let rec = self.entity(id);
        let name = self.resolve(rec.name);
        if rec.disambig == Symbol(0) {
            name.to_string()
        } else {
            format!("{name}（{}）", self.resolve(rec.disambig))
        }
    }

    /// Finds an entity by exact name + disambiguation: resolve both
    /// symbols, then scan the name's mention row for the matching record.
    pub fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId> {
        let name_sym = self.lookup_sym(name)?;
        let dis_sym = match disambig {
            None => Symbol(0),
            Some(d) => self.lookup_sym(d)?,
        };
        self.mention_row(name_sym).find(|&e| {
            self.entity(e)
                == EntityRecord {
                    name: name_sym,
                    disambig: dis_sym,
                }
        })
    }

    /// Finds a concept by name via the `CSRT` binary-search index.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        let sym = self.lookup_sym(name)?;
        let mut lo = 0usize;
        let mut hi = self.n_concepts;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let c = self.u32_at(self.concept_sorted + mid * 4) as usize;
            match self.concept_sym(c).cmp(&sym.0) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(ConceptId(c as u32)),
            }
        }
        None
    }

    /// Concept name.
    pub fn concept_name(&self, id: ConceptId) -> &str {
        self.resolve(Symbol(self.concept_sym(id.index())))
    }

    /// Iterates all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.n_entities as u32).map(EntityId)
    }

    /// Iterates all concept ids.
    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.n_concepts as u32).map(ConceptId)
    }

    // ----- counts ---------------------------------------------------------

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.n_entities
    }

    /// Number of concepts.
    pub fn num_concepts(&self) -> usize {
        self.n_concepts
    }

    /// Entity→concept isA edges.
    pub fn num_entity_is_a(&self) -> usize {
        self.entity_concepts.entries
    }

    /// Subconcept→concept isA edges.
    pub fn num_concept_is_a(&self) -> usize {
        self.concept_parents.entries
    }

    /// Total isA edges.
    pub fn num_is_a(&self) -> usize {
        self.num_entity_is_a() + self.num_concept_is_a()
    }

    /// Number of distinct mention keys (names + aliases).
    pub fn num_mentions(&self) -> usize {
        self.n_mentions
    }

    // ----- adjacency (decoded on the fly) ----------------------------------

    /// Raw `MDCT` entries — the deduplicated edge-metadata dictionary.
    fn meta_dict(&self) -> &[u8] {
        self.buf
            .get(self.meta_dict_at..self.meta_dict_at + self.meta_dict_len * 5)
            .unwrap_or(&[])
    }

    /// Direct concepts of an entity, with edge metadata.
    pub fn concepts_of(&self, e: EntityId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        MetaRowIter::new(
            self.vcsr_row(&self.entity_concepts, e.index()),
            self.meta_dict(),
        )
        .map(|(c, m)| (ConceptId(c), m))
    }

    /// Direct entities of a concept, confidence-ranked (the stable
    /// hyponym enumeration order behind `getEntity` and pagination).
    pub fn entities_of(&self, c: ConceptId) -> impl Iterator<Item = EntityId> + '_ {
        PairIdIter::new(self.vcsr_row(&self.concept_entities, c.index())).map(EntityId)
    }

    /// Direct entities of a concept with each edge's confidence, straight
    /// from the `CENT` row's inline dictionary indices — `getEntity` ranks
    /// hyponyms without probing the entity-side adjacency per hit.
    pub fn entities_with_confidence(
        &self,
        c: ConceptId,
    ) -> impl Iterator<Item = (EntityId, f32)> + '_ {
        MetaRowIter::new(
            self.vcsr_row(&self.concept_entities, c.index()),
            self.meta_dict(),
        )
        .map(|(e, m)| (EntityId(e), m.confidence))
    }

    /// Metadata of the entity→concept isA edge, if present.
    pub fn entity_edge(&self, e: EntityId, c: ConceptId) -> Option<IsAMeta> {
        self.concepts_of(e).find(|&(cc, _)| cc == c).map(|(_, m)| m)
    }

    /// Direct parent concepts, with edge metadata.
    pub fn parents_of(&self, c: ConceptId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        MetaRowIter::new(
            self.vcsr_row(&self.concept_parents, c.index()),
            self.meta_dict(),
        )
        .map(|(c, m)| (ConceptId(c), m))
    }

    /// Direct child concepts.
    pub fn children_of(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        IdRowIter::new(self.vcsr_row(&self.concept_children, c.index())).map(ConceptId)
    }

    /// Attribute symbols of an entity.
    pub fn attributes_of(&self, e: EntityId) -> impl Iterator<Item = Symbol> + '_ {
        IdRowIter::new(self.vcsr_row(&self.entity_attrs, e.index())).map(Symbol)
    }

    /// Alias symbols of an entity.
    pub fn aliases_of(&self, e: EntityId) -> impl Iterator<Item = Symbol> + '_ {
        IdRowIter::new(self.vcsr_row(&self.entity_aliases, e.index())).map(Symbol)
    }

    // ----- precomputed topology -------------------------------------------

    /// All transitive ancestors, ascending — decoded from the succinct
    /// closure row without materialisation.
    pub fn ancestors(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        AncestorIter::new(self.vcsr_row(&self.ancestors, c.index()))
    }

    /// Membership test on the succinct closure row: interval scan for
    /// range rows, O(1) bit probe for bitset rows.
    pub fn ancestor_contains(&self, c: ConceptId, sup: ConceptId) -> bool {
        let row = self.vcsr_row(&self.ancestors, c.index());
        let target = u64::from(sup.0);
        match row.split_first() {
            Some((&ANCC_RANGES, body)) => {
                let mut pos = 0usize;
                let mut cursor = 0u64;
                while pos < body.len() {
                    let Some((gap, n1)) = varint_at(body, pos) else {
                        return false;
                    };
                    let Some((len1, n2)) = varint_at(body, n1) else {
                        return false;
                    };
                    pos = n2;
                    let start = cursor.saturating_add(gap);
                    let end = start.saturating_add(len1).saturating_add(1);
                    if target < start {
                        return false;
                    }
                    if target < end {
                        return true;
                    }
                    cursor = end;
                }
                false
            }
            Some((&ANCC_BITSET, body)) => {
                let Some((base, next)) = varint_at(body, 0) else {
                    return false;
                };
                let bitmap = body.get(next..).unwrap_or(&[]);
                match target.checked_sub(base) {
                    Some(off) => {
                        let off = off as usize;
                        bitmap
                            .get(off / 8)
                            .is_some_and(|b| b & (1 << (off % 8)) != 0)
                    }
                    None => false,
                }
            }
            _ => false,
        }
    }

    /// Topological order of the concepts (parents before children).
    pub fn topo_order(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.n_concepts).map(|i| ConceptId(self.u32_at(self.topo_at + i * 4)))
    }

    /// Exact depth of a concept (0 for roots).
    pub fn depth(&self, c: ConceptId) -> usize {
        if c.index() < self.n_concepts {
            self.u32_at(self.depth_at + c.index() * 4) as usize
        } else {
            0
        }
    }

    /// All transitive descendant concepts in BFS order.
    pub fn descendants(&self, start: ConceptId) -> Vec<ConceptId> {
        if start.index() >= self.n_concepts {
            return Vec::new();
        }
        // cnp-lint: allow(capped-decode) reason="n_concepts is the validated concept-table size from open(), not a raw wire count"
        let mut seen = vec![false; self.n_concepts];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        if let Some(s) = seen.get_mut(start.index()) {
            *s = true;
        }
        queue.push_back(start);
        while let Some(c) = queue.pop_front() {
            for ch in self.children_of(c) {
                if let Some(s) = seen.get_mut(ch.index()) {
                    if !*s {
                        *s = true;
                        order.push(ch);
                        queue.push_back(ch);
                    }
                }
            }
        }
        order
    }

    // ----- mention resolution (men2ent) -----------------------------------

    fn mention_row(&self, sym: Symbol) -> impl Iterator<Item = EntityId> + '_ {
        IdRowIter::new(self.vcsr_row(&self.by_mention, sym.index())).map(EntityId)
    }

    /// Binary search over `MHSH`: mention string → symbol. One hash and
    /// `log n` fixed-width u32 probes, then a string verify on each entry
    /// of the (almost always length-1) matching-hash run — the fast path
    /// `lookup_sym`'s per-probe string comparisons would dominate.
    fn lookup_mention_sym(&self, s: &str) -> Option<Symbol> {
        let hash = stable_hash(s.as_bytes()) as u32;
        let mut lo = 0usize;
        let mut hi = self.n_mentions;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.u32_at(self.mention_hash_at + mid * 8) < hash {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        while lo < self.n_mentions && self.u32_at(self.mention_hash_at + lo * 8) == hash {
            let sym = self.u32_at(self.mention_hash_at + lo * 8 + 4) as usize;
            if self.str_at(sym) == s {
                return Some(Symbol(sym as u32));
            }
            lo += 1;
        }
        None
    }

    /// Resolves a mention to candidate entity senses.
    ///
    /// Same contract as [`FrozenTaxonomy::men2ent`]: a disambiguated key
    /// resolves to exactly its sense, a bare name or alias to every
    /// matching sense. Full keys are resolved by splitting at `（…）` and
    /// scanning the name's mention row — see the module docs for the one
    /// pathological divergence this admits.
    pub fn men2ent(&self, mention: &str) -> Vec<EntityId> {
        if has_disambig(mention) {
            if let Some(id) = self.full_key_entity(mention) {
                return vec![id];
            }
        }
        match self.lookup_mention_sym(mention) {
            Some(sym) => self.mention_row(sym).collect(),
            None => Vec::new(),
        }
    }

    fn full_key_entity(&self, key: &str) -> Option<EntityId> {
        if !key.ends_with('）') {
            return None;
        }
        let close = '）'.len_utf8();
        for (i, open) in key.match_indices('（') {
            let name = key.get(..i)?;
            let Some(dis) = key.get(i + open.len()..key.len() - close) else {
                continue;
            };
            if dis.is_empty() {
                continue;
            }
            let Some(name_sym) = self.lookup_sym(name) else {
                continue;
            };
            let Some(dis_sym) = self.lookup_sym(dis) else {
                continue;
            };
            let hit = self.mention_row(name_sym).find(|&e| {
                self.entity(e)
                    == EntityRecord {
                        name: name_sym,
                        disambig: dis_sym,
                    }
            });
            if hit.is_some() {
                return hit;
            }
        }
        None
    }

    // ----- materialisation ------------------------------------------------

    /// Decodes every section into an owned [`FrozenTaxonomy`], running the
    /// same semantic validation (`validate_frozen`) as the v2 decoder:
    /// topo permutation, closure/depth consistency, relation symmetry,
    /// key uniqueness. This is the "trust but verify" escape hatch — and
    /// the compatibility bridge for callers that need owned slices.
    pub fn to_frozen(&self) -> Result<FrozenTaxonomy, PersistError> {
        let mut interner = Interner::new();
        for i in 0..self.n_strings {
            if interner.intern(self.str_at(i)).index() != i {
                return Err(PersistError::BadIndex("duplicate interned string"));
            }
        }
        let entities: Vec<EntityRecord> = self.entity_ids().map(|e| self.entity(e)).collect();
        let concepts: Vec<Symbol> = (0..self.n_concepts)
            .map(|c| Symbol(self.concept_sym(c)))
            .collect();
        let dict = self.meta_dict();
        let entity_concepts = self.decode_csr(&self.entity_concepts, |r| {
            MetaRowIter::new(r, dict).map(|(c, m)| (ConceptId(c), m))
        });
        // `CENT` mirrors each hyponym edge's metadata inline; a mirror
        // that disagrees with `ECON` would make `getEntity` and
        // `getConcept` report different confidences for the same edge.
        for c in 0..self.n_concepts {
            for (e, m) in MetaRowIter::new(self.vcsr_row(&self.concept_entities, c), dict) {
                let hit = entity_concepts.row(e as usize).iter().any(|&(cc, em)| {
                    cc.index() == c
                        && em.source == m.source
                        && em.confidence.to_bits() == m.confidence.to_bits()
                });
                if !hit {
                    return Err(PersistError::BadIndex("hyponym edge metadata mirror"));
                }
            }
        }
        // `MHSH` must index exactly the non-empty mention rows: open
        // proved count equality and no duplicates, so every row resolving
        // through the index proves the sets coincide.
        for sym in 0..self.n_strings {
            if self.vcsr_row(&self.by_mention, sym).is_empty() {
                continue;
            }
            if self.lookup_mention_sym(self.str_at(sym)) != Some(Symbol(sym as u32)) {
                return Err(PersistError::BadIndex("mention hash mirror"));
            }
        }
        let raw = RawSections {
            interner: Some(interner),
            entities: Some(entities),
            concepts: Some(concepts),
            entity_concepts: Some(entity_concepts),
            concept_entities: Some(
                self.decode_csr(&self.concept_entities, |r| PairIdIter::new(r).map(EntityId)),
            ),
            concept_parents: Some(self.decode_csr(&self.concept_parents, |r| {
                MetaRowIter::new(r, dict).map(|(c, m)| (ConceptId(c), m))
            })),
            concept_children: Some(
                self.decode_csr(&self.concept_children, |r| IdRowIter::new(r).map(ConceptId)),
            ),
            entity_attrs: Some(
                self.decode_csr(&self.entity_attrs, |r| IdRowIter::new(r).map(Symbol)),
            ),
            entity_aliases: Some(
                self.decode_csr(&self.entity_aliases, |r| IdRowIter::new(r).map(Symbol)),
            ),
            ancestors: Some(self.decode_csr(&self.ancestors, AncestorIter::new)),
            topo: Some(self.topo_order().collect()),
            depth: Some(
                (0..self.n_concepts)
                    .map(|i| self.u32_at(self.depth_at + i * 4))
                    .collect(),
            ),
            by_mention: Some(
                self.decode_csr(&self.by_mention, |r| IdRowIter::new(r).map(EntityId)),
            ),
        };
        persist::validate_frozen(raw)
    }

    fn decode_csr<'a, T: Copy, I: Iterator<Item = T>>(
        &'a self,
        v: &Vcsr,
        decode: impl Fn(&'a [u8]) -> I,
    ) -> Csr<T> {
        let mut offsets = vec![0u32];
        let mut data = Vec::new();
        for i in 0..v.rows {
            data.extend(decode(self.vcsr_row(v, i)));
            offsets.push(data.len() as u32);
        }
        Csr::from_parts(offsets, data)
    }
}

// ----- open-time VCSR validation ------------------------------------------

/// Validates one varint-CSR section in a single payload sweep and returns
/// its addressing plus the number of non-empty rows.
fn open_vcsr(
    bytes: &[u8],
    body: Range<usize>,
    expect_rows: usize,
    kind: RowKind,
    what: &'static str,
) -> Result<(Vcsr, usize), PersistError> {
    let len = body.end - body.start;
    if len < 8 {
        return Err(PersistError::Truncated(what));
    }
    let rows = u32_le(bytes, body.start).ok_or(PersistError::Truncated(what))? as usize;
    let entries = u32_le(bytes, body.start + 4).ok_or(PersistError::Truncated(what))? as usize;
    if rows != expect_rows {
        return Err(PersistError::BadIndex(what));
    }
    let dir = body.start + 8;
    let dir_len = rows
        .div_ceil(VCSR_BLOCK)
        .checked_mul(4)
        .ok_or(PersistError::Truncated(what))?;
    let fixed = dir_len
        .checked_add(12)
        .ok_or(PersistError::Truncated(what))?;
    if len < fixed {
        return Err(PersistError::Truncated(what));
    }
    let payload_len = u32_le(bytes, dir + dir_len).ok_or(PersistError::Truncated(what))? as usize;
    if len - fixed != payload_len {
        return Err(PersistError::BadIndex(what));
    }
    let payload_at = dir + dir_len + 4;
    let payload = bytes.get(payload_at..body.end).unwrap_or(&[]);

    let mut pos = 0usize;
    let mut total = 0usize;
    let mut nonempty = 0usize;
    for i in 0..rows {
        if i % VCSR_BLOCK == 0 {
            let d = u32_le(bytes, dir + (i / VCSR_BLOCK) * 4)
                .ok_or(PersistError::Truncated(what))? as usize;
            if d != pos {
                return Err(PersistError::BadIndex(what));
            }
        }
        let (row_len, next) = varint_at(payload, pos).ok_or(PersistError::Truncated(what))?;
        let row_len = usize::try_from(row_len).map_err(|_| PersistError::Truncated(what))?;
        let end = next
            .checked_add(row_len)
            .filter(|&e| e <= payload.len())
            .ok_or(PersistError::Truncated(what))?;
        let row = payload.get(next..end).unwrap_or(&[]);
        let n = match kind {
            RowKind::Ids { max } => validate_id_row(row, max, false, what)?,
            RowKind::SortedIds { max } => validate_id_row(row, max, true, what)?,
            RowKind::Pairs { max, dict } => validate_pair_row(row, max, dict, what)?,
            RowKind::Closure { max } => validate_ancc_row(row, i, max, what)?,
        };
        if n > 0 {
            nonempty += 1;
        }
        total = total.checked_add(n).ok_or(PersistError::BadIndex(what))?;
        pos = end;
    }
    if pos != payload.len() || total != entries {
        return Err(PersistError::BadIndex(what));
    }
    Ok((
        Vcsr {
            rows,
            entries,
            dir,
            payload: payload_at,
            payload_len,
        },
        nonempty,
    ))
}

fn validate_id_row(
    row: &[u8],
    max: usize,
    sorted: bool,
    what: &'static str,
) -> Result<usize, PersistError> {
    let mut pos = 0usize;
    let mut count = 0usize;
    let mut prev = 0i64;
    let max = i64::try_from(max).unwrap_or(i64::MAX);
    while pos < row.len() {
        let (raw, next) = varint_at(row, pos).ok_or(PersistError::Truncated(what))?;
        pos = next;
        let v = if count == 0 {
            i64::try_from(raw).map_err(|_| PersistError::BadIndex(what))?
        } else {
            prev.checked_add(unzigzag(raw))
                .ok_or(PersistError::BadIndex(what))?
        };
        if v < 0 || v >= max {
            return Err(PersistError::BadIndex(what));
        }
        if sorted && count > 0 && v <= prev {
            return Err(PersistError::BadIndex(what));
        }
        prev = v;
        count += 1;
    }
    Ok(count)
}

/// Validates a `(delta id, dictionary index)` pair row: ids in bounds,
/// every index inside the `MDCT` table. The metadata itself was validated
/// once when the dictionary section was parsed.
fn validate_pair_row(
    row: &[u8],
    max: usize,
    dict: usize,
    what: &'static str,
) -> Result<usize, PersistError> {
    let mut pos = 0usize;
    let mut count = 0usize;
    let mut prev = 0i64;
    let max = i64::try_from(max).unwrap_or(i64::MAX);
    let dict = u64::try_from(dict).unwrap_or(u64::MAX);
    while pos < row.len() {
        let (raw, next) = varint_at(row, pos).ok_or(PersistError::Truncated(what))?;
        let v = if count == 0 {
            i64::try_from(raw).map_err(|_| PersistError::BadIndex(what))?
        } else {
            prev.checked_add(unzigzag(raw))
                .ok_or(PersistError::BadIndex(what))?
        };
        if v < 0 || v >= max {
            return Err(PersistError::BadIndex(what));
        }
        let (idx, after) = varint_at(row, next).ok_or(PersistError::Truncated(what))?;
        if idx >= dict {
            return Err(PersistError::BadIndex("edge metadata index"));
        }
        pos = after;
        prev = v;
        count += 1;
    }
    Ok(count)
}

/// Validates one succinct closure row; rejects non-canonical encodings so
/// a decoded row always re-encodes byte-identically.
fn validate_ancc_row(
    row: &[u8],
    row_index: usize,
    max: usize,
    what: &'static str,
) -> Result<usize, PersistError> {
    let Some((&flag, body)) = row.split_first() else {
        return Ok(0);
    };
    let max = max as u64;
    let me = row_index as u64;
    match flag {
        ANCC_RANGES => {
            let mut pos = 0usize;
            let mut cursor = 0u64;
            let mut count = 0usize;
            let mut first = true;
            while pos < body.len() {
                let (gap, n1) = varint_at(body, pos).ok_or(PersistError::Truncated(what))?;
                let (len1, n2) = varint_at(body, n1).ok_or(PersistError::Truncated(what))?;
                pos = n2;
                if !first && gap == 0 {
                    // Adjacent runs must be merged — non-canonical.
                    return Err(PersistError::BadIndex(what));
                }
                let start = cursor
                    .checked_add(gap)
                    .ok_or(PersistError::BadIndex(what))?;
                let run = len1.checked_add(1).ok_or(PersistError::BadIndex(what))?;
                let end = start.checked_add(run).ok_or(PersistError::BadIndex(what))?;
                if end > max {
                    return Err(PersistError::BadIndex(what));
                }
                if me >= start && me < end {
                    return Err(PersistError::BadIndex("self ancestor"));
                }
                cursor = end;
                count = count
                    .checked_add(usize::try_from(run).map_err(|_| PersistError::BadIndex(what))?)
                    .ok_or(PersistError::BadIndex(what))?;
                first = false;
            }
            if count == 0 {
                // A flag byte with no runs: the canonical empty row is
                // zero bytes.
                return Err(PersistError::BadIndex(what));
            }
            Ok(count)
        }
        ANCC_BITSET => {
            let (base, next) = varint_at(body, 0).ok_or(PersistError::Truncated(what))?;
            let bitmap = body.get(next..).unwrap_or(&[]);
            let (Some(&first_byte), Some(&last_byte)) = (bitmap.first(), bitmap.last()) else {
                return Err(PersistError::Truncated(what));
            };
            if first_byte & 1 == 0 || last_byte == 0 {
                // Canonical: `base` is the first member, no trailing zero
                // bytes.
                return Err(PersistError::BadIndex(what));
            }
            let high = (bitmap.len() - 1) * 8 + (7 - last_byte.leading_zeros() as usize);
            let top = base
                .checked_add(high as u64)
                .ok_or(PersistError::BadIndex(what))?;
            if top >= max {
                return Err(PersistError::BadIndex(what));
            }
            if let Some(off) = me.checked_sub(base) {
                let off = usize::try_from(off).unwrap_or(usize::MAX);
                if off / 8 < bitmap.len()
                    && bitmap
                        .get(off / 8)
                        .is_some_and(|b| b & (1 << (off % 8)) != 0)
                {
                    return Err(PersistError::BadIndex("self ancestor"));
                }
            }
            Ok(bitmap.iter().map(|b| b.count_ones() as usize).sum())
        }
        _ => Err(PersistError::BadIndex(what)),
    }
}

// ----- row iterators ------------------------------------------------------

/// Delta+varint id row decoder. Rows validated at open; any residual
/// malformation ends iteration instead of panicking.
struct IdRowIter<'a> {
    row: &'a [u8],
    pos: usize,
    prev: i64,
    first: bool,
}

impl<'a> IdRowIter<'a> {
    fn new(row: &'a [u8]) -> Self {
        IdRowIter {
            row,
            pos: 0,
            prev: 0,
            first: true,
        }
    }
}

impl Iterator for IdRowIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.pos >= self.row.len() {
            return None;
        }
        let (raw, next) = varint_at(self.row, self.pos)?;
        self.pos = next;
        let v = if self.first {
            self.first = false;
            i64::try_from(raw).ok()?
        } else {
            self.prev.checked_add(unzigzag(raw))?
        };
        self.prev = v;
        u32::try_from(v).ok()
    }
}

/// Delta+varint meta row decoder: `(id, MDCT index)` pairs resolved
/// against the shared metadata dictionary into `(id, IsAMeta)`.
struct MetaRowIter<'a> {
    row: &'a [u8],
    /// Raw `MDCT` entries (`source u8 | conf f32` each).
    dict: &'a [u8],
    pos: usize,
    prev: i64,
    first: bool,
}

impl<'a> MetaRowIter<'a> {
    fn new(row: &'a [u8], dict: &'a [u8]) -> Self {
        MetaRowIter {
            row,
            dict,
            pos: 0,
            prev: 0,
            first: true,
        }
    }
}

impl Iterator for MetaRowIter<'_> {
    type Item = (u32, IsAMeta);

    fn next(&mut self) -> Option<(u32, IsAMeta)> {
        if self.pos >= self.row.len() {
            return None;
        }
        let (raw, next) = varint_at(self.row, self.pos)?;
        let v = if self.first {
            i64::try_from(raw).ok()?
        } else {
            self.prev.checked_add(unzigzag(raw))?
        };
        self.first = false;
        self.prev = v;
        let (idx, after) = varint_at(self.row, next)?;
        self.pos = after;
        let at = usize::try_from(idx).ok()?.checked_mul(5)?;
        let entry = self.dict.get(at..at.checked_add(5)?)?;
        let (&src, conf) = entry.split_first()?;
        let source = Source::from_u8(src)?;
        let confidence = f32::from_le_bytes(conf.try_into().ok()?);
        Some((u32::try_from(v).ok()?, IsAMeta::new(source, confidence)))
    }
}

/// Pair-row decoder that yields only the ids, skipping the dictionary
/// index varints without touching the dictionary — the `getEntity`
/// hyponym enumeration path.
struct PairIdIter<'a> {
    row: &'a [u8],
    pos: usize,
    prev: i64,
    first: bool,
}

impl<'a> PairIdIter<'a> {
    fn new(row: &'a [u8]) -> Self {
        PairIdIter {
            row,
            pos: 0,
            prev: 0,
            first: true,
        }
    }
}

impl Iterator for PairIdIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.pos >= self.row.len() {
            return None;
        }
        let (raw, next) = varint_at(self.row, self.pos)?;
        let v = if self.first {
            self.first = false;
            i64::try_from(raw).ok()?
        } else {
            self.prev.checked_add(unzigzag(raw))?
        };
        self.prev = v;
        let (_, after) = varint_at(self.row, next)?;
        self.pos = after;
        u32::try_from(v).ok()
    }
}

/// Succinct closure row decoder: yields ancestors in ascending id order,
/// expanding interval runs or walking bitmap bits — no materialisation.
struct AncestorIter<'a> {
    state: AncState<'a>,
}

enum AncState<'a> {
    Done,
    Ranges {
        body: &'a [u8],
        pos: usize,
        at: u64,
        end: u64,
        cursor: u64,
    },
    Bits {
        bitmap: &'a [u8],
        base: u64,
        bit: usize,
    },
}

impl<'a> AncestorIter<'a> {
    fn new(row: &'a [u8]) -> Self {
        let state = match row.split_first() {
            Some((&ANCC_RANGES, body)) => AncState::Ranges {
                body,
                pos: 0,
                at: 0,
                end: 0,
                cursor: 0,
            },
            Some((&ANCC_BITSET, body)) => match varint_at(body, 0) {
                Some((base, next)) => AncState::Bits {
                    bitmap: body.get(next..).unwrap_or(&[]),
                    base,
                    bit: 0,
                },
                None => AncState::Done,
            },
            _ => AncState::Done,
        };
        AncestorIter { state }
    }
}

impl Iterator for AncestorIter<'_> {
    type Item = ConceptId;

    fn next(&mut self) -> Option<ConceptId> {
        loop {
            match &mut self.state {
                AncState::Done => return None,
                AncState::Ranges {
                    body,
                    pos,
                    at,
                    end,
                    cursor,
                } => {
                    if at < end {
                        let v = *at;
                        *at += 1;
                        return u32::try_from(v).ok().map(ConceptId);
                    }
                    if *pos >= body.len() {
                        self.state = AncState::Done;
                        return None;
                    }
                    let parsed = varint_at(body, *pos)
                        .and_then(|(gap, n1)| varint_at(body, n1).map(|(l, n2)| (gap, l, n2)));
                    let Some((gap, len1, n2)) = parsed else {
                        self.state = AncState::Done;
                        return None;
                    };
                    *pos = n2;
                    let start = cursor.saturating_add(gap);
                    let stop = start.saturating_add(len1).saturating_add(1);
                    *cursor = stop;
                    *at = start;
                    *end = stop;
                }
                AncState::Bits { bitmap, base, bit } => {
                    while let Some(&byte) = bitmap.get(*bit / 8) {
                        let i = *bit;
                        *bit += 1;
                        if byte & (1 << (i % 8)) != 0 {
                            let v = base.saturating_add(i as u64);
                            return u32::try_from(v).ok().map(ConceptId);
                        }
                    }
                    self.state = AncState::Done;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::encode_frozen_v3;
    use crate::store::TaxonomyStore;

    fn demo_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let zhang = s.add_entity("张学友", None);
        s.add_alias(liu, "Andy Lau");
        s.add_attribute(liu, "职业");
        s.add_attribute(liu, "代表作品");
        let actor = s.add_concept("演员");
        let singer = s.add_concept("歌手");
        let person = s.add_concept("人物");
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_entity_is_a(liu, actor, IsAMeta::new(Source::Bracket, 0.96));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.97));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Infobox, 0.9));
        s
    }

    fn demo_view() -> (FrozenTaxonomy, FrozenTaxonomyView) {
        let frozen = FrozenTaxonomy::freeze(&demo_store());
        let view = FrozenTaxonomyView::open(encode_frozen_v3(&frozen)).expect("open v3");
        (frozen, view)
    }

    fn assert_view_matches(frozen: &FrozenTaxonomy, view: &FrozenTaxonomyView) {
        assert_eq!(view.num_entities(), frozen.num_entities());
        assert_eq!(view.num_concepts(), frozen.num_concepts());
        assert_eq!(view.num_is_a(), frozen.num_is_a());
        assert_eq!(view.num_mentions(), frozen.num_mentions());
        assert_eq!(
            view.topo_order().collect::<Vec<_>>(),
            frozen.topo_order().to_vec()
        );
        for e in frozen.entity_ids() {
            assert_eq!(view.entity(e), frozen.entity(e));
            assert_eq!(view.entity_key(e), frozen.entity_key(e));
            assert_eq!(
                view.concepts_of(e).collect::<Vec<_>>(),
                frozen.concepts_of(e).to_vec()
            );
            assert_eq!(
                view.attributes_of(e).collect::<Vec<_>>(),
                frozen.attributes_of(e).to_vec()
            );
            assert_eq!(
                view.aliases_of(e).collect::<Vec<_>>(),
                frozen.aliases_of(e).to_vec()
            );
        }
        for c in frozen.concept_ids() {
            assert_eq!(view.concept_name(c), frozen.concept_name(c));
            assert_eq!(view.depth(c), frozen.depth(c));
            assert_eq!(
                view.entities_of(c).collect::<Vec<_>>(),
                frozen.entities_of(c).to_vec()
            );
            assert_eq!(
                view.parents_of(c).collect::<Vec<_>>(),
                frozen.parents_of(c).to_vec()
            );
            assert_eq!(
                view.children_of(c).collect::<Vec<_>>(),
                frozen.children_of(c).to_vec()
            );
            assert_eq!(
                view.ancestors(c).collect::<Vec<_>>(),
                frozen.ancestors_of(c).to_vec()
            );
            assert_eq!(view.descendants(c), frozen.descendants(c));
            for sup in frozen.concept_ids() {
                assert_eq!(
                    view.ancestor_contains(c, sup),
                    frozen.ancestors_of(c).binary_search(&sup).is_ok(),
                    "ancestor_contains({c:?}, {sup:?})"
                );
            }
        }
    }

    #[test]
    fn view_matches_frozen_on_demo_corpus() {
        let (frozen, view) = demo_view();
        assert_view_matches(&frozen, &view);
    }

    #[test]
    fn mention_resolution_matches_frozen() {
        let (frozen, view) = demo_view();
        for m in [
            "刘德华",
            "刘德华（中国香港男演员）",
            "张学友",
            "Andy Lau",
            "歌手",
            "不存在",
            "不存在（也不存在）",
            "刘德华（错误义项）",
            "",
        ] {
            assert_eq!(view.men2ent(m), frozen.men2ent(m).to_vec(), "mention {m:?}");
        }
        assert_eq!(
            view.find_entity("刘德华", Some("中国香港男演员")),
            frozen.find_entity("刘德华", Some("中国香港男演员"))
        );
        assert_eq!(
            view.find_entity("张学友", None),
            frozen.find_entity("张学友", None)
        );
        assert_eq!(
            view.find_entity("刘德华", None),
            frozen.find_entity("刘德华", None)
        );
        assert_eq!(view.find_entity("没有", None), None);
        for name in ["演员", "歌手", "人物", "没有"] {
            assert_eq!(view.find_concept(name), frozen.find_concept(name));
        }
    }

    /// A closure scattered enough that the encoder picks the bitset form;
    /// the decoders must agree with the owned closure either way.
    #[test]
    fn bitset_closure_rows_decode_correctly() {
        let mut s = TaxonomyStore::new();
        let names: Vec<String> = (0..32).map(|i| format!("p{i}")).collect();
        let parents: Vec<_> = names.iter().map(|n| s.add_concept(n)).collect();
        let child = s.add_concept("child");
        for p in parents.iter().step_by(2) {
            s.add_concept_is_a(child, *p, IsAMeta::new(Source::SubConcept, 0.9));
        }
        let frozen = FrozenTaxonomy::freeze(&s);
        let view = FrozenTaxonomyView::open(encode_frozen_v3(&frozen)).expect("open v3");
        assert_view_matches(&frozen, &view);
        // The scattered row really did take the bitset path: re-encoding
        // through to_frozen stays byte-identical, so the pick is stable.
        let bytes = encode_frozen_v3(&view.to_frozen().expect("materialise"));
        assert_eq!(bytes, Bytes::copy_from_slice(view.as_bytes()));
    }

    #[test]
    fn to_frozen_roundtrips_the_demo_corpus() {
        let (frozen, view) = demo_view();
        let owned = view.to_frozen().expect("materialise");
        assert_eq!(owned.num_entities(), frozen.num_entities());
        assert_eq!(owned.num_is_a(), frozen.num_is_a());
        for e in frozen.entity_ids() {
            assert_eq!(owned.concepts_of(e), frozen.concepts_of(e));
            assert_eq!(owned.entity_key(e), frozen.entity_key(e));
        }
        for c in frozen.concept_ids() {
            assert_eq!(owned.ancestors_of(c), frozen.ancestors_of(c));
            assert_eq!(owned.depth(c), frozen.depth(c));
        }
        // Byte-for-byte stable re-encode.
        assert_eq!(
            encode_frozen_v3(&owned),
            Bytes::copy_from_slice(view.as_bytes())
        );
    }

    #[test]
    fn v2_bytes_are_rejected() {
        let frozen = FrozenTaxonomy::freeze(&demo_store());
        let err = FrozenTaxonomyView::open(frozen.encode()).unwrap_err();
        assert!(matches!(err, PersistError::BadVersion(2)));
    }

    #[test]
    fn every_truncation_prefix_errors_cleanly() {
        let (_, view) = demo_view();
        let bytes = view.as_bytes();
        for cut in 0..bytes.len() {
            let res = FrozenTaxonomyView::open(Bytes::copy_from_slice(&bytes[..cut]));
            assert!(res.is_err(), "prefix of {cut} bytes unexpectedly opened");
        }
    }
}
