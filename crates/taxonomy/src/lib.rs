#![forbid(unsafe_code)]
//! # cnp-taxonomy — taxonomy storage engine for CN-Probase
//!
//! CN-Probase is deployed as a service (paper §V): the taxonomy lives in a
//! store answering three public APIs — `men2ent`, `getConcept`, `getEntity`
//! (Table II). This crate is that storage engine:
//!
//! * [`interner`] — string interning with a fast FxHash-style hasher; every
//!   entity name, concept and attribute is a 4-byte [`Symbol`].
//! * [`store`] — the isA graph: disambiguated entities, concepts,
//!   entity→concept and subconcept→concept edges with per-edge
//!   [`Source`] provenance and confidence, plus entity attribute sets
//!   (needed by the incompatible-concept verification).
//! * [`mention`] — the mention index behind `men2ent` (entity names,
//!   bracket-stripped names, aliases).
//! * [`closure`] — transitive hypernym closure with cycle handling and a
//!   memoized ancestor cache.
//! * [`topo`] — SCC condensation of the concept graph: topological order
//!   and exact one-pass depths.
//! * [`frozen`] — [`FrozenTaxonomy`], the immutable CSR-packed serving
//!   snapshot: freeze a finished store once, then answer every Table II
//!   query lock-free from flat arrays and a precomputed ancestor closure.
//!   (The public serving protocol — `TaxonomyService`, the typed `Query`
//!   enum and the `ProbaseApi` compatibility wrapper — lives in the
//!   `cnp_serve` crate, layered on this snapshot.)
//! * [`query`] — higher-level queries: concept depth, lowest common
//!   ancestors, siblings, Wu–Palmer similarity, conceptualisation.
//! * [`persist`] — compact binary snapshots: v1 persists the mutable
//!   store (load, then freeze), v2 persists the [`FrozenTaxonomy`] itself
//!   behind a sectioned, checksummed layout so serving boots straight from
//!   disk, v3 is the delta/varint-compressed layout the zero-copy view
//!   serves from; [`persist::Snapshot`] dispatches on the version header.
//! * [`varint`] — the LEB128/zigzag primitives of the v3 codec.
//! * [`view`] — [`FrozenTaxonomyView`], the borrowed serving snapshot:
//!   open a v3 buffer with in-place validation and answer every Table II
//!   query straight off the bytes, zero per-section allocation on boot.
//! * [`read`] — [`TaxonomyRead`], the query trait the serving layer is
//!   generic over, plus [`AnySnapshot`] (version-dispatched boot into
//!   owned or view form).
//! * [`stats`] — the size metrics reported in Table I.

pub mod closure;
pub mod compact;
pub mod frozen;
pub mod hash;
pub mod interner;
pub mod mention;
pub mod overlay;
pub mod persist;
pub mod query;
pub mod read;
pub mod stats;
pub mod store;
pub mod topo;
pub mod varint;
pub mod view;

// `FrozenTaxonomyView::open` takes a `Bytes` buffer; re-export the type so
// callers don't need their own dependency on the buffer crate.
pub use bytes::Bytes;
pub use frozen::FrozenTaxonomy;
pub use interner::{Interner, Symbol};
pub use overlay::{DeltaOverlay, IngestDelta, OverlayView};
pub use persist::{PersistError, Snapshot};
pub use read::{AnySnapshot, BootSnapshot, TaxonomyRead};
pub use stats::TaxonomyStats;
pub use store::{ConceptId, EntityId, IsAMeta, Source, TaxonomyStore};
pub use view::FrozenTaxonomyView;
