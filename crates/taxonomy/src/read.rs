//! The read-side abstraction over snapshot representations.
//!
//! [`TaxonomyRead`] is the query surface the serving layer compiles
//! against: every Table II primitive, expressed so both the owned
//! [`FrozenTaxonomy`] (slice-backed) and the borrowed
//! [`FrozenTaxonomyView`] (varint-decoded on the fly) can implement it
//! without allocating adapters. Listing methods return iterators — slices
//! iterate for free, the view decodes lazily.
//!
//! [`AnySnapshot`] is the runtime dispatch: "whatever `Snapshot::load`
//! produced, served through one type". v1/v2 snapshots materialise to the
//! owned form; v3 boots as the zero-copy view. [`BootSnapshot`] is the
//! boot constructor the service's hot-swap `reload` path needs to rebuild
//! a snapshot of the same representation from a file.

use crate::frozen::FrozenTaxonomy;
use crate::interner::Symbol;
use crate::persist::{PersistError, Snapshot};
use crate::store::{ConceptId, EntityId, EntityRecord, IsAMeta};
use crate::view::FrozenTaxonomyView;
use std::path::Path;

/// Read-only Table II query surface over a frozen snapshot.
///
/// `Send + Sync` is part of the contract: implementations are served
/// concurrently behind an `Arc` by `TaxonomyService`.
pub trait TaxonomyRead: Send + Sync {
    /// Resolves an interned symbol to its string.
    fn resolve(&self, sym: Symbol) -> &str;

    /// Record for an entity id.
    fn entity(&self, id: EntityId) -> EntityRecord;

    /// Full display key: `name（disambig）` or just `name`.
    fn entity_key(&self, id: EntityId) -> String {
        let rec = self.entity(id);
        let name = self.resolve(rec.name);
        if rec.disambig == Symbol(0) {
            name.to_string()
        } else {
            format!("{name}（{}）", self.resolve(rec.disambig))
        }
    }

    /// Finds an entity by exact name + disambiguation.
    fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId>;

    /// Finds a concept by name.
    fn find_concept(&self, name: &str) -> Option<ConceptId>;

    /// Concept name.
    fn concept_name(&self, id: ConceptId) -> &str;

    /// Number of entities.
    fn num_entities(&self) -> usize;

    /// Number of concepts.
    fn num_concepts(&self) -> usize;

    /// Total isA edges.
    fn num_is_a(&self) -> usize;

    /// Number of distinct mention keys (names + aliases).
    fn num_mentions(&self) -> usize;

    /// Resolves a mention to candidate entity senses (every sense for a
    /// bare name or alias, exactly one for a disambiguated key).
    fn men2ent(&self, mention: &str) -> Vec<EntityId>;

    /// Direct concepts of an entity, with edge metadata.
    fn concepts_of(&self, e: EntityId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_;

    /// Direct entities of a concept, confidence-ranked.
    fn entities_of(&self, c: ConceptId) -> impl Iterator<Item = EntityId> + '_;

    /// Direct entities of a concept with each edge's confidence — the
    /// `getEntity` ranking input. The default probes the entity-side
    /// adjacency per hit; the view serves both from one `CENT` row.
    fn entities_with_confidence(&self, c: ConceptId) -> impl Iterator<Item = (EntityId, f32)> + '_ {
        self.entities_of(c)
            .map(move |e| (e, self.entity_edge(e, c).map_or(0.0, |m| m.confidence)))
    }

    /// Metadata of the entity→concept isA edge, if present.
    fn entity_edge(&self, e: EntityId, c: ConceptId) -> Option<IsAMeta> {
        self.concepts_of(e).find(|&(cc, _)| cc == c).map(|(_, m)| m)
    }

    /// Direct parent concepts, with edge metadata.
    fn parents_of(&self, c: ConceptId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_;

    /// Direct child concepts.
    fn children_of(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_;

    /// All transitive ancestors of a concept, ascending by id.
    fn ancestors(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_;

    /// Whether `sup` is a transitive ancestor of `c`.
    fn ancestor_contains(&self, c: ConceptId, sup: ConceptId) -> bool;

    /// Exact depth of a concept (0 for roots).
    fn depth(&self, c: ConceptId) -> usize;

    /// All transitive descendant concepts in BFS order.
    fn descendants(&self, start: ConceptId) -> Vec<ConceptId>;
}

impl TaxonomyRead for FrozenTaxonomy {
    fn resolve(&self, sym: Symbol) -> &str {
        FrozenTaxonomy::resolve(self, sym)
    }

    fn entity(&self, id: EntityId) -> EntityRecord {
        FrozenTaxonomy::entity(self, id)
    }

    fn entity_key(&self, id: EntityId) -> String {
        FrozenTaxonomy::entity_key(self, id)
    }

    fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId> {
        FrozenTaxonomy::find_entity(self, name, disambig)
    }

    fn find_concept(&self, name: &str) -> Option<ConceptId> {
        FrozenTaxonomy::find_concept(self, name)
    }

    fn concept_name(&self, id: ConceptId) -> &str {
        FrozenTaxonomy::concept_name(self, id)
    }

    fn num_entities(&self) -> usize {
        FrozenTaxonomy::num_entities(self)
    }

    fn num_concepts(&self) -> usize {
        FrozenTaxonomy::num_concepts(self)
    }

    fn num_is_a(&self) -> usize {
        FrozenTaxonomy::num_is_a(self)
    }

    fn num_mentions(&self) -> usize {
        FrozenTaxonomy::num_mentions(self)
    }

    fn men2ent(&self, mention: &str) -> Vec<EntityId> {
        FrozenTaxonomy::men2ent(self, mention).to_vec()
    }

    fn concepts_of(&self, e: EntityId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        FrozenTaxonomy::concepts_of(self, e).iter().copied()
    }

    fn entities_of(&self, c: ConceptId) -> impl Iterator<Item = EntityId> + '_ {
        FrozenTaxonomy::entities_of(self, c).iter().copied()
    }

    fn entity_edge(&self, e: EntityId, c: ConceptId) -> Option<IsAMeta> {
        FrozenTaxonomy::entity_edge(self, e, c)
    }

    fn parents_of(&self, c: ConceptId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        FrozenTaxonomy::parents_of(self, c).iter().copied()
    }

    fn children_of(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        FrozenTaxonomy::children_of(self, c).iter().copied()
    }

    fn ancestors(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        FrozenTaxonomy::ancestors(self, c)
    }

    fn ancestor_contains(&self, c: ConceptId, sup: ConceptId) -> bool {
        FrozenTaxonomy::ancestors_of(self, c)
            .binary_search(&sup)
            .is_ok()
    }

    fn depth(&self, c: ConceptId) -> usize {
        FrozenTaxonomy::depth(self, c)
    }

    fn descendants(&self, start: ConceptId) -> Vec<ConceptId> {
        FrozenTaxonomy::descendants(self, start)
    }
}

impl TaxonomyRead for FrozenTaxonomyView {
    fn resolve(&self, sym: Symbol) -> &str {
        FrozenTaxonomyView::resolve(self, sym)
    }

    fn entity(&self, id: EntityId) -> EntityRecord {
        FrozenTaxonomyView::entity(self, id)
    }

    fn entity_key(&self, id: EntityId) -> String {
        FrozenTaxonomyView::entity_key(self, id)
    }

    fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId> {
        FrozenTaxonomyView::find_entity(self, name, disambig)
    }

    fn find_concept(&self, name: &str) -> Option<ConceptId> {
        FrozenTaxonomyView::find_concept(self, name)
    }

    fn concept_name(&self, id: ConceptId) -> &str {
        FrozenTaxonomyView::concept_name(self, id)
    }

    fn num_entities(&self) -> usize {
        FrozenTaxonomyView::num_entities(self)
    }

    fn num_concepts(&self) -> usize {
        FrozenTaxonomyView::num_concepts(self)
    }

    fn num_is_a(&self) -> usize {
        FrozenTaxonomyView::num_is_a(self)
    }

    fn num_mentions(&self) -> usize {
        FrozenTaxonomyView::num_mentions(self)
    }

    fn men2ent(&self, mention: &str) -> Vec<EntityId> {
        FrozenTaxonomyView::men2ent(self, mention)
    }

    fn concepts_of(&self, e: EntityId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        FrozenTaxonomyView::concepts_of(self, e)
    }

    fn entities_of(&self, c: ConceptId) -> impl Iterator<Item = EntityId> + '_ {
        FrozenTaxonomyView::entities_of(self, c)
    }

    fn entities_with_confidence(&self, c: ConceptId) -> impl Iterator<Item = (EntityId, f32)> + '_ {
        FrozenTaxonomyView::entities_with_confidence(self, c)
    }

    fn entity_edge(&self, e: EntityId, c: ConceptId) -> Option<IsAMeta> {
        FrozenTaxonomyView::entity_edge(self, e, c)
    }

    fn parents_of(&self, c: ConceptId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        FrozenTaxonomyView::parents_of(self, c)
    }

    fn children_of(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        FrozenTaxonomyView::children_of(self, c)
    }

    fn ancestors(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        FrozenTaxonomyView::ancestors(self, c)
    }

    fn ancestor_contains(&self, c: ConceptId, sup: ConceptId) -> bool {
        FrozenTaxonomyView::ancestor_contains(self, c, sup)
    }

    fn depth(&self, c: ConceptId) -> usize {
        FrozenTaxonomyView::depth(self, c)
    }

    fn descendants(&self, start: ConceptId) -> Vec<ConceptId> {
        FrozenTaxonomyView::descendants(self, start)
    }
}

/// Boots a snapshot of this representation from a file — the constructor
/// behind `TaxonomyService::reload`'s zero-downtime hot swap.
pub trait BootSnapshot: Sized {
    /// Loads a snapshot file into this representation.
    fn boot_from_file(path: &Path) -> Result<Self, PersistError>;
}

impl BootSnapshot for FrozenTaxonomy {
    /// Accepts any snapshot version, materialising to the owned form.
    fn boot_from_file(path: &Path) -> Result<Self, PersistError> {
        Snapshot::load_from_file(path)?.into_frozen()
    }
}

impl BootSnapshot for FrozenTaxonomyView {
    /// v3 only: the zero-copy boot path.
    fn boot_from_file(path: &Path) -> Result<Self, PersistError> {
        FrozenTaxonomyView::load_from_file(path)
    }
}

impl BootSnapshot for AnySnapshot {
    fn boot_from_file(path: &Path) -> Result<Self, PersistError> {
        AnySnapshot::load_from_file(path)
    }
}

/// A snapshot of any on-disk version, served through one type: v1/v2
/// materialise to the owned [`FrozenTaxonomy`], v3 boots as the borrowed
/// [`FrozenTaxonomyView`].
#[derive(Debug, Clone)]
pub enum AnySnapshot {
    /// Owned, slice-backed snapshot (v1 load-then-freeze, v2 decode).
    Owned(FrozenTaxonomy),
    /// Borrowed, buffer-backed view (v3 zero-copy boot).
    View(FrozenTaxonomyView),
}

impl AnySnapshot {
    /// Loads a snapshot file of any version — the front door for servers
    /// that should boot whatever format operations hands them.
    pub fn load_from_file(path: &Path) -> Result<Self, PersistError> {
        Ok(Snapshot::load_from_file(path)?.into_any())
    }

    /// Human-readable serving mode, for boot logs.
    pub fn mode(&self) -> &'static str {
        match self {
            AnySnapshot::Owned(_) => "owned",
            AnySnapshot::View(_) => "view",
        }
    }
}

/// Iterator sum type for [`AnySnapshot`]'s and
/// [`crate::overlay::OverlayView`]'s delegated listings.
pub(crate) enum Either<L, R> {
    L(L),
    R(R),
}

impl<T, L: Iterator<Item = T>, R: Iterator<Item = T>> Iterator for Either<L, R> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            Either::L(l) => l.next(),
            Either::R(r) => r.next(),
        }
    }
}

impl TaxonomyRead for AnySnapshot {
    fn resolve(&self, sym: Symbol) -> &str {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::resolve(f, sym),
            AnySnapshot::View(v) => TaxonomyRead::resolve(v, sym),
        }
    }

    fn entity(&self, id: EntityId) -> EntityRecord {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::entity(f, id),
            AnySnapshot::View(v) => TaxonomyRead::entity(v, id),
        }
    }

    fn entity_key(&self, id: EntityId) -> String {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::entity_key(f, id),
            AnySnapshot::View(v) => TaxonomyRead::entity_key(v, id),
        }
    }

    fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId> {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::find_entity(f, name, disambig),
            AnySnapshot::View(v) => TaxonomyRead::find_entity(v, name, disambig),
        }
    }

    fn find_concept(&self, name: &str) -> Option<ConceptId> {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::find_concept(f, name),
            AnySnapshot::View(v) => TaxonomyRead::find_concept(v, name),
        }
    }

    fn concept_name(&self, id: ConceptId) -> &str {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::concept_name(f, id),
            AnySnapshot::View(v) => TaxonomyRead::concept_name(v, id),
        }
    }

    fn num_entities(&self) -> usize {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::num_entities(f),
            AnySnapshot::View(v) => TaxonomyRead::num_entities(v),
        }
    }

    fn num_concepts(&self) -> usize {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::num_concepts(f),
            AnySnapshot::View(v) => TaxonomyRead::num_concepts(v),
        }
    }

    fn num_is_a(&self) -> usize {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::num_is_a(f),
            AnySnapshot::View(v) => TaxonomyRead::num_is_a(v),
        }
    }

    fn num_mentions(&self) -> usize {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::num_mentions(f),
            AnySnapshot::View(v) => TaxonomyRead::num_mentions(v),
        }
    }

    fn men2ent(&self, mention: &str) -> Vec<EntityId> {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::men2ent(f, mention),
            AnySnapshot::View(v) => TaxonomyRead::men2ent(v, mention),
        }
    }

    fn concepts_of(&self, e: EntityId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        match self {
            AnySnapshot::Owned(f) => Either::L(TaxonomyRead::concepts_of(f, e)),
            AnySnapshot::View(v) => Either::R(TaxonomyRead::concepts_of(v, e)),
        }
    }

    fn entities_of(&self, c: ConceptId) -> impl Iterator<Item = EntityId> + '_ {
        match self {
            AnySnapshot::Owned(f) => Either::L(TaxonomyRead::entities_of(f, c)),
            AnySnapshot::View(v) => Either::R(TaxonomyRead::entities_of(v, c)),
        }
    }

    fn entities_with_confidence(&self, c: ConceptId) -> impl Iterator<Item = (EntityId, f32)> + '_ {
        match self {
            AnySnapshot::Owned(f) => Either::L(TaxonomyRead::entities_with_confidence(f, c)),
            AnySnapshot::View(v) => Either::R(TaxonomyRead::entities_with_confidence(v, c)),
        }
    }

    fn entity_edge(&self, e: EntityId, c: ConceptId) -> Option<IsAMeta> {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::entity_edge(f, e, c),
            AnySnapshot::View(v) => TaxonomyRead::entity_edge(v, e, c),
        }
    }

    fn parents_of(&self, c: ConceptId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        match self {
            AnySnapshot::Owned(f) => Either::L(TaxonomyRead::parents_of(f, c)),
            AnySnapshot::View(v) => Either::R(TaxonomyRead::parents_of(v, c)),
        }
    }

    fn children_of(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        match self {
            AnySnapshot::Owned(f) => Either::L(TaxonomyRead::children_of(f, c)),
            AnySnapshot::View(v) => Either::R(TaxonomyRead::children_of(v, c)),
        }
    }

    fn ancestors(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        match self {
            AnySnapshot::Owned(f) => Either::L(TaxonomyRead::ancestors(f, c)),
            AnySnapshot::View(v) => Either::R(TaxonomyRead::ancestors(v, c)),
        }
    }

    fn ancestor_contains(&self, c: ConceptId, sup: ConceptId) -> bool {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::ancestor_contains(f, c, sup),
            AnySnapshot::View(v) => TaxonomyRead::ancestor_contains(v, c, sup),
        }
    }

    fn depth(&self, c: ConceptId) -> usize {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::depth(f, c),
            AnySnapshot::View(v) => TaxonomyRead::depth(v, c),
        }
    }

    fn descendants(&self, start: ConceptId) -> Vec<ConceptId> {
        match self {
            AnySnapshot::Owned(f) => TaxonomyRead::descendants(f, start),
            AnySnapshot::View(v) => TaxonomyRead::descendants(v, start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::encode_frozen_v3;
    use crate::store::{Source, TaxonomyStore};

    fn demo() -> FrozenTaxonomy {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_entity_is_a(liu, actor, IsAMeta::new(Source::Bracket, 0.96));
        FrozenTaxonomy::freeze(&s)
    }

    /// Generic query code must produce identical answers over all three
    /// `TaxonomyRead` implementations.
    fn describe<T: TaxonomyRead>(t: &T) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "{} {} {} {}",
            t.num_entities(),
            t.num_concepts(),
            t.num_is_a(),
            t.num_mentions()
        ));
        for e in t.men2ent("刘德华") {
            out.push(t.entity_key(e));
            for (c, m) in t.concepts_of(e) {
                out.push(format!(
                    "{} {:?} {}",
                    t.concept_name(c),
                    m.source,
                    m.confidence
                ));
                out.push(format!(
                    "anc {:?} depth {}",
                    t.ancestors(c).collect::<Vec<_>>(),
                    t.depth(c)
                ));
            }
        }
        if let Some(c) = t.find_concept("人物") {
            out.push(format!("desc {:?}", t.descendants(c)));
            out.push(format!("hypo {:?}", t.entities_of(c).collect::<Vec<_>>()));
        }
        out
    }

    #[test]
    fn all_representations_answer_identically() {
        let frozen = demo();
        let view = FrozenTaxonomyView::open(encode_frozen_v3(&frozen)).expect("open");
        let base = describe(&frozen);
        assert_eq!(describe(&view), base);
        assert_eq!(describe(&AnySnapshot::View(view)), base);
        assert_eq!(describe(&AnySnapshot::Owned(frozen)), base);
    }

    #[test]
    fn any_snapshot_boots_every_version_from_file() {
        let frozen = demo();
        let dir = std::env::temp_dir().join(format!("cnp_read_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let v2 = dir.join("v2.cnpb");
        let v3 = dir.join("v3.cnpb");
        frozen.save_to_file(&v2).expect("save v2");
        std::fs::write(&v3, encode_frozen_v3(&frozen)).expect("save v3");
        let a = AnySnapshot::boot_from_file(&v2).expect("boot v2");
        let b = AnySnapshot::boot_from_file(&v3).expect("boot v3");
        assert_eq!(a.mode(), "owned");
        assert_eq!(b.mode(), "view");
        assert_eq!(a.num_is_a(), b.num_is_a());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
