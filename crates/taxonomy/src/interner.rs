//! String interning.
//!
//! A taxonomy at CN-Probase scale stores tens of millions of strings, most
//! of them repeated (concept names appear once per hyponym edge). Interning
//! maps each distinct string to a 4-byte [`Symbol`]; edges then store
//! symbols, and equality is an integer compare.

use crate::hash::FxHashMap;

/// Interned string handle. `Symbol(0)` is the empty string in any interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Index form, for direct table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string interner.
#[derive(Debug, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    /// Creates an interner whose `Symbol(0)` is the empty string.
    pub fn new() -> Self {
        let mut i = Interner {
            map: FxHashMap::default(),
            strings: Vec::new(),
        };
        i.intern("");
        i
    }

    /// Interns `s`, returning its stable symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// Panics when the symbol did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings (including the empty string).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Always false: the empty string is pre-interned.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates `(symbol, string)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("演员");
        let b = i.intern("演员");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "演员");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("演员");
        let b = i.intern("歌手");
        assert_ne!(a, b);
    }

    #[test]
    fn symbol_zero_is_empty_string() {
        let mut i = Interner::new();
        assert_eq!(i.intern(""), Symbol(0));
        assert_eq!(i.resolve(Symbol(0)), "");
    }

    #[test]
    fn get_without_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("无"), None);
        let s = i.intern("无");
        assert_eq!(i.get("无"), Some(s));
    }

    proptest! {
        /// resolve(intern(s)) == s for arbitrary strings; symbols are stable
        /// across later inserts.
        #[test]
        fn roundtrip(strings in proptest::collection::vec("[一-龥a-zA-Z0-9（）]{0,8}", 1..40)) {
            let mut i = Interner::new();
            let syms: Vec<Symbol> = strings.iter().map(|s| i.intern(s)).collect();
            for (s, sym) in strings.iter().zip(&syms) {
                prop_assert_eq!(i.resolve(*sym), s.as_str());
            }
            // Interning everything again must yield identical symbols.
            for (s, sym) in strings.iter().zip(&syms) {
                prop_assert_eq!(i.intern(s), *sym);
            }
        }
    }
}
