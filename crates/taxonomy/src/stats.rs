//! Size metrics — the left-hand columns of the paper's Table I.

use crate::store::TaxonomyStore;
use std::fmt;

/// Taxonomy size statistics.
///
/// The paper reports: 15,066,667 disambiguated entities, 270,026 distinct
/// concepts, 32,398,018 entity–concept relations and 527,288
/// subconcept–concept relations (32,925,306 isA in total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaxonomyStats {
    /// Registered disambiguated entities.
    pub entities: usize,
    /// Entities with at least one isA edge.
    pub linked_entities: usize,
    /// Distinct concepts.
    pub concepts: usize,
    /// Entity→concept isA edges.
    pub entity_is_a: usize,
    /// Subconcept→concept isA edges.
    pub concept_is_a: usize,
}

impl TaxonomyStats {
    /// Gathers statistics from a store.
    pub fn of(store: &TaxonomyStore) -> Self {
        TaxonomyStats {
            entities: store.num_entities(),
            linked_entities: store.num_linked_entities(),
            concepts: store.num_concepts(),
            entity_is_a: store.num_entity_is_a(),
            concept_is_a: store.num_concept_is_a(),
        }
    }

    /// Total isA edges (the Table I “# of isA relations” column).
    pub fn total_is_a(&self) -> usize {
        self.entity_is_a + self.concept_is_a
    }
}

impl fmt::Display for TaxonomyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entities={} (linked {}), concepts={}, isA={} (entity-concept {}, subconcept-concept {})",
            self.entities,
            self.linked_entities,
            self.concepts,
            self.total_is_a(),
            self.entity_is_a,
            self.concept_is_a
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    #[test]
    fn stats_match_store_counts() {
        let mut s = TaxonomyStore::new();
        let e1 = s.add_entity("a", None);
        let _e2 = s.add_entity("b", None);
        let c1 = s.add_concept("c1");
        let c2 = s.add_concept("c2");
        s.add_entity_is_a(e1, c1, IsAMeta::new(Source::Tag, 0.9));
        s.add_concept_is_a(c1, c2, IsAMeta::new(Source::SubConcept, 0.8));
        let st = TaxonomyStats::of(&s);
        assert_eq!(st.entities, 2);
        assert_eq!(st.linked_entities, 1);
        assert_eq!(st.concepts, 2);
        assert_eq!(st.entity_is_a, 1);
        assert_eq!(st.concept_is_a, 1);
        assert_eq!(st.total_is_a(), 2);
    }

    #[test]
    fn display_is_human_readable() {
        let s = TaxonomyStore::new();
        let text = TaxonomyStats::of(&s).to_string();
        assert!(text.contains("entities=0"));
        assert!(text.contains("isA=0"));
    }
}
