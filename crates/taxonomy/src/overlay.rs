//! Delta overlays: the incremental write path.
//!
//! CN-Probase is a *continuously refreshed* taxonomy (paper §V): the
//! pipeline re-runs over new encyclopedia pages while the old snapshot
//! keeps serving. Rebuilding and re-freezing the whole taxonomy for every
//! batch caps write throughput at "re-run the world", so this module adds
//! an LSM-flavoured write path over the immutable snapshots:
//!
//! * [`DeltaOverlay`] — a small immutable segment of taxonomy changes:
//!   new entities/concepts, new or re-weighted isA edges, aliases,
//!   attributes and explicit retractions. Internally it is an ordered op
//!   log (`DeltaOp`), which is also exactly how it replays onto a build
//!   store during compaction — one shared application order, so the
//!   overlay read view and the compacted snapshot can never disagree.
//! * [`OverlayView`] — a merging [`TaxonomyRead`]: any base snapshot plus
//!   the folded deltas, served through the same trait the executor,
//!   `TaxonomyService` and `cnp_server` already compile against. Each
//!   [`OverlayView::apply`] is cheap (it folds one op log; the base is
//!   shared behind an `Arc`) and produces a new immutable value — one
//!   generation swap per ingest, cursors stay generation-bound for free.
//! * [`IngestDelta`] — the serving-side write capability: apply a delta
//!   (cheap for overlay backends, materialising for plain snapshots) and
//!   fold accumulated overlays back into a fresh base (*compaction*, see
//!   `crate::compact`), which is byte-identical to a from-scratch freeze
//!   of the same logical content.
//!
//! Read-through contract: nothing outside this module, `compact.rs` and
//! the `persist.rs` codec may look inside a delta's op log — consumers go
//! through [`TaxonomyRead`] or the public builder API. The `cnp_lint`
//! rule `overlay-read-through` enforces this.

use crate::hash::FxHashMap;
use crate::interner::Symbol;
use crate::mention;
use crate::persist::{self, PersistError};
use crate::read::{BootSnapshot, Either, TaxonomyRead};
use crate::store::{ConceptId, EntityId, EntityRecord, IsAMeta, TaxonomyStore};
use crate::topo::Condensation;
use bytes::Bytes;
use cnp_runtime::Runtime;
use std::path::Path;
use std::sync::Arc;

/// High bit marking a symbol minted by an overlay (the base interner is
/// `u32`-dense from zero and never reaches `2^31` strings; a snapshot that
/// large could not have been encoded). `resolve` dispatches on it.
pub(crate) const OVERLAY_SYM_TAG: u32 = 1 << 31;

/// One taxonomy change, in application order. String-keyed on purpose:
/// a delta is produced against one base generation but may be applied to
/// a later one, and surface keys are the only stable identity across
/// generations (dense ids shift with every compaction).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DeltaOp {
    /// Ensure an entity exists.
    Entity {
        name: String,
        disambig: Option<String>,
    },
    /// Ensure a concept exists.
    Concept { name: String },
    /// Add a surface alias to an entity (created if absent).
    Alias {
        name: String,
        disambig: Option<String>,
        alias: String,
    },
    /// Add an infobox attribute to an entity (created if absent).
    Attribute {
        name: String,
        disambig: Option<String>,
        attr: String,
    },
    /// Upsert an entity→concept isA edge with *exact* metadata: a new
    /// edge appends, an existing edge keeps its row position and takes
    /// `meta` verbatim (this is how a confidence *decrease* propagates —
    /// the build store's `add_entity_is_a` max-merge can only raise).
    EntityIsA {
        name: String,
        disambig: Option<String>,
        concept: String,
        meta: IsAMeta,
    },
    /// Upsert a subconcept→concept isA edge with exact metadata.
    ConceptIsA {
        sub: String,
        sup: String,
        meta: IsAMeta,
    },
    /// Remove an entity→concept edge. Unresolvable keys are a no-op.
    RetractEntityIsA {
        name: String,
        disambig: Option<String>,
        concept: String,
    },
    /// Remove a subconcept→concept edge. Unresolvable keys are a no-op.
    RetractConceptIsA { sub: String, sup: String },
}

/// An immutable batch of taxonomy changes — the unit of incremental
/// ingest. Build one with the `add_*`/`upsert_*`/`retract_*` methods (or
/// `PipelineOutcome::delta_against` in `cnp_core`), ship it as bytes
/// ([`DeltaOverlay::encode`]), and apply it to a serving snapshot through
/// [`IngestDelta`] or to a build store with
/// [`DeltaOverlay::apply_to_store`].
///
/// Application order is the construction order, and both application
/// paths (overlay fold and store replay) interpret the same log with the
/// same semantics — see the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaOverlay {
    pub(crate) ops: Vec<DeltaOp>,
}

fn norm(disambig: Option<&str>) -> Option<String> {
    disambig.filter(|d| !d.is_empty()).map(str::to_string)
}

impl DeltaOverlay {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// True when the delta records no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Records an entity (no-op on application if it already exists).
    pub fn add_entity(&mut self, name: &str, disambig: Option<&str>) {
        self.ops.push(DeltaOp::Entity {
            name: name.to_string(),
            disambig: norm(disambig),
        });
    }

    /// Records a concept.
    pub fn add_concept(&mut self, name: &str) {
        self.ops.push(DeltaOp::Concept {
            name: name.to_string(),
        });
    }

    /// Records a surface alias for an entity.
    pub fn add_alias(&mut self, name: &str, disambig: Option<&str>, alias: &str) {
        self.ops.push(DeltaOp::Alias {
            name: name.to_string(),
            disambig: norm(disambig),
            alias: alias.to_string(),
        });
    }

    /// Records an infobox attribute for an entity.
    pub fn add_attribute(&mut self, name: &str, disambig: Option<&str>, attr: &str) {
        self.ops.push(DeltaOp::Attribute {
            name: name.to_string(),
            disambig: norm(disambig),
            attr: attr.to_string(),
        });
    }

    /// Records an entity→concept isA upsert (exact metadata; see
    /// `DeltaOp::EntityIsA`).
    pub fn upsert_entity_is_a(
        &mut self,
        name: &str,
        disambig: Option<&str>,
        concept: &str,
        meta: IsAMeta,
    ) {
        self.ops.push(DeltaOp::EntityIsA {
            name: name.to_string(),
            disambig: norm(disambig),
            concept: concept.to_string(),
            meta,
        });
    }

    /// Records a subconcept→concept isA upsert.
    pub fn upsert_concept_is_a(&mut self, sub: &str, sup: &str, meta: IsAMeta) {
        self.ops.push(DeltaOp::ConceptIsA {
            sub: sub.to_string(),
            sup: sup.to_string(),
            meta,
        });
    }

    /// Records an entity→concept retraction.
    pub fn retract_entity_is_a(&mut self, name: &str, disambig: Option<&str>, concept: &str) {
        self.ops.push(DeltaOp::RetractEntityIsA {
            name: name.to_string(),
            disambig: norm(disambig),
            concept: concept.to_string(),
        });
    }

    /// Records a subconcept→concept retraction.
    pub fn retract_concept_is_a(&mut self, sub: &str, sup: &str) {
        self.ops.push(DeltaOp::RetractConceptIsA {
            sub: sub.to_string(),
            sup: sup.to_string(),
        });
    }

    /// Serializes the delta (sidecar format, magic `CNPD`).
    pub fn encode(&self) -> Bytes {
        persist::encode_delta(self)
    }

    /// Deserializes a delta, validating structure and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        persist::decode_delta(bytes)
    }

    /// Writes the delta to `path`.
    pub fn save_to_file(&self, path: &Path) -> Result<(), PersistError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Loads a delta from `path`.
    pub fn load_from_file(path: &Path) -> Result<Self, PersistError> {
        Self::decode(&std::fs::read(path)?)
    }

    /// Replays the delta onto a mutable build store, in log order. This is
    /// the compaction half of the write path; [`OverlayView::apply`] folds
    /// the identical log with identical semantics, which is what makes a
    /// compacted snapshot query-identical to the overlay it replaces.
    pub fn apply_to_store(&self, store: &mut TaxonomyStore) {
        for op in &self.ops {
            match op {
                DeltaOp::Entity { name, disambig } => {
                    store.add_entity(name, disambig.as_deref());
                }
                DeltaOp::Concept { name } => {
                    store.add_concept(name);
                }
                DeltaOp::Alias {
                    name,
                    disambig,
                    alias,
                } => {
                    let e = store.add_entity(name, disambig.as_deref());
                    store.add_alias(e, alias);
                }
                DeltaOp::Attribute {
                    name,
                    disambig,
                    attr,
                } => {
                    let e = store.add_entity(name, disambig.as_deref());
                    store.add_attribute(e, attr);
                }
                DeltaOp::EntityIsA {
                    name,
                    disambig,
                    concept,
                    meta,
                } => {
                    let e = store.add_entity(name, disambig.as_deref());
                    let c = store.add_concept(concept);
                    if !store.add_entity_is_a(e, c, *meta) {
                        // Existed: the add max-merged, overwrite exactly.
                        store.set_entity_is_a_meta(e, c, *meta);
                    }
                }
                DeltaOp::ConceptIsA { sub, sup, meta } => {
                    let s = store.add_concept(sub);
                    let p = store.add_concept(sup);
                    if !store.add_concept_is_a(s, p, *meta) {
                        store.set_concept_is_a_meta(s, p, *meta);
                    }
                }
                DeltaOp::RetractEntityIsA {
                    name,
                    disambig,
                    concept,
                } => {
                    if let (Some(e), Some(c)) = (
                        store.find_entity(name, disambig.as_deref()),
                        store.find_concept(concept),
                    ) {
                        store.remove_entity_is_a(e, c);
                    }
                }
                DeltaOp::RetractConceptIsA { sub, sup } => {
                    if let (Some(s), Some(p)) = (store.find_concept(sub), store.find_concept(sup)) {
                        store.remove_concept_is_a(s, p);
                    }
                }
            }
        }
    }
}

/// Patched entity→concept adjacency row: the *final* merged row for one
/// entity, plus the base row length for edge accounting.
#[derive(Debug, Clone, Default)]
struct PatchRow {
    base_len: usize,
    row: Vec<(ConceptId, IsAMeta)>,
}

/// Merged concept-graph tables, materialised only when a delta touches
/// the concept layer (new concepts or subconcept edges). Concepts are
/// orders of magnitude fewer than entities (paper Table I: 270K concepts
/// vs 16M entities), so rebuilding them per apply keeps the entity-heavy
/// side — the actual write volume — incremental.
#[derive(Debug, Clone)]
struct ConceptTables {
    /// Subconcept edge count of the base, recorded at activation.
    base_concept_edges: usize,
    /// Exact merged parent rows (base row order, upserts in place,
    /// additions appended in log order) — matches the compacted store.
    parents: Vec<Vec<(ConceptId, IsAMeta)>>,
    /// Exact merged child rows, same construction.
    children: Vec<Vec<ConceptId>>,
    /// Concepts whose parent row changed *topologically* since the last
    /// finalize (an edge appended or removed, or the concept is
    /// overlay-new) — the seeds of the affected set; drained by
    /// `finalize`. Meta-only upserts don't seed: they cannot move the
    /// closure.
    dirty: Vec<ConceptId>,
    /// Sorted transitive-ancestor rows, recomputed at fold finalize for
    /// *affected* concepts only: the dirty seeds plus their descendants
    /// in the merged graph. Every other concept's closure is provably
    /// unchanged, so reads serve the base's precomputed row instead of
    /// recomputing through the merged graph (the `AncestorsOf` fast
    /// path) — absence in this map *is* the fast path.
    ancestors: FxHashMap<ConceptId, Vec<ConceptId>>,
    /// Exact depths, same condensation DP as the freeze (`O(V + E)` per
    /// fold, run directly over the merged parent rows).
    depth: Vec<u32>,
}

/// The folded state of every applied delta: overlay string/entity/concept
/// tables plus patch indexes over the base. Immutable once built — an
/// apply clones and extends it into the next generation's state.
#[derive(Debug, Clone, Default)]
struct OverlayState {
    /// Full op log across all applied deltas, for compaction replay.
    log: Vec<DeltaOp>,
    /// Number of applied deltas (the overlay depth compaction resets).
    deltas: usize,
    /// Overlay string table; `Symbol(OVERLAY_SYM_TAG | i)` resolves here.
    strings: Vec<String>,
    string_ids: FxHashMap<String, u32>,
    /// Appended entities; id = `base.num_entities() + index`.
    entities: Vec<EntityRecord>,
    /// `(name, disambig-or-empty)` → appended entity id.
    entity_ids: FxHashMap<(String, String), EntityId>,
    /// Full `name（disambig）` keys of appended disambiguated entities.
    full_keys: FxHashMap<String, EntityId>,
    /// New mention strings (names + aliases) → sorted candidate senses
    /// (may include base ids, via aliases added to existing entities).
    mentions: FxHashMap<String, Vec<EntityId>>,
    /// Appended concepts; id = `base.num_concepts() + index`.
    concept_names: Vec<String>,
    concept_ids: FxHashMap<String, ConceptId>,
    /// Final merged entity→concept rows for every touched entity.
    patches: FxHashMap<EntityId, PatchRow>,
    /// Concept → sorted touched entities (the patch rows to consult when
    /// enumerating that concept's extent).
    extent: FxHashMap<ConceptId, Vec<EntityId>>,
    tables: Option<ConceptTables>,
    /// Merged `num_is_a`, set at finalize.
    n_is_a: usize,
    /// Merged `num_mentions`, set at finalize.
    n_mentions: usize,
}

impl OverlayState {
    fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&i) = self.string_ids.get(s) {
            return Symbol(OVERLAY_SYM_TAG | i);
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), i);
        Symbol(OVERLAY_SYM_TAG | i)
    }

    fn push_mention(&mut self, s: &str, id: EntityId) {
        let row = self.mentions.entry(s.to_string()).or_default();
        if let Err(pos) = row.binary_search(&id) {
            row.insert(pos, id);
        }
    }
}

/// A merging [`TaxonomyRead`]: `base` (any snapshot representation)
/// plus zero or more folded [`DeltaOverlay`]s, served as one consistent
/// read view. Values are immutable; [`OverlayView::apply`] returns the
/// next view, sharing the base behind an `Arc` — exactly the shape
/// `TaxonomyService::swap` wants for a per-ingest generation bump.
///
/// Answers are id- and order-identical to a compacted snapshot of the
/// same logical content (asserted by `tests/serve_equivalence.rs`): new
/// entities and concepts take dense ids after the base ranges in log
/// order, which is also the id order a compaction replay assigns.
#[derive(Debug)]
pub struct OverlayView<B> {
    base: Arc<B>,
    state: Arc<OverlayState>,
}

impl<B> Clone for OverlayView<B> {
    fn clone(&self) -> Self {
        OverlayView {
            base: Arc::clone(&self.base),
            state: Arc::clone(&self.state),
        }
    }
}

impl<B: TaxonomyRead> OverlayView<B> {
    /// Wraps a base snapshot with an empty overlay (depth 0). Reads
    /// delegate straight to the base until a delta is applied.
    pub fn new(base: B) -> Self {
        OverlayView {
            base: Arc::new(base),
            state: Arc::new(OverlayState::default()),
        }
    }

    /// The wrapped base snapshot.
    pub fn base(&self) -> &B {
        &self.base
    }

    /// Number of deltas folded on top of the base.
    pub fn overlay_depth(&self) -> usize {
        self.state.deltas
    }

    /// Entities added on top of the base.
    pub fn overlay_entities(&self) -> usize {
        self.state.entities.len()
    }

    /// The accumulated op log (compaction replays it; see
    /// `crate::compact`).
    pub(crate) fn log_ops(&self) -> &[DeltaOp] {
        &self.state.log
    }

    /// Folds one delta, producing the next read view. The base is shared;
    /// only the overlay state is copied and extended, so the cost scales
    /// with overlay size, not taxonomy size.
    pub fn apply(&self, delta: &DeltaOverlay) -> OverlayView<B> {
        let mut st = (*self.state).clone();
        st.deltas += 1;
        for op in &delta.ops {
            st.log.push(op.clone());
            fold_op(self.base.as_ref(), &mut st, op);
        }
        finalize(self.base.as_ref(), &mut st);
        OverlayView {
            base: Arc::clone(&self.base),
            state: Arc::new(st),
        }
    }
}

// ----- fold: one DeltaOp onto the overlay state ---------------------------

fn ensure_entity<B: TaxonomyRead>(
    base: &B,
    st: &mut OverlayState,
    name: &str,
    disambig: Option<&str>,
) -> EntityId {
    let disambig = disambig.filter(|d| !d.is_empty());
    if let Some(id) = base.find_entity(name, disambig) {
        return id;
    }
    let key = (name.to_string(), disambig.unwrap_or("").to_string());
    if let Some(&id) = st.entity_ids.get(&key) {
        return id;
    }
    let id = EntityId((base.num_entities() + st.entities.len()) as u32);
    let name_sym = st.intern(name);
    let dis_sym = disambig.map_or(Symbol(0), |d| st.intern(d));
    st.entities.push(EntityRecord {
        name: name_sym,
        disambig: dis_sym,
    });
    st.entity_ids.insert(key, id);
    st.push_mention(name, id);
    if let Some(d) = disambig {
        st.full_keys.insert(format!("{name}（{d}）"), id);
    }
    // A fresh entity has an (empty) patch row: its adjacency lives
    // entirely in the overlay.
    st.patches.insert(id, PatchRow::default());
    id
}

fn find_entity_no_create<B: TaxonomyRead>(
    base: &B,
    st: &OverlayState,
    name: &str,
    disambig: Option<&str>,
) -> Option<EntityId> {
    let disambig = disambig.filter(|d| !d.is_empty());
    base.find_entity(name, disambig).or_else(|| {
        st.entity_ids
            .get(&(name.to_string(), disambig.unwrap_or("").to_string()))
            .copied()
    })
}

fn activate_tables<'a, B: TaxonomyRead>(
    base: &B,
    tables: &'a mut Option<ConceptTables>,
) -> &'a mut ConceptTables {
    tables.get_or_insert_with(|| {
        let n = base.num_concepts();
        let parents: Vec<Vec<(ConceptId, IsAMeta)>> = (0..n)
            .map(|i| base.parents_of(ConceptId(i as u32)).collect())
            .collect();
        let children: Vec<Vec<ConceptId>> = (0..n)
            .map(|i| base.children_of(ConceptId(i as u32)).collect())
            .collect();
        ConceptTables {
            base_concept_edges: parents.iter().map(Vec::len).sum(),
            parents,
            children,
            dirty: Vec::new(),
            ancestors: FxHashMap::default(),
            depth: Vec::new(),
        }
    })
}

fn ensure_concept<B: TaxonomyRead>(base: &B, st: &mut OverlayState, name: &str) -> ConceptId {
    if let Some(c) = base.find_concept(name) {
        return c;
    }
    if let Some(&c) = st.concept_ids.get(name) {
        return c;
    }
    let c = ConceptId((base.num_concepts() + st.concept_names.len()) as u32);
    st.concept_names.push(name.to_string());
    st.concept_ids.insert(name.to_string(), c);
    let t = activate_tables(base, &mut st.tables);
    t.parents.push(Vec::new());
    t.children.push(Vec::new());
    // The base has no closure row for an overlay-new concept, so it must
    // always be materialised, even while it has no edges.
    t.dirty.push(c);
    c
}

fn find_concept_no_create<B: TaxonomyRead>(
    base: &B,
    st: &OverlayState,
    name: &str,
) -> Option<ConceptId> {
    base.find_concept(name)
        .or_else(|| st.concept_ids.get(name).copied())
}

fn patch_row<'a, B: TaxonomyRead>(
    base: &B,
    patches: &'a mut FxHashMap<EntityId, PatchRow>,
    e: EntityId,
) -> &'a mut PatchRow {
    patches.entry(e).or_insert_with(|| {
        let row: Vec<(ConceptId, IsAMeta)> = base.concepts_of(e).collect();
        PatchRow {
            base_len: row.len(),
            row,
        }
    })
}

fn fold_op<B: TaxonomyRead>(base: &B, st: &mut OverlayState, op: &DeltaOp) {
    match op {
        DeltaOp::Entity { name, disambig } => {
            ensure_entity(base, st, name, disambig.as_deref());
        }
        DeltaOp::Concept { name } => {
            ensure_concept(base, st, name);
        }
        DeltaOp::Alias {
            name,
            disambig,
            alias,
        } => {
            let e = ensure_entity(base, st, name, disambig.as_deref());
            st.push_mention(alias, e);
        }
        DeltaOp::Attribute { name, disambig, .. } => {
            // Attributes are a build-time signal (verification strategy A);
            // they are invisible to TaxonomyRead but must still create the
            // entity, like the store replay does.
            ensure_entity(base, st, name, disambig.as_deref());
        }
        DeltaOp::EntityIsA {
            name,
            disambig,
            concept,
            meta,
        } => {
            let e = ensure_entity(base, st, name, disambig.as_deref());
            let c = ensure_concept(base, st, concept);
            let patch = patch_row(base, &mut st.patches, e);
            match patch.row.iter_mut().find(|(cc, _)| *cc == c) {
                Some(slot) => slot.1 = *meta,
                None => patch.row.push((c, *meta)),
            }
        }
        DeltaOp::ConceptIsA { sub, sup, meta } => {
            let s = ensure_concept(base, st, sub);
            let p = ensure_concept(base, st, sup);
            if s == p {
                return;
            }
            let t = activate_tables(base, &mut st.tables);
            match t.parents[s.index()].iter_mut().find(|(cc, _)| *cc == p) {
                Some(slot) => slot.1 = *meta,
                None => {
                    t.parents[s.index()].push((p, *meta));
                    t.children[p.index()].push(s);
                    t.dirty.push(s);
                }
            }
        }
        DeltaOp::RetractEntityIsA {
            name,
            disambig,
            concept,
        } => {
            let Some(e) = find_entity_no_create(base, st, name, disambig.as_deref()) else {
                return;
            };
            let Some(c) = find_concept_no_create(base, st, concept) else {
                return;
            };
            patch_row(base, &mut st.patches, e)
                .row
                .retain(|&(cc, _)| cc != c);
        }
        DeltaOp::RetractConceptIsA { sub, sup } => {
            let Some(s) = find_concept_no_create(base, st, sub) else {
                return;
            };
            let Some(p) = find_concept_no_create(base, st, sup) else {
                return;
            };
            let t = activate_tables(base, &mut st.tables);
            let before = t.parents[s.index()].len();
            t.parents[s.index()].retain(|&(cc, _)| cc != p);
            if t.parents[s.index()].len() != before {
                t.children[p.index()].retain(|&ss| ss != s);
                t.dirty.push(s);
            }
        }
    }
}

/// Rebuilds the derived indexes after a fold: per-concept extent patches,
/// merged edge/mention counts, and (when the concept layer changed) the
/// transitive closure + depths.
fn finalize<B: TaxonomyRead>(base: &B, st: &mut OverlayState) {
    st.extent.clear();
    let mut delta_entity_edges: isize = 0;
    let mut extent: FxHashMap<ConceptId, Vec<EntityId>> = FxHashMap::default();
    for (&e, patch) in &st.patches {
        delta_entity_edges += patch.row.len() as isize - patch.base_len as isize;
        let mut touched: Vec<ConceptId> = patch.row.iter().map(|&(c, _)| c).collect();
        if patch.base_len > 0 {
            touched.extend(base.concepts_of(e).map(|(c, _)| c));
        }
        touched.sort_unstable();
        touched.dedup();
        for c in touched {
            extent.entry(c).or_default().push(e);
        }
    }
    for row in extent.values_mut() {
        row.sort_unstable();
    }
    st.extent = extent;

    let mut delta_concept_edges: isize = 0;
    if let Some(t) = st.tables.as_mut() {
        let edges: usize = t.parents.iter().map(Vec::len).sum();
        delta_concept_edges = edges as isize - t.base_concept_edges as isize;

        // Depths are rebuilt exactly like the freeze — condensation +
        // one DP pass — run directly over the merged parent rows
        // (`of_rows`), so no carrier store is materialised.
        let n = t.parents.len();
        let ConceptTables {
            parents,
            children,
            dirty,
            ancestors,
            depth,
            ..
        } = t;
        let parents = &*parents;
        let cond = Condensation::of_rows(n, |c| &parents[c.index()][..]);
        *depth = cond.depths_rows(n, |c| &parents[c.index()][..]);

        // The AncestorsOf fast path: a concept's closure can change only
        // if some concept on an upward path from it had its parent row
        // edited — i.e. only the dirty seeds and their descendants in
        // the merged graph (for a removed edge the subject is a seed,
        // and everything below it still reaches it through unchanged
        // child rows). Rows recomputed in an earlier fold stay valid
        // unless re-affected, so this walk is per-apply incremental;
        // every row never affected serves the base's precomputed
        // closure by staying absent from the map.
        let mut affected = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for &c in dirty.iter() {
            if !affected[c.index()] {
                affected[c.index()] = true;
                queue.push_back(c);
            }
        }
        dirty.clear();
        while let Some(c) = queue.pop_front() {
            for &ch in &children[c.index()] {
                if !affected[ch.index()] {
                    affected[ch.index()] = true;
                    queue.push_back(ch);
                }
            }
        }

        // Upward reachability per affected concept, over the merged
        // rows; `seen` is cleared selectively so the scratch allocation
        // is paid once per finalize, not per row.
        let mut seen = vec![false; n];
        let mut stack: Vec<ConceptId> = Vec::new();
        for ci in 0..n {
            if !affected[ci] {
                continue;
            }
            let c = ConceptId(ci as u32);
            let mut row: Vec<ConceptId> = Vec::new();
            for &(p, _) in &parents[ci] {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
            while let Some(v) = stack.pop() {
                row.push(v);
                for &(p, _) in &parents[v.index()] {
                    if !seen[p.index()] {
                        seen[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            for &m in &row {
                seen[m.index()] = false;
            }
            // A cycle through `c` re-discovers `c` itself; the closure
            // convention (matching the freeze) excludes it.
            row.retain(|&m| m != c);
            row.sort_unstable();
            ancestors.insert(c, row);
        }
    }

    st.n_is_a = (base.num_is_a() as isize + delta_entity_edges + delta_concept_edges) as usize;
    st.n_mentions = base.num_mentions()
        + st.mentions
            .keys()
            .filter(|s| base.men2ent(s).is_empty())
            .count();
}

// ----- the merging TaxonomyRead -------------------------------------------

impl<B: TaxonomyRead> TaxonomyRead for OverlayView<B> {
    fn resolve(&self, sym: Symbol) -> &str {
        if sym.0 & OVERLAY_SYM_TAG != 0 {
            &self.state.strings[(sym.0 & !OVERLAY_SYM_TAG) as usize]
        } else {
            self.base.resolve(sym)
        }
    }

    fn entity(&self, id: EntityId) -> EntityRecord {
        let base_n = self.base.num_entities();
        if id.index() < base_n {
            self.base.entity(id)
        } else {
            self.state.entities[id.index() - base_n]
        }
    }

    fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId> {
        find_entity_no_create(self.base.as_ref(), &self.state, name, disambig)
    }

    fn find_concept(&self, name: &str) -> Option<ConceptId> {
        find_concept_no_create(self.base.as_ref(), &self.state, name)
    }

    fn concept_name(&self, id: ConceptId) -> &str {
        let base_n = self.base.num_concepts();
        if id.index() < base_n {
            self.base.concept_name(id)
        } else {
            &self.state.concept_names[id.index() - base_n]
        }
    }

    fn num_entities(&self) -> usize {
        self.base.num_entities() + self.state.entities.len()
    }

    fn num_concepts(&self) -> usize {
        self.base.num_concepts() + self.state.concept_names.len()
    }

    fn num_is_a(&self) -> usize {
        if self.state.deltas == 0 {
            self.base.num_is_a()
        } else {
            self.state.n_is_a
        }
    }

    fn num_mentions(&self) -> usize {
        if self.state.deltas == 0 {
            self.base.num_mentions()
        } else {
            self.state.n_mentions
        }
    }

    fn men2ent(&self, mention: &str) -> Vec<EntityId> {
        if mention::has_disambig(mention) {
            if let Some(&id) = self.state.full_keys.get(mention) {
                return vec![id];
            }
            let base_hit = self.base.men2ent(mention);
            if let [e] = base_hit[..] {
                // The base resolved it through its full-key table (a
                // disambiguated sense whose key is this exact string); full
                // keys shadow mention rows, so no overlay merge applies.
                if self.base.entity(e).disambig != Symbol(0) && self.base.entity_key(e) == mention {
                    return base_hit;
                }
            }
        }
        let mut out = self.base.men2ent(mention);
        if let Some(extra) = self.state.mentions.get(mention) {
            out.extend_from_slice(extra);
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    fn concepts_of(&self, e: EntityId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        match self.state.patches.get(&e) {
            Some(patch) => Either::L(patch.row.iter().copied()),
            None => Either::R(self.base.concepts_of(e)),
        }
    }

    fn entities_of(&self, c: ConceptId) -> impl Iterator<Item = EntityId> + '_ {
        self.entities_with_confidence(c).map(|(e, _)| e)
    }

    fn entities_with_confidence(&self, c: ConceptId) -> impl Iterator<Item = (EntityId, f32)> + '_ {
        let Some(touched) = self.state.extent.get(&c) else {
            return if c.index() < self.base.num_concepts() {
                // Fast path: this concept's extent is untouched by the
                // overlay and the base row is already in serving rank order.
                Either::L(self.base.entities_with_confidence(c))
            } else {
                // A new concept no entity edge ever reached: empty extent.
                Either::R(Vec::new().into_iter())
            };
        };
        let mut pairs: Vec<(EntityId, f32)> = Vec::new();
        if c.index() < self.base.num_concepts() {
            pairs.extend(
                self.base
                    .entities_with_confidence(c)
                    .filter(|(e, _)| touched.binary_search(e).is_err()),
            );
        }
        for e in touched {
            if let Some(&(_, m)) = self
                .state
                .patches
                .get(e)
                .and_then(|p| p.row.iter().find(|&&(cc, _)| cc == c))
            {
                pairs.push((*e, m.confidence));
            }
        }
        // The one serving rank order (`TaxonomyStore::ranked_entities_of`):
        // descending confidence, entity id as tie-break.
        pairs.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Either::R(pairs.into_iter())
    }

    fn entity_edge(&self, e: EntityId, c: ConceptId) -> Option<IsAMeta> {
        match self.state.patches.get(&e) {
            Some(patch) => patch.row.iter().find(|&&(cc, _)| cc == c).map(|&(_, m)| m),
            None => self.base.entity_edge(e, c),
        }
    }

    fn parents_of(&self, c: ConceptId) -> impl Iterator<Item = (ConceptId, IsAMeta)> + '_ {
        match &self.state.tables {
            Some(t) => Either::L(t.parents[c.index()].iter().copied()),
            None => Either::R(self.base.parents_of(c)),
        }
    }

    fn children_of(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        match &self.state.tables {
            Some(t) => Either::L(t.children[c.index()].iter().copied()),
            None => Either::R(self.base.children_of(c)),
        }
    }

    fn ancestors(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        // Fast path: a row absent from the patch map was never on an
        // edited upward path, so the base's precomputed closure is still
        // exact (and a base concept id is guaranteed: overlay-new
        // concepts are always materialised at fold time).
        match self.state.tables.as_ref().and_then(|t| t.ancestors.get(&c)) {
            Some(row) => Either::L(row.iter().copied()),
            None => Either::R(self.base.ancestors(c)),
        }
    }

    fn ancestor_contains(&self, c: ConceptId, sup: ConceptId) -> bool {
        match self.state.tables.as_ref().and_then(|t| t.ancestors.get(&c)) {
            Some(row) => row.binary_search(&sup).is_ok(),
            None => self.base.ancestor_contains(c, sup),
        }
    }

    fn depth(&self, c: ConceptId) -> usize {
        match &self.state.tables {
            Some(t) => t.depth[c.index()] as usize,
            None => self.base.depth(c),
        }
    }

    fn descendants(&self, start: ConceptId) -> Vec<ConceptId> {
        let Some(t) = &self.state.tables else {
            return self.base.descendants(start);
        };
        // Same BFS as `FrozenTaxonomy::descendants`, over the merged
        // child rows.
        let mut seen = vec![false; t.children.len()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(c) = queue.pop_front() {
            for &ch in &t.children[c.index()] {
                if !seen[ch.index()] {
                    seen[ch.index()] = true;
                    order.push(ch);
                    queue.push_back(ch);
                }
            }
        }
        order
    }
}

impl<B: TaxonomyRead + BootSnapshot> BootSnapshot for OverlayView<B> {
    /// Boots the base representation from a file and wraps it with an
    /// empty overlay. A service `reload` therefore *drops* accumulated
    /// overlays — the file is the new truth.
    fn boot_from_file(path: &Path) -> Result<Self, PersistError> {
        Ok(OverlayView::new(B::boot_from_file(path)?))
    }
}

/// The serving-side write capability: apply one [`DeltaOverlay`] to a
/// snapshot, producing the next one, and fold accumulated overlays back
/// into a fresh base (*compaction*).
///
/// [`OverlayView`] implements both cheaply; the plain snapshot
/// representations implement `ingest_delta` by materialising (thaw →
/// replay → re-freeze, see `crate::compact`), so a service over any
/// backend accepts writes and the server's `serve()` bound breaks no
/// existing instantiation.
pub trait IngestDelta: Sized + Send + Sync {
    /// Applies one delta, returning the next serving snapshot.
    fn ingest_delta(&self, delta: &DeltaOverlay) -> Result<Self, PersistError>;

    /// Overlay segments awaiting compaction (0 = fully compacted).
    fn overlay_depth(&self) -> usize {
        0
    }

    /// Folds base + overlays into a fresh base of the same
    /// representation. Byte-identical to a from-scratch freeze of the
    /// same logical content (asserted in `tests/determinism.rs`).
    fn compacted(&self, rt: &Runtime) -> Result<Self, PersistError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::FrozenTaxonomy;
    use crate::store::Source;

    fn base_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_entity_is_a(liu, actor, IsAMeta::new(Source::Bracket, 0.96));
        let zhang = s.add_entity("张学友", None);
        let singer = s.add_concept("歌手");
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.85));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.9));
        s
    }

    fn sample_delta() -> DeltaOverlay {
        let mut d = DeltaOverlay::new();
        d.add_entity("周杰伦", None);
        d.add_alias("周杰伦", None, "Jay Chou");
        d.upsert_entity_is_a("周杰伦", None, "歌手", IsAMeta::new(Source::Tag, 0.97));
        d.upsert_entity_is_a(
            "刘德华",
            Some("中国香港男演员"),
            "歌手",
            IsAMeta::new(Source::Infobox, 0.7),
        );
        d.upsert_concept_is_a("歌手", "艺人", IsAMeta::new(Source::SubConcept, 0.75));
        d.retract_entity_is_a("张学友", None, "歌手");
        d
    }

    /// The one invariant everything else rides on: an overlay view and a
    /// store replay of the same log answer identically.
    fn assert_matches_replay(view: &OverlayView<FrozenTaxonomy>, delta: &DeltaOverlay) {
        let mut store = base_store();
        delta.apply_to_store(&mut store);
        let fresh = FrozenTaxonomy::freeze(&store);
        assert_eq!(view.num_entities(), fresh.num_entities());
        assert_eq!(view.num_concepts(), fresh.num_concepts());
        assert_eq!(TaxonomyRead::num_is_a(view), fresh.num_is_a());
        assert_eq!(TaxonomyRead::num_mentions(view), fresh.num_mentions());
        for i in 0..fresh.num_concepts() {
            let c = ConceptId(i as u32);
            assert_eq!(view.concept_name(c), fresh.concept_name(c), "name {c:?}");
            assert_eq!(
                view.entities_of(c).collect::<Vec<_>>(),
                fresh.entities_of(c).to_vec(),
                "extent of {c:?}"
            );
            assert_eq!(
                view.ancestors(c).collect::<Vec<_>>(),
                fresh.ancestors(c).collect::<Vec<_>>(),
                "ancestors of {c:?}"
            );
            assert_eq!(view.depth(c), fresh.depth(c), "depth of {c:?}");
            assert_eq!(
                view.descendants(c),
                fresh.descendants(c),
                "descendants of {c:?}"
            );
            assert_eq!(
                view.parents_of(c).collect::<Vec<_>>(),
                fresh.parents_of(c).to_vec(),
                "parents of {c:?}"
            );
        }
        for i in 0..fresh.num_entities() {
            let e = EntityId(i as u32);
            assert_eq!(view.entity_key(e), fresh.entity_key(e), "key of {e:?}");
            assert_eq!(
                view.concepts_of(e).collect::<Vec<_>>(),
                fresh.concepts_of(e).to_vec(),
                "concepts of {e:?}"
            );
        }
        for mention in [
            "刘德华",
            "张学友",
            "周杰伦",
            "Jay Chou",
            "刘德华（中国香港男演员）",
        ] {
            assert_eq!(
                view.men2ent(mention),
                TaxonomyRead::men2ent(&fresh, mention),
                "men2ent {mention:?}"
            );
        }
    }

    #[test]
    fn empty_overlay_delegates_to_base() {
        let frozen = FrozenTaxonomy::freeze(&base_store());
        let view = OverlayView::new(frozen.clone());
        assert_eq!(view.overlay_depth(), 0);
        assert_eq!(view.num_entities(), frozen.num_entities());
        assert_eq!(
            view.men2ent("刘德华"),
            FrozenTaxonomy::men2ent(&frozen, "刘德华").to_vec()
        );
    }

    #[test]
    fn overlay_matches_store_replay() {
        let view = OverlayView::new(FrozenTaxonomy::freeze(&base_store()));
        let applied = view.apply(&sample_delta());
        assert_eq!(applied.overlay_depth(), 1);
        assert_matches_replay(&applied, &sample_delta());
    }

    #[test]
    fn stacked_deltas_fold_into_one_overlay() {
        let mut d1 = DeltaOverlay::new();
        d1.upsert_entity_is_a("周杰伦", None, "歌手", IsAMeta::new(Source::Tag, 0.97));
        let mut d2 = DeltaOverlay::new();
        // Lower the confidence (an add-path max-merge could not) and
        // retract a base edge.
        d2.upsert_entity_is_a("周杰伦", None, "歌手", IsAMeta::new(Source::Tag, 0.5));
        d2.retract_concept_is_a("演员", "人物");
        let view = OverlayView::new(FrozenTaxonomy::freeze(&base_store()))
            .apply(&d1)
            .apply(&d2);
        assert_eq!(view.overlay_depth(), 2);
        let mut combined = d1.clone();
        combined.ops.extend(d2.ops.clone());
        assert_matches_replay(&view, &combined);
    }

    #[test]
    fn retraction_of_unknown_keys_is_a_noop() {
        let mut d = DeltaOverlay::new();
        d.retract_entity_is_a("无此人", None, "歌手");
        d.retract_concept_is_a("无此概念", "人物");
        let view = OverlayView::new(FrozenTaxonomy::freeze(&base_store())).apply(&d);
        assert_matches_replay(&view, &d);
    }

    /// `base_store` plus a 男演员 → 演员 subconcept, so a chain deep
    /// enough to have both an edited slice and a spared sibling subtree.
    fn with_male_actor() -> TaxonomyStore {
        let mut s = base_store();
        let male = s.add_concept("男演员");
        let actor = s.find_concept("演员").expect("base concept");
        s.add_concept_is_a(male, actor, IsAMeta::new(Source::SubConcept, 0.7));
        s
    }

    #[test]
    fn untouched_ancestor_rows_delegate_to_the_base_closure() {
        let view = OverlayView::new(FrozenTaxonomy::freeze(&base_store()));
        let applied = view.apply(&sample_delta());
        // sample_delta edits only 歌手's parent row (and mints 艺人):
        // the 演员 → 人物 chain must not have been rematerialised.
        let t = applied
            .state
            .tables
            .as_ref()
            .expect("concept layer touched");
        let actor = applied.find_concept("演员").unwrap();
        let person = applied.find_concept("人物").unwrap();
        let singer = applied.find_concept("歌手").unwrap();
        let artist = applied.find_concept("艺人").unwrap();
        assert!(!t.ancestors.contains_key(&actor), "untouched row patched");
        assert!(!t.ancestors.contains_key(&person), "untouched row patched");
        assert!(t.ancestors.contains_key(&singer), "edited row not patched");
        assert!(t.ancestors.contains_key(&artist), "new row not patched");
        // Served answers are exact on both paths.
        assert_eq!(applied.ancestors(actor).collect::<Vec<_>>(), vec![person]);
        assert!(applied.ancestor_contains(singer, artist));
        assert!(applied.ancestor_contains(singer, person));
        assert_eq!(applied.depth(artist), 0);
        assert_eq!(applied.depth(singer), 1);
    }

    #[test]
    fn retractions_refresh_descendant_rows_and_spare_siblings() {
        let view = OverlayView::new(FrozenTaxonomy::freeze(&with_male_actor()));
        let mut d = DeltaOverlay::new();
        d.retract_concept_is_a("演员", "人物");
        let applied = view.apply(&d);

        let mut store = with_male_actor();
        d.apply_to_store(&mut store);
        let fresh = FrozenTaxonomy::freeze(&store);
        for i in 0..fresh.num_concepts() {
            let c = ConceptId(i as u32);
            assert_eq!(
                applied.ancestors(c).collect::<Vec<_>>(),
                fresh.ancestors(c).collect::<Vec<_>>(),
                "ancestors of {c:?}"
            );
            assert_eq!(applied.depth(c), fresh.depth(c), "depth of {c:?}");
        }
        let t = applied
            .state
            .tables
            .as_ref()
            .expect("concept layer touched");
        let actor = applied.find_concept("演员").unwrap();
        let male = applied.find_concept("男演员").unwrap();
        let singer = applied.find_concept("歌手").unwrap();
        let person = applied.find_concept("人物").unwrap();
        // The retraction's subject and everything below it were
        // recomputed (the removed edge is invisible to a merged-graph
        // walk from 男演员, which is why descendants of the seed join
        // the affected set)…
        assert!(t.ancestors.contains_key(&actor));
        assert!(t.ancestors.contains_key(&male));
        // …while the sibling subtree and the severed parent delegate.
        assert!(!t.ancestors.contains_key(&singer));
        assert!(!t.ancestors.contains_key(&person));
        assert_eq!(applied.ancestors(actor).count(), 0);
        assert_eq!(applied.ancestors(male).collect::<Vec<_>>(), vec![actor]);
    }

    #[test]
    fn stacked_deltas_grow_the_affected_set_incrementally() {
        let mut d1 = DeltaOverlay::new();
        d1.upsert_concept_is_a("歌手", "艺人", IsAMeta::new(Source::SubConcept, 0.75));
        let mut d2 = DeltaOverlay::new();
        d2.upsert_concept_is_a("演员", "艺人", IsAMeta::new(Source::SubConcept, 0.8));
        let applied = OverlayView::new(FrozenTaxonomy::freeze(&base_store()))
            .apply(&d1)
            .apply(&d2);
        // Each apply recomputes only its own affected slice; rows from
        // the first fold persist, and 人物 — never on an edited upward
        // path — still serves the base closure after both.
        let t = applied
            .state
            .tables
            .as_ref()
            .expect("concept layer touched");
        let person = applied.find_concept("人物").unwrap();
        assert!(!t.ancestors.contains_key(&person));
        let mut combined = d1.clone();
        combined.ops.extend(d2.ops.clone());
        assert_matches_replay(&applied, &combined);
    }

    #[test]
    fn cycle_creating_and_breaking_edits_keep_closures_exact() {
        // 人物 → 演员 closes a cycle {演员, 人物}; a second delta breaks
        // it again. Both transitions run through the affected-set walk.
        let mut d1 = DeltaOverlay::new();
        d1.upsert_concept_is_a("人物", "演员", IsAMeta::new(Source::SubConcept, 0.1));
        let mut d2 = DeltaOverlay::new();
        d2.retract_concept_is_a("人物", "演员");
        let view = OverlayView::new(FrozenTaxonomy::freeze(&base_store()));
        let once = view.apply(&d1);
        assert_matches_replay(&once, &d1);
        let twice = once.apply(&d2);
        let mut combined = d1.clone();
        combined.ops.extend(d2.ops.clone());
        assert_matches_replay(&twice, &combined);
    }

    #[test]
    fn new_entities_take_dense_ids_after_the_base() {
        let base = FrozenTaxonomy::freeze(&base_store());
        let n = base.num_entities();
        let view = OverlayView::new(base).apply(&sample_delta());
        let senses = view.men2ent("周杰伦");
        assert_eq!(senses, vec![EntityId(n as u32)]);
        assert_eq!(view.entity_key(senses[0]), "周杰伦");
    }
}
