//! LEB128 varints and zigzag deltas — the primitives of the v3 snapshot
//! codec.
//!
//! The v3 format stores CSR columns as per-row delta streams: the first id
//! of a row is written raw, every later id as the zigzag-encoded signed
//! difference from its predecessor. Confidence-ranked hyponym rows and
//! sorted mention/ancestor rows have small deltas, so most entries shrink
//! from 4 bytes to 1.
//!
//! Every reader here is panic-free and bounds-checked: [`varint_at`]
//! returns `None` instead of reading past the slice, rejects encodings
//! longer than [`MAX_VARINT_BYTES`], and rejects continuation bits that
//! would overflow `u64`. Counts decoded through these helpers are *raw
//! wire values* — any pre-allocation they feed must be `.min()`-capped by
//! the remaining input (the `capped-decode` lint enforces this).

use crate::persist::PersistError;
use bytes::{BufMut, BytesMut};

/// Longest legal encoding of a `u64` (10 × 7 payload bits ≥ 64).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends `v` as a little-endian base-128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

/// Encoded byte length of `v`, without writing it.
pub fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Decodes the varint starting at `buf[pos]`.
///
/// Returns `(value, next_pos)`, or `None` when the slice ends inside the
/// varint, the encoding exceeds [`MAX_VARINT_BYTES`], or a continuation
/// would overflow `u64`. Never panics.
#[inline]
pub fn varint_at(buf: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let b = *buf.get(p)?;
        p += 1;
        let low = u64::from(b & 0x7F);
        // shift == 63 leaves exactly one payload bit of headroom.
        if shift > 63 || (shift == 63 && low > 1) {
            return None;
        }
        value |= low << shift;
        if b & 0x80 == 0 {
            return Some((value, p));
        }
        shift += 7;
    }
}

/// Reads a varint from the front of `buf`, advancing it.
pub fn read_varint(buf: &mut &[u8], what: &'static str) -> Result<u64, PersistError> {
    match varint_at(buf, 0) {
        Some((v, n)) => {
            *buf = &buf[n..];
            Ok(v)
        }
        None => Err(PersistError::Truncated(what)),
    }
}

/// Maps a signed delta onto the unsigned varint domain (0, -1, 1, -2 → 0,
/// 1, 2, 3): small magnitudes of either sign stay small on the wire.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn encode(v: u64) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, v);
        buf.to_vec()
    }

    #[test]
    fn known_encodings() {
        assert_eq!(encode(0), [0x00]);
        assert_eq!(encode(1), [0x01]);
        assert_eq!(encode(127), [0x7F]);
        assert_eq!(encode(128), [0x80, 0x01]);
        assert_eq!(encode(300), [0xAC, 0x02]);
        assert_eq!(encode(u64::MAX).len(), MAX_VARINT_BYTES);
    }

    #[test]
    fn truncated_and_overlong_inputs_are_rejected() {
        // Ends inside a continuation.
        assert_eq!(varint_at(&[0x80], 0), None);
        assert_eq!(varint_at(&[], 0), None);
        assert_eq!(varint_at(&[0x00], 1), None);
        // 11 continuation bytes: longer than any legal u64 encoding.
        assert_eq!(varint_at(&[0x80; 11], 0), None);
        // Tenth byte carrying more than the one remaining payload bit.
        let mut overflow = vec![0xFF; 9];
        overflow.push(0x02);
        assert_eq!(varint_at(&overflow, 0), None);
        // ... while the max value itself decodes.
        let mut max = vec![0xFF; 9];
        max.push(0x01);
        assert_eq!(varint_at(&max, 0), Some((u64::MAX, 10)));
    }

    #[test]
    fn read_varint_advances_and_reports_truncation() {
        let bytes = encode(300);
        let mut buf: &[u8] = &bytes;
        assert_eq!(read_varint(&mut buf, "n").unwrap(), 300);
        assert!(buf.is_empty());
        let mut cut: &[u8] = &bytes[..1];
        assert!(matches!(
            read_varint(&mut cut, "n"),
            Err(PersistError::Truncated("n"))
        ));
    }

    #[test]
    fn zigzag_known_values() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
    }

    proptest! {
        #[test]
        fn roundtrip_u64(v in 0u64..=u64::MAX) {
            let bytes = encode(v);
            prop_assert_eq!(bytes.len(), varint_len(v));
            prop_assert_eq!(varint_at(&bytes, 0), Some((v, bytes.len())));
        }

        #[test]
        fn roundtrip_zigzag(v in i64::MIN..=i64::MAX) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }

        /// Decoding arbitrary bytes never panics and never reads past the
        /// slice.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=u8::MAX, 0..24), pos in 0usize..26) {
            if let Some((_, next)) = varint_at(&bytes, pos) {
                prop_assert!(next <= bytes.len());
                prop_assert!(next > pos);
            }
        }
    }
}
