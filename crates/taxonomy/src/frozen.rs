//! Frozen read-path snapshot of a finished taxonomy.
//!
//! The deployed CN-Probase answers Table II traffic at scale (43.9 M
//! `men2ent` calls over six months); serving those queries off the mutable
//! build-time [`TaxonomyStore`] means pointer-chasing `Vec<Vec<_>>`
//! adjacency, a mutex-guarded ancestor cache and per-call depth/LCA
//! recomputation. [`FrozenTaxonomy`] is the immutable, densely packed
//! serving snapshot: every adjacency is CSR (offset + flat array), the
//! concept DAG's topological order and exact depths are precomputed, and
//! the transitive-ancestor closure is materialised so `getConcept
//! (transitive)` and similarity queries read slices instead of running a
//! BFS — lock-free, `&self`-only, shareable across any number of threads.
//!
//! Freeze once after construction ([`crate::closure::break_cycles`] first;
//! a still-cyclic store is tolerated by collapsing each cycle to one
//! component), then serve forever. Construction cost is `O(V + E)` for the
//! graph plus the size of the ancestor closure — for taxonomies (shallow,
//! near-tree DAGs) that closure is small; it is *not* recommended for
//! arbitrary dense DAGs.

use crate::hash::FxHashMap;
use crate::interner::{Interner, Symbol};
use crate::store::{ConceptId, EntityId, EntityRecord, IsAMeta, TaxonomyStore};
use crate::topo::Condensation;
use cnp_runtime::Runtime;

/// Compressed sparse row storage: `row(i)` is a contiguous slice.
#[derive(Debug, Clone, Default)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T: Copy> Csr<T> {
    /// Packs `rows` into one flat array plus offsets.
    fn from_rows<'a, I>(rows: I) -> Self
    where
        T: 'a,
        I: Iterator<Item = &'a [T]>,
    {
        let mut offsets = Vec::with_capacity(rows.size_hint().0 + 1);
        offsets.push(0);
        let mut data = Vec::new();
        for row in rows {
            data.extend_from_slice(row);
            // cnp-lint: allow(no-panic-serving-path) reason="build-time freeze path, not the serving read path; a >4 GiB CSR is a build bug worth aborting on"
            offsets.push(u32::try_from(data.len()).expect("CSR overflow"));
        }
        Csr { offsets, data }
    }

    /// Rebuilds a CSR from its wire representation. The caller
    /// ([`crate::persist`]) has already validated the invariants: first
    /// offset 0, monotone offsets, final offset equal to `data.len()`.
    pub(crate) fn from_parts(offsets: Vec<u32>, data: Vec<T>) -> Self {
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(offsets.last().copied().unwrap_or(0) as usize, data.len());
        Csr { offsets, data }
    }

    /// Raw `(offsets, data)` view for the snapshot codec.
    pub(crate) fn parts(&self) -> (&[u32], &[T]) {
        (&self.offsets, &self.data)
    }

    /// Flat entry array (all rows concatenated), for the snapshot codec.
    pub(crate) fn data(&self) -> &[T] {
        &self.data
    }

    /// The `i`-th row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total entries across all rows.
    pub fn num_entries(&self) -> usize {
        self.data.len()
    }
}

/// Immutable, read-optimized snapshot of a [`TaxonomyStore`].
///
/// All lookups are `&self`, allocation-free where the result is a slice,
/// and never take a lock — the struct is `Send + Sync` by construction.
#[derive(Debug, Clone)]
pub struct FrozenTaxonomy {
    // Fields are `pub(crate)` so the snapshot codec in [`crate::persist`]
    // can serialize and (after validation) reconstruct the struct.
    pub(crate) interner: Interner,
    pub(crate) entities: Vec<EntityRecord>,
    pub(crate) entity_by_key: FxHashMap<(Symbol, Symbol), EntityId>,
    pub(crate) concepts: Vec<Symbol>,
    pub(crate) concept_by_sym: FxHashMap<Symbol, ConceptId>,
    pub(crate) entity_concepts: Csr<(ConceptId, IsAMeta)>,
    pub(crate) concept_entities: Csr<EntityId>,
    pub(crate) concept_parents: Csr<(ConceptId, IsAMeta)>,
    pub(crate) concept_children: Csr<ConceptId>,
    pub(crate) entity_attrs: Csr<Symbol>,
    pub(crate) entity_aliases: Csr<Symbol>,
    /// Transitive-ancestor closure, one sorted row per concept.
    pub(crate) ancestors: Csr<ConceptId>,
    /// Topological order: parents before children, cycles adjacent.
    pub(crate) topo: Vec<ConceptId>,
    /// Exact depth per concept (longest chain to a root, cycles collapsed).
    pub(crate) depth: Vec<u32>,
    /// Mention table indexed by symbol: names and aliases → sorted senses.
    pub(crate) by_mention: Csr<EntityId>,
    /// Disambiguated display keys (`name（disambig）`) → the single sense.
    pub(crate) full_keys: FxHashMap<String, EntityId>,
}

impl FrozenTaxonomy {
    /// Freezes a finished store into the serving snapshot, parallelising
    /// the ancestor-closure materialisation over a default [`Runtime`].
    pub fn freeze(store: &TaxonomyStore) -> Self {
        Self::freeze_with(store, &Runtime::default())
    }

    /// Freezes a finished store on an existing [`Runtime`]. The snapshot
    /// is identical at every thread count.
    pub fn freeze_with(store: &TaxonomyStore, rt: &Runtime) -> Self {
        let interner = store.interner().clone();
        let n_entities = store.num_entities();
        let n_concepts = store.num_concepts();

        let entities: Vec<EntityRecord> = store.entity_ids().map(|e| store.entity(e)).collect();
        let mut entity_by_key = FxHashMap::default();
        for (i, rec) in entities.iter().enumerate() {
            entity_by_key.insert((rec.name, rec.disambig), EntityId(i as u32));
        }

        let concepts: Vec<Symbol> = store
            .concept_ids()
            .map(|c| {
                interner
                    .get(store.concept_name(c))
                    // cnp-lint: allow(no-panic-serving-path) reason="build-time freeze path: every concept name was interned in the loop above this one"
                    .expect("concept name is interned")
            })
            .collect();
        let mut concept_by_sym = FxHashMap::default();
        for (i, &sym) in concepts.iter().enumerate() {
            concept_by_sym.insert(sym, ConceptId(i as u32));
        }

        let entity_id = |i: usize| EntityId(i as u32);
        let concept_id = |i: usize| ConceptId(i as u32);
        let entity_concepts =
            Csr::from_rows((0..n_entities).map(|i| store.concepts_of(entity_id(i))));
        // Hyponym rows are *ranked* (`TaxonomyStore::ranked_entities_of`:
        // descending edge confidence, entity id as tie-break). This is the
        // serving-side enumeration order of `getEntity`, and pinning it at
        // freeze time is what makes limits and pagination cursors
        // deterministic across runs and thread counts (the build store
        // keeps insertion order, which depends on extraction scheduling
        // history).
        let ranked_rows: Vec<Vec<EntityId>> =
            rt.par_index_map(n_concepts, |ci| store.ranked_entities_of(concept_id(ci)));
        let concept_entities = Csr::from_rows(ranked_rows.iter().map(|r| r.as_slice()));
        let concept_parents =
            Csr::from_rows((0..n_concepts).map(|i| store.parents_of(concept_id(i))));
        let concept_children =
            Csr::from_rows((0..n_concepts).map(|i| store.children_of(concept_id(i))));
        let entity_attrs =
            Csr::from_rows((0..n_entities).map(|i| store.attributes_of(entity_id(i))));
        let entity_aliases =
            Csr::from_rows((0..n_entities).map(|i| store.aliases_of(entity_id(i))));

        // Topology: condensation → topo order, one-pass exact depths, and
        // the materialised ancestor closure (per component, then fanned out
        // to members so cycle members see each other as ancestors, exactly
        // like the BFS reachability of `closure::ancestors`).
        //
        // The component-reachability DP stays serial — component `i` reads
        // the finished rows of its parents, so it is inherently ordered —
        // but it is tiny (one row per component). The expensive part, one
        // sorted ancestor row per *concept*, has no cross-row dependency
        // and fans out over the runtime; each row is computed from the same
        // inputs regardless of scheduling, so the snapshot is byte-identical
        // at every thread count.
        let cond = Condensation::of(store);
        let depth = cond.depths(store);
        let topo = cond.topo_order();
        let comps = cond.components();
        let mut comp_reach: Vec<Vec<ConceptId>> = Vec::with_capacity(comps.len());
        for (i, members) in comps.iter().enumerate() {
            let mut set: Vec<ConceptId> = Vec::new();
            for &c in members {
                for &(p, _) in store.parents_of(c) {
                    let ps = cond.component_of(p);
                    if ps != i {
                        set.extend_from_slice(&comps[ps]);
                        set.extend_from_slice(&comp_reach[ps]);
                    }
                }
            }
            set.sort_unstable();
            set.dedup();
            comp_reach.push(set);
        }
        let ancestor_rows: Vec<Vec<ConceptId>> = rt.par_index_map(n_concepts, |ci| {
            let c = ConceptId(ci as u32);
            let comp = cond.component_of(c);
            let members = &comps[comp];
            let mut row: Vec<ConceptId> = members.iter().copied().filter(|&m| m != c).collect();
            row.extend_from_slice(&comp_reach[comp]);
            row.sort_unstable();
            row
        });
        let ancestors = Csr::from_rows(ancestor_rows.iter().map(|r| r.as_slice()));

        // Mention table: one row per interned symbol (symbols are dense),
        // covering entity names and aliases; full keys only exist for
        // disambiguated senses, so a bare name can never shadow them.
        let mut mention_rows: Vec<Vec<EntityId>> = vec![Vec::new(); interner.len()];
        let mut full_keys = FxHashMap::default();
        for (i, rec) in entities.iter().enumerate() {
            let id = entity_id(i);
            mention_rows[rec.name.index()].push(id);
            for &alias in store.aliases_of(id) {
                mention_rows[alias.index()].push(id);
            }
            if rec.disambig != Symbol(0) {
                full_keys.insert(store.entity_key(id), id);
            }
        }
        for row in &mut mention_rows {
            row.sort_unstable();
            row.dedup();
        }
        let by_mention = Csr::from_rows(mention_rows.iter().map(|r| r.as_slice()));

        FrozenTaxonomy {
            interner,
            entities,
            entity_by_key,
            concepts,
            concept_by_sym,
            entity_concepts,
            concept_entities,
            concept_parents,
            concept_children,
            entity_attrs,
            entity_aliases,
            ancestors,
            topo,
            depth,
            by_mention,
            full_keys,
        }
    }

    // ----- persistence (snapshot format v2) -------------------------------

    /// Serializes the snapshot to bytes — snapshot format v2, the
    /// sectioned, checksummed layout of [`crate::persist`]. Loading it back
    /// ([`Self::decode`]) is a validate-and-go boot: no Tarjan pass, no
    /// depth DP, no closure materialisation.
    pub fn encode(&self) -> bytes::Bytes {
        crate::persist::encode_frozen(self)
    }

    /// Deserializes a v2 snapshot, validating every bound, the CSR and
    /// closure invariants and the content checksum. For version dispatch
    /// (v1 store snapshots included) use [`crate::persist::Snapshot::load`].
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::persist::PersistError> {
        crate::persist::decode_frozen(bytes)
    }

    /// Writes a v2 snapshot to `path`.
    pub fn save_to_file(&self, path: &std::path::Path) -> Result<(), crate::persist::PersistError> {
        crate::persist::save_frozen_to_file(self, path)
    }

    /// Loads a v2 snapshot from `path`.
    pub fn load_from_file(path: &std::path::Path) -> Result<Self, crate::persist::PersistError> {
        crate::persist::load_frozen_from_file(path)
    }

    // ----- strings & handles ----------------------------------------------

    /// Resolves an interned symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Read-only access to the snapshot's interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Finds an entity by exact name + disambiguation.
    pub fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId> {
        let name_sym = self.interner.get(name)?;
        let dis_sym = match disambig {
            None => Symbol(0),
            Some(d) => self.interner.get(d)?,
        };
        self.entity_by_key.get(&(name_sym, dis_sym)).copied()
    }

    /// Record for an entity id.
    pub fn entity(&self, id: EntityId) -> EntityRecord {
        self.entities[id.index()]
    }

    /// Full display key: `name（disambig）` or just `name`.
    pub fn entity_key(&self, id: EntityId) -> String {
        let rec = self.entities[id.index()];
        let name = self.interner.resolve(rec.name);
        if rec.disambig == Symbol(0) {
            name.to_string()
        } else {
            format!("{name}（{}）", self.interner.resolve(rec.disambig))
        }
    }

    /// Finds a concept by name.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        let sym = self.interner.get(name)?;
        self.concept_by_sym.get(&sym).copied()
    }

    /// Concept name.
    pub fn concept_name(&self, id: ConceptId) -> &str {
        self.interner.resolve(self.concepts[id.index()])
    }

    /// Iterates all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len() as u32).map(EntityId)
    }

    /// Iterates all concept ids.
    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    // ----- counts ---------------------------------------------------------

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of concepts.
    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Entity→concept isA edges.
    pub fn num_entity_is_a(&self) -> usize {
        self.entity_concepts.num_entries()
    }

    /// Subconcept→concept isA edges.
    pub fn num_concept_is_a(&self) -> usize {
        self.concept_parents.num_entries()
    }

    /// Total isA edges.
    pub fn num_is_a(&self) -> usize {
        self.num_entity_is_a() + self.num_concept_is_a()
    }

    /// Number of distinct mention keys (names + aliases).
    pub fn num_mentions(&self) -> usize {
        (0..self.by_mention.num_rows())
            .filter(|&i| !self.by_mention.row(i).is_empty())
            .count()
    }

    // ----- adjacency (CSR slices) -----------------------------------------

    /// Direct concepts of an entity, with edge metadata.
    pub fn concepts_of(&self, e: EntityId) -> &[(ConceptId, IsAMeta)] {
        self.entity_concepts.row(e.index())
    }

    /// Direct entities of a concept, ranked by descending edge confidence
    /// with entity id as tie-break — the stable hyponym enumeration order
    /// behind `getEntity` limits and pagination cursors.
    pub fn entities_of(&self, c: ConceptId) -> &[EntityId] {
        self.concept_entities.row(c.index())
    }

    /// Metadata of the entity→concept isA edge, if present. Entity rows
    /// hold a handful of concepts, where the linear scan beats any index.
    pub fn entity_edge(&self, e: EntityId, c: ConceptId) -> Option<IsAMeta> {
        self.concepts_of(e)
            .iter()
            .find(|&&(cc, _)| cc == c)
            .map(|&(_, m)| m)
    }

    /// Direct parent concepts, with edge metadata.
    pub fn parents_of(&self, c: ConceptId) -> &[(ConceptId, IsAMeta)] {
        self.concept_parents.row(c.index())
    }

    /// Direct child concepts.
    pub fn children_of(&self, c: ConceptId) -> &[ConceptId] {
        self.concept_children.row(c.index())
    }

    /// Attribute symbols of an entity.
    pub fn attributes_of(&self, e: EntityId) -> &[Symbol] {
        self.entity_attrs.row(e.index())
    }

    /// Alias symbols of an entity.
    pub fn aliases_of(&self, e: EntityId) -> &[Symbol] {
        self.entity_aliases.row(e.index())
    }

    // ----- precomputed topology -------------------------------------------

    /// All transitive ancestors of a concept as a sorted slice — the
    /// precomputed equivalent of [`crate::closure::ancestors`], with no
    /// queue, no visited set and no allocation per query.
    pub fn ancestors_of(&self, c: ConceptId) -> &[ConceptId] {
        self.ancestors.row(c.index())
    }

    /// Iterator form of [`Self::ancestors_of`]; never allocates.
    pub fn ancestors(&self, c: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        self.ancestors_of(c).iter().copied()
    }

    /// Topological order of the concepts (parents before children).
    pub fn topo_order(&self) -> &[ConceptId] {
        &self.topo
    }

    /// Exact depth of a concept: longest parent-chain length to a root
    /// (0 for roots), from the freeze-time DP pass.
    pub fn depth(&self, c: ConceptId) -> usize {
        self.depth[c.index()] as usize
    }

    /// All transitive descendant concepts in BFS order (used by
    /// `getEntity(transitive)`); allocates its output like any listing API.
    pub fn descendants(&self, start: ConceptId) -> Vec<ConceptId> {
        let mut seen = vec![false; self.concepts.len()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(c) = queue.pop_front() {
            for &ch in self.children_of(c) {
                if !seen[ch.index()] {
                    seen[ch.index()] = true;
                    order.push(ch);
                    queue.push_back(ch);
                }
            }
        }
        order
    }

    // ----- mention resolution (men2ent) -----------------------------------

    /// Resolves a mention to candidate entity senses, allocation-free.
    ///
    /// A disambiguated key (`刘德华（中国香港男演员）`) resolves to exactly
    /// its sense; a bare name or alias resolves to every matching sense.
    /// The full-key table is only consulted when the mention carries a
    /// `（…）` disambiguation, so a bracket-less sense can never shadow its
    /// disambiguated siblings.
    pub fn men2ent(&self, mention: &str) -> &[EntityId] {
        if crate::mention::has_disambig(mention) {
            if let Some(id) = self.full_keys.get(mention) {
                return std::slice::from_ref(id);
            }
        }
        match self.interner.get(mention) {
            Some(sym) => self.by_mention.row(sym.index()),
            None => &[],
        }
    }

    // ----- graph queries --------------------------------------------------

    /// Lowest common ancestors of two concepts: the common ancestors
    /// (including the concepts themselves) of maximal depth, sorted.
    pub fn lowest_common_ancestors(&self, a: ConceptId, b: ConceptId) -> Vec<ConceptId> {
        let with_self = |c: ConceptId| -> Vec<ConceptId> {
            let row = self.ancestors_of(c);
            let mut v = Vec::with_capacity(row.len() + 1);
            let pos = row.partition_point(|&x| x < c);
            v.extend_from_slice(&row[..pos]);
            v.push(c);
            v.extend_from_slice(&row[pos..]);
            v
        };
        let up_a = with_self(a);
        let up_b = with_self(b);
        // Merge-intersect the two sorted streams.
        let mut common = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < up_a.len() && j < up_b.len() {
            match up_a[i].cmp(&up_b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common.push(up_a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        let Some(max_depth) = common.iter().map(|&c| self.depth[c.index()]).max() else {
            return Vec::new();
        };
        common.retain(|&c| self.depth[c.index()] == max_depth);
        common
    }

    /// Sibling concepts: other children of `c`'s parents, sorted.
    pub fn siblings(&self, c: ConceptId) -> Vec<ConceptId> {
        let mut out: Vec<ConceptId> = Vec::new();
        for &(p, _) in self.parents_of(c) {
            for &child in self.children_of(p) {
                if child != c && !out.contains(&child) {
                    out.push(child);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Wu–Palmer similarity between two concepts (same contract as
    /// [`crate::query::wu_palmer`]), answered from the precomputed closure
    /// and depth array.
    pub fn wu_palmer(&self, a: ConceptId, b: ConceptId) -> f64 {
        if a == b {
            return 1.0;
        }
        let lcas = self.lowest_common_ancestors(a, b);
        let Some(&lca) = lcas.first() else {
            return 0.0;
        };
        let dl = self.depth(lca) as f64 + 1.0;
        let da = self.depth(a) as f64 + 1.0;
        let db = self.depth(b) as f64 + 1.0;
        (2.0 * dl / (da + db)).clamp(0.0, 1.0)
    }

    /// Concepts shared by a set of entities — the conceptualisation
    /// primitive (same contract as [`crate::query::common_concepts`]).
    pub fn common_concepts(&self, entities: &[EntityId], transitive: bool) -> Vec<ConceptId> {
        let mut iter = entities.iter();
        let Some(&first) = iter.next() else {
            return Vec::new();
        };
        let concept_set = |e: EntityId| -> crate::hash::FxHashSet<ConceptId> {
            let mut set = crate::hash::FxHashSet::default();
            for &(c, _) in self.concepts_of(e) {
                set.insert(c);
                if transitive {
                    set.extend(self.ancestors(c));
                }
            }
            set
        };
        let mut acc = concept_set(first);
        for &e in iter {
            let s = concept_set(e);
            acc.retain(|c| s.contains(c));
        }
        let mut out: Vec<ConceptId> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure;
    use crate::mention::MentionIndex;
    use crate::query;
    use crate::store::Source;
    use proptest::prelude::*;

    fn meta(conf: f32) -> IsAMeta {
        IsAMeta::new(Source::SubConcept, conf)
    }

    /// 男演员 → 演员 → 人物; 歌手 → 人物; entities 刘德华 (2 senses), 张学友.
    fn demo_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let liu_bare = s.add_entity("刘德华", None);
        let zhang = s.add_entity("张学友", None);
        s.add_alias(liu, "Andy Lau");
        s.add_attribute(liu, "职业");
        let male_actor = s.add_concept("男演员");
        let actor = s.add_concept("演员");
        let singer = s.add_concept("歌手");
        let person = s.add_concept("人物");
        s.add_concept_is_a(male_actor, actor, meta(0.9));
        s.add_concept_is_a(actor, person, meta(0.9));
        s.add_concept_is_a(singer, person, meta(0.9));
        s.add_entity_is_a(liu, male_actor, IsAMeta::new(Source::Bracket, 0.95));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(liu_bare, singer, IsAMeta::new(Source::Tag, 0.5));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.9));
        s
    }

    #[test]
    fn adjacency_rows_match_store() {
        let s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        assert_eq!(f.num_entities(), s.num_entities());
        assert_eq!(f.num_concepts(), s.num_concepts());
        assert_eq!(f.num_entity_is_a(), s.num_entity_is_a());
        assert_eq!(f.num_concept_is_a(), s.num_concept_is_a());
        for e in s.entity_ids() {
            assert_eq!(f.concepts_of(e), s.concepts_of(e));
            assert_eq!(f.attributes_of(e), s.attributes_of(e));
            assert_eq!(f.aliases_of(e), s.aliases_of(e));
            assert_eq!(f.entity_key(e), s.entity_key(e));
        }
        for c in s.concept_ids() {
            assert_eq!(f.entities_of(c), s.ranked_entities_of(c).as_slice());
            assert_eq!(f.parents_of(c), s.parents_of(c));
            assert_eq!(f.children_of(c), s.children_of(c));
            assert_eq!(f.concept_name(c), s.concept_name(c));
        }
    }

    /// Regression (ISSUE 5 satellite): hyponym rows must come out ranked by
    /// descending edge confidence with id as tie-break, identically at
    /// every thread count — insertion order depended on extraction history.
    #[test]
    fn entities_of_is_confidence_ranked_at_any_thread_count() {
        let mut s = TaxonomyStore::new();
        let c = s.add_concept("歌手");
        let unlinked = s.add_concept("演员");
        // Insert in an order that is neither confidence- nor id-sorted,
        // with a confidence tie to exercise the id tie-break.
        let e0 = s.add_entity("甲", None);
        let e1 = s.add_entity("乙", None);
        let e2 = s.add_entity("丙", None);
        let e3 = s.add_entity("丁", None);
        s.add_entity_is_a(e1, c, IsAMeta::new(Source::Tag, 0.5));
        s.add_entity_is_a(e3, c, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(e0, c, IsAMeta::new(Source::Tag, 0.5));
        s.add_entity_is_a(e2, c, IsAMeta::new(Source::Bracket, 0.7));
        let want = vec![e3, e2, e0, e1];
        for threads in [1, 8] {
            let f = FrozenTaxonomy::freeze_with(&s, &Runtime::new(threads));
            assert_eq!(f.entities_of(c), want.as_slice(), "threads={threads}");
            assert_eq!(f.entity_edge(e3, c).unwrap().confidence, 0.9);
            assert!(f.entity_edge(e3, unlinked).is_none());
        }
        assert_eq!(
            FrozenTaxonomy::freeze(&s).entity_edge(e0, c),
            Some(IsAMeta::new(Source::Tag, 0.5))
        );
    }

    #[test]
    fn ancestors_match_bfs_closure() {
        let s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        for c in s.concept_ids() {
            let mut bfs = closure::ancestors(&s, c);
            bfs.sort_unstable();
            assert_eq!(f.ancestors_of(c), bfs.as_slice(), "concept {c:?}");
        }
    }

    #[test]
    fn depths_match_query_depth() {
        let s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        for c in s.concept_ids() {
            assert_eq!(f.depth(c), query::depth(&s, c));
        }
    }

    #[test]
    fn topo_order_puts_parents_first() {
        let s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        let topo = f.topo_order();
        assert_eq!(topo.len(), f.num_concepts());
        let pos: FxHashMap<ConceptId, usize> =
            topo.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for c in f.concept_ids() {
            for &(p, _) in f.parents_of(c) {
                assert!(pos[&p] < pos[&c], "{p:?} must precede {c:?}");
            }
        }
    }

    #[test]
    fn men2ent_returns_every_sense_for_bare_names() {
        let s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        // Bare name: both the bracket-less and the disambiguated sense.
        assert_eq!(f.men2ent("刘德华").len(), 2);
        // Full key: exactly the disambiguated sense.
        let hits = f.men2ent("刘德华（中国香港男演员）");
        assert_eq!(hits.len(), 1);
        assert_eq!(f.entity_key(hits[0]), "刘德华（中国香港男演员）");
        // Alias and unknowns.
        assert_eq!(f.men2ent("Andy Lau").len(), 1);
        assert!(f.men2ent("不存在").is_empty());
        assert!(f.men2ent("不存在（也不存在）").is_empty());
    }

    #[test]
    fn men2ent_matches_mention_index() {
        let mut s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        let idx = MentionIndex::build(&mut s);
        for m in ["刘德华", "张学友", "Andy Lau", "刘德华（中国香港男演员）"] {
            assert_eq!(f.men2ent(m), idx.men2ent(&s, m).as_slice(), "mention {m}");
        }
    }

    #[test]
    fn query_methods_match_mutable_path() {
        let s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        let ids: Vec<ConceptId> = s.concept_ids().collect();
        for &a in &ids {
            assert_eq!(f.siblings(a), query::siblings(&s, a));
            for &b in &ids {
                assert_eq!(
                    f.lowest_common_ancestors(a, b),
                    query::lowest_common_ancestors(&s, a, b),
                    "lca({a:?}, {b:?})"
                );
                assert_eq!(f.wu_palmer(a, b), query::wu_palmer(&s, a, b));
            }
        }
        let es: Vec<EntityId> = s.entity_ids().collect();
        for transitive in [false, true] {
            assert_eq!(
                f.common_concepts(&es, transitive),
                query::common_concepts(&s, &es, transitive)
            );
        }
    }

    #[test]
    fn descendants_match_bfs() {
        let s = demo_store();
        let f = FrozenTaxonomy::freeze(&s);
        for c in s.concept_ids() {
            assert_eq!(f.descendants(c), closure::descendants(&s, c));
        }
    }

    #[test]
    fn cyclic_store_is_tolerated() {
        let mut s = demo_store();
        let person = s.find_concept("人物").unwrap();
        let male_actor = s.find_concept("男演员").unwrap();
        s.add_concept_is_a(person, male_actor, meta(0.1));
        let f = FrozenTaxonomy::freeze(&s);
        // Cycle members see each other as ancestors, like BFS reachability.
        for c in s.concept_ids() {
            let mut bfs = closure::ancestors(&s, c);
            bfs.sort_unstable();
            assert_eq!(f.ancestors_of(c), bfs.as_slice());
            assert_eq!(f.depth(c), query::depth(&s, c));
        }
    }

    #[test]
    fn freeze_is_thread_count_independent() {
        let mut s = demo_store();
        // Include a cycle so the component fan-out path is exercised too.
        let person = s.find_concept("人物").unwrap();
        let male_actor = s.find_concept("男演员").unwrap();
        s.add_concept_is_a(person, male_actor, meta(0.1));
        let base = FrozenTaxonomy::freeze_with(&s, &Runtime::serial());
        for threads in [2, 8] {
            let f = FrozenTaxonomy::freeze_with(&s, &Runtime::new(threads));
            assert_eq!(f.topo_order(), base.topo_order(), "threads={threads}");
            for c in s.concept_ids() {
                assert_eq!(f.ancestors_of(c), base.ancestors_of(c));
                assert_eq!(f.depth(c), base.depth(c));
            }
        }
    }

    #[test]
    fn frozen_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenTaxonomy>();
    }

    proptest! {
        /// On random DAGs (edges always point from higher to lower id) the
        /// frozen snapshot agrees with the mutable-store algorithms.
        #[test]
        fn frozen_equals_mutable_on_random_dags(
            edges in proptest::collection::vec((0u32..24, 0u32..24, 0u32..100), 1..120),
            entity_links in proptest::collection::vec((0u32..8, 0u32..24), 0..24),
        ) {
            let mut s = TaxonomyStore::new();
            for i in 0..24 {
                s.add_concept(&format!("概念{i}"));
            }
            for i in 0..8 {
                s.add_entity(&format!("实体{i}"), None);
            }
            for &(a, b, conf) in &edges {
                let (sub, sup) = (a.max(b), a.min(b));
                if sub != sup {
                    s.add_concept_is_a(
                        ConceptId(sub),
                        ConceptId(sup),
                        meta(conf as f32 / 100.0),
                    );
                }
            }
            for &(e, c) in &entity_links {
                s.add_entity_is_a(EntityId(e), ConceptId(c), IsAMeta::new(Source::Tag, 0.8));
            }
            let f = FrozenTaxonomy::freeze(&s);
            for c in s.concept_ids() {
                let mut bfs = closure::ancestors(&s, c);
                bfs.sort_unstable();
                prop_assert_eq!(f.ancestors_of(c), bfs.as_slice());
                prop_assert_eq!(f.depth(c), query::depth(&s, c));
                prop_assert_eq!(f.descendants(c), closure::descendants(&s, c));
            }
            let ids: Vec<ConceptId> = s.concept_ids().collect();
            for &a in ids.iter().step_by(5) {
                for &b in ids.iter().step_by(7) {
                    prop_assert_eq!(
                        f.lowest_common_ancestors(a, b),
                        query::lowest_common_ancestors(&s, a, b)
                    );
                    prop_assert_eq!(f.wu_palmer(a, b), query::wu_palmer(&s, a, b));
                }
            }
        }
    }
}
