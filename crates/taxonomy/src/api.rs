//! The three public APIs of CN-Probase (paper Table II).
//!
//! | API          | Given    | Returns          |
//! |--------------|----------|------------------|
//! | `men2ent`    | mention  | entity (senses)  |
//! | `getConcept` | entity   | hypernym list    |
//! | `getEntity`  | concept  | hyponym list     |
//!
//! [`ProbaseApi`] is a pure-read facade over a [`FrozenTaxonomy`] snapshot:
//! freeze once after construction, then call it from any number of threads.
//! Every method is `&self`, takes no lock and shares no mutable state — the
//! mutex-guarded ancestor cache of earlier versions is gone; transitive
//! hypernyms come from the snapshot's precomputed closure.

use crate::frozen::FrozenTaxonomy;
use crate::persist::{PersistError, Snapshot};
use crate::store::{ConceptId, EntityId, TaxonomyStore};
use std::path::Path;

/// A resolved entity sense returned by `men2ent`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntitySense {
    /// Snapshot handle.
    pub id: EntityId,
    /// Surface name.
    pub name: String,
    /// Bracket disambiguation (may be empty).
    pub disambig: String,
    /// Full display key (`name（disambig）`).
    pub key: String,
}

/// Read-side service facade over a [`FrozenTaxonomy`] snapshot.
#[derive(Debug, Clone)]
pub struct ProbaseApi {
    frozen: FrozenTaxonomy,
}

impl ProbaseApi {
    /// Builds the service by freezing a finished store.
    pub fn new(store: TaxonomyStore) -> Self {
        Self::from_frozen(FrozenTaxonomy::freeze(&store))
    }

    /// Wraps an already-frozen snapshot.
    pub fn from_frozen(frozen: FrozenTaxonomy) -> Self {
        ProbaseApi { frozen }
    }

    /// Boots the service from a snapshot file of either format: a v2
    /// snapshot is a validate-and-go load of the frozen taxonomy, a v1
    /// snapshot loads the build store and pays one freeze here.
    pub fn from_snapshot_file(path: &Path) -> Result<Self, PersistError> {
        Ok(Self::from_frozen(
            Snapshot::load_from_file(path)?.into_frozen(),
        ))
    }

    /// Read-only access to the underlying snapshot.
    pub fn frozen(&self) -> &FrozenTaxonomy {
        &self.frozen
    }

    /// `men2ent`: mention → entity senses.
    pub fn men2ent(&self, mention: &str) -> Vec<EntitySense> {
        self.frozen
            .men2ent(mention)
            .iter()
            .map(|&id| {
                let rec = self.frozen.entity(id);
                EntitySense {
                    id,
                    name: self.frozen.resolve(rec.name).to_string(),
                    disambig: self.frozen.resolve(rec.disambig).to_string(),
                    key: self.frozen.entity_key(id),
                }
            })
            .collect()
    }

    /// `getConcept`: entity → hypernym (concept) names.
    ///
    /// With `transitive`, appends the transitive hypernyms (from the
    /// snapshot's precomputed ancestor closure) after the direct ones,
    /// nearest-first: deeper ancestors sit closer to the entity's direct
    /// concepts, so consumers that truncate the list keep the most
    /// specific hypernyms. Ties break by concept id for determinism.
    pub fn get_concept(&self, entity: EntityId, transitive: bool) -> Vec<String> {
        let direct = self.frozen.concepts_of(entity);
        let mut out: Vec<ConceptId> = direct.iter().map(|&(c, _)| c).collect();
        if transitive {
            // Linear-scan dedup: ancestor sets in a taxonomy are a handful
            // of elements, where the scan beats sort-based dedup (measured
            // in the frozen_api bench); only the appended tail is sorted.
            let n_direct = out.len();
            for i in 0..n_direct {
                for a in self.frozen.ancestors(out[i]) {
                    if !out.contains(&a) {
                        out.push(a);
                    }
                }
            }
            out[n_direct..].sort_unstable_by(|&x, &y| {
                self.frozen
                    .depth(y)
                    .cmp(&self.frozen.depth(x))
                    .then(x.cmp(&y))
            });
        }
        out.into_iter()
            .map(|c| self.frozen.concept_name(c).to_string())
            .collect()
    }

    /// `getConcept` by mention: resolves the mention first, merging the
    /// hypernyms of every sense (deduplicated, order-preserving).
    pub fn get_concept_by_mention(&self, mention: &str, transitive: bool) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for &id in self.frozen.men2ent(mention) {
            for name in self.get_concept(id, transitive) {
                if !out.contains(&name) {
                    out.push(name);
                }
            }
        }
        out
    }

    /// `getEntity`: concept → hyponym entity keys, up to `limit`
    /// (`usize::MAX` for all). Includes entities of transitive subconcepts
    /// when `transitive` is set; an entity reachable through several
    /// subconcepts is reported once.
    pub fn get_entity(&self, concept: &str, transitive: bool, limit: usize) -> Vec<String> {
        let Some(c) = self.frozen.find_concept(concept) else {
            return Vec::new();
        };
        let mut seen: crate::hash::FxHashSet<EntityId> = crate::hash::FxHashSet::default();
        let mut out = Vec::new();
        let push_all =
            |cid: ConceptId, seen: &mut crate::hash::FxHashSet<EntityId>, out: &mut Vec<String>| {
                for &e in self.frozen.entities_of(cid) {
                    if out.len() >= limit {
                        return;
                    }
                    if seen.insert(e) {
                        out.push(self.frozen.entity_key(e));
                    }
                }
            };
        push_all(c, &mut seen, &mut out);
        if transitive && out.len() < limit {
            for sub in self.frozen.descendants(c) {
                if out.len() >= limit {
                    break;
                }
                push_all(sub, &mut seen, &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    fn demo_api() -> ProbaseApi {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let zhang = s.add_entity("张学友", None);
        s.add_alias(liu, "Andy Lau");
        let male_actor = s.add_concept("男演员");
        let actor = s.add_concept("演员");
        let singer = s.add_concept("歌手");
        let person = s.add_concept("人物");
        s.add_concept_is_a(male_actor, actor, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
        s.add_entity_is_a(liu, male_actor, IsAMeta::new(Source::Bracket, 0.95));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.9));
        ProbaseApi::new(s)
    }

    #[test]
    fn men2ent_resolves_alias_and_name() {
        let api = demo_api();
        let senses = api.men2ent("Andy Lau");
        assert_eq!(senses.len(), 1);
        assert_eq!(senses[0].name, "刘德华");
        assert_eq!(senses[0].key, "刘德华（中国香港男演员）");
        assert_eq!(api.men2ent("张学友").len(), 1);
        assert!(api.men2ent("无此人").is_empty());
    }

    #[test]
    fn get_concept_direct() {
        let api = demo_api();
        let liu = api.men2ent("刘德华")[0].id;
        let concepts = api.get_concept(liu, false);
        assert_eq!(concepts, vec!["男演员", "歌手"]);
    }

    #[test]
    fn get_concept_transitive_appends_ancestors() {
        let api = demo_api();
        let liu = api.men2ent("刘德华")[0].id;
        let concepts = api.get_concept(liu, true);
        assert_eq!(concepts[..2], ["男演员".to_string(), "歌手".to_string()]);
        assert!(concepts.contains(&"演员".to_string()));
        assert!(concepts.contains(&"人物".to_string()));
        assert_eq!(concepts.len(), 4);
    }

    #[test]
    fn get_concept_by_mention_merges_senses() {
        let api = demo_api();
        let concepts = api.get_concept_by_mention("刘德华", false);
        assert_eq!(concepts, vec!["男演员", "歌手"]);
    }

    #[test]
    fn get_entity_direct_and_transitive() {
        let api = demo_api();
        let direct = api.get_entity("人物", false, usize::MAX);
        assert!(direct.is_empty(), "no entity links directly to 人物");
        let transitive = api.get_entity("人物", true, usize::MAX);
        // 刘德华 is reachable via 歌手 and via 男演员 but reported once.
        assert_eq!(transitive.len(), 2);
        assert!(transitive.contains(&"张学友".to_string()));
        assert!(transitive.contains(&"刘德华（中国香港男演员）".to_string()));
    }

    #[test]
    fn get_entity_respects_limit() {
        let api = demo_api();
        let limited = api.get_entity("歌手", false, 1);
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn get_entity_unknown_concept() {
        let api = demo_api();
        assert!(api.get_entity("不存在", true, 10).is_empty());
    }

    #[test]
    fn api_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProbaseApi>();
    }
}
