//! Fast non-cryptographic hashing for internal maps.
//!
//! Symbol and string maps inside the store are hot (millions of inserts when
//! building a large taxonomy) and never face adversarial input, so we use an
//! FxHash-style multiply-rotate hasher instead of SipHash — the same
//! trade-off rustc makes (see the Rust Performance Book, “Hashing”).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: rotate, xor, multiply per word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_input() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"taxonomy");
        b.write(b"taxonomy");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write("刘德华".as_bytes());
        b.write("张学友".as_bytes());
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_is_mixed_in_for_short_tails() {
        // "a" and "a\0" differ only by a trailing zero byte; the length tag
        // in the tail word must distinguish them.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"a");
        b.write(b"a\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fx_map_works_with_cjk_keys() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("演员".to_string(), 1);
        m.insert("歌手".to_string(), 2);
        assert_eq!(m["演员"], 1);
        assert_eq!(m.len(), 2);
    }
}
