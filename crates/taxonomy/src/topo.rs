//! Topological structure of the concept hierarchy.
//!
//! The serving path needs two artifacts the per-query algorithms used to
//! recompute from scratch: a topological order of the concept DAG and exact
//! concept depths. Both are defined through the strongly-connected-component
//! *condensation* of the parent graph, which makes them total functions even
//! on a store whose cycles have not been repaired yet: every concept of an
//! SCC shares the depth of the collapsed component, and on a cycle-free
//! store (the normal case after [`crate::closure::break_cycles`]) every SCC
//! is a singleton, so the values are the exact longest-chain depths.

use crate::store::{ConceptId, IsAMeta, TaxonomyStore};

const UNVISITED: u32 = u32::MAX;

/// Strongly-connected-component condensation of the concept parent graph.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component index per concept (dense, `0..sccs.len()`).
    scc_of: Vec<u32>,
    /// Component member lists (each sorted), in *ancestors-first* order:
    /// when component `i` is listed, every component reachable from `i`
    /// through parent edges has an index `< i`.
    sccs: Vec<Vec<ConceptId>>,
}

impl Condensation {
    /// Computes the condensation with an iterative Tarjan pass over the
    /// edges `concept → parent`. `O(V + E)`, no recursion.
    pub fn of(store: &TaxonomyStore) -> Self {
        Self::of_rows(store.num_concepts(), |c| store.parents_of(c))
    }

    /// [`Condensation::of`] over any borrowed parent-row table — the
    /// overlay fold runs the identical pass on its merged rows without
    /// materialising a carrier store.
    pub(crate) fn of_rows<'a>(
        n: usize,
        parents_of: impl Fn(ConceptId) -> &'a [(ConceptId, IsAMeta)],
    ) -> Self {
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut scc_of = vec![UNVISITED; n];
        let mut sccs: Vec<Vec<ConceptId>> = Vec::new();
        let mut next_index = 0u32;
        // Explicit call stack of (node, next parent-edge to visit).
        let mut call: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            index[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            call.push((root, 0));

            while let Some(&mut (v, ref mut next_edge)) = call.last_mut() {
                let parents = parents_of(ConceptId(v));
                if *next_edge < parents.len() {
                    let w = parents[*next_edge].0 .0;
                    *next_edge += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&(u, _)) = call.last() {
                        low[u as usize] = low[u as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        let scc_id = sccs.len() as u32;
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("SCC root still on stack");
                            on_stack[w as usize] = false;
                            scc_of[w as usize] = scc_id;
                            members.push(ConceptId(w));
                            if w == v {
                                break;
                            }
                        }
                        members.sort_unstable();
                        sccs.push(members);
                    }
                }
            }
        }
        Condensation { scc_of, sccs }
    }

    /// Component index of a concept.
    #[inline]
    pub fn component_of(&self, c: ConceptId) -> usize {
        self.scc_of[c.index()] as usize
    }

    /// Component member lists, ancestors-first (see struct docs).
    pub fn components(&self) -> &[Vec<ConceptId>] {
        &self.sccs
    }

    /// A topological order of the concepts: every concept appears after all
    /// of its (transitive) parents; members of a cycle appear adjacently.
    pub fn topo_order(&self) -> Vec<ConceptId> {
        self.sccs.iter().flatten().copied().collect()
    }

    /// Exact depth per concept, one DP pass over the ancestors-first
    /// component order: `depth[c] = max over parents (depth[parent] + 1)`,
    /// `0` for roots, with cycle members collapsed to their component.
    pub fn depths(&self, store: &TaxonomyStore) -> Vec<u32> {
        self.depths_rows(store.num_concepts(), |c| store.parents_of(c))
    }

    /// [`Condensation::depths`] over any borrowed parent-row table (the
    /// same table `of_rows` condensed).
    pub(crate) fn depths_rows<'a>(
        &self,
        n: usize,
        parents_of: impl Fn(ConceptId) -> &'a [(ConceptId, IsAMeta)],
    ) -> Vec<u32> {
        let mut scc_depth = vec![0u32; self.sccs.len()];
        for (i, members) in self.sccs.iter().enumerate() {
            let mut d = 0;
            for &c in members {
                for &(p, _) in parents_of(c) {
                    let ps = self.component_of(p);
                    if ps != i {
                        d = d.max(scc_depth[ps] + 1);
                    }
                }
            }
            scc_depth[i] = d;
        }
        (0..n).map(|c| scc_depth[self.scc_of[c] as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    fn meta() -> IsAMeta {
        IsAMeta::new(Source::SubConcept, 0.9)
    }

    /// 男演员 → 演员 → 人物; 歌手 → 人物.
    fn chain_store() -> (TaxonomyStore, ConceptId, ConceptId, ConceptId, ConceptId) {
        let mut s = TaxonomyStore::new();
        let male_actor = s.add_concept("男演员");
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        let singer = s.add_concept("歌手");
        s.add_concept_is_a(male_actor, actor, meta());
        s.add_concept_is_a(actor, person, meta());
        s.add_concept_is_a(singer, person, meta());
        (s, male_actor, actor, person, singer)
    }

    #[test]
    fn dag_gives_singleton_components_in_parents_first_order() {
        let (s, male_actor, actor, person, _) = chain_store();
        let cond = Condensation::of(&s);
        assert_eq!(cond.components().len(), s.num_concepts());
        let topo = cond.topo_order();
        let pos = |c: ConceptId| topo.iter().position(|&x| x == c).unwrap();
        assert!(pos(person) < pos(actor));
        assert!(pos(actor) < pos(male_actor));
    }

    #[test]
    fn depths_match_longest_chain() {
        let (s, male_actor, actor, person, singer) = chain_store();
        let d = Condensation::of(&s).depths(&s);
        assert_eq!(d[person.index()], 0);
        assert_eq!(d[actor.index()], 1);
        assert_eq!(d[singer.index()], 1);
        assert_eq!(d[male_actor.index()], 2);
    }

    #[test]
    fn cycle_members_collapse_to_one_component() {
        let (mut s, male_actor, actor, person, singer) = chain_store();
        // 人物 → 男演员 closes the cycle {男演员, 演员, 人物}.
        s.add_concept_is_a(person, male_actor, IsAMeta::new(Source::SubConcept, 0.1));
        let cond = Condensation::of(&s);
        assert_eq!(cond.component_of(male_actor), cond.component_of(person));
        assert_eq!(cond.component_of(male_actor), cond.component_of(actor));
        assert_ne!(cond.component_of(singer), cond.component_of(person));
        let d = cond.depths(&s);
        // The collapsed cycle is the root component; 歌手 hangs below it.
        assert_eq!(d[person.index()], 0);
        assert_eq!(d[singer.index()], 1);
    }

    #[test]
    fn diamond_depths() {
        let mut s = TaxonomyStore::new();
        let bottom = s.add_concept("底");
        let l = s.add_concept("左");
        let r = s.add_concept("右");
        let top = s.add_concept("顶");
        let mid = s.add_concept("中");
        s.add_concept_is_a(bottom, l, meta());
        s.add_concept_is_a(bottom, r, meta());
        s.add_concept_is_a(l, top, meta());
        s.add_concept_is_a(r, mid, meta());
        s.add_concept_is_a(mid, top, meta());
        let d = Condensation::of(&s).depths(&s);
        assert_eq!(d[top.index()], 0);
        assert_eq!(d[mid.index()], 1);
        assert_eq!(d[l.index()], 1);
        assert_eq!(d[r.index()], 2);
        // Longest chain wins: 底 → 右 → 中 → 顶.
        assert_eq!(d[bottom.index()], 3);
    }

    #[test]
    fn empty_store() {
        let s = TaxonomyStore::new();
        let cond = Condensation::of(&s);
        assert!(cond.topo_order().is_empty());
        assert!(cond.depths(&s).is_empty());
    }
}
