//! The isA graph store.
//!
//! CN-Probase's data model (paper §I, §IV): *disambiguated entities* (name
//! plus optional bracket disambiguation, e.g. 刘德华（中国香港男演员）),
//! *concepts* (演员), entity→concept isA edges and subconcept→concept
//! edges. Every edge carries provenance — which of the four sources
//! produced it — and a confidence, which the verification module and
//! cycle-repair use as a tie-breaker.
//!
//! The store also keeps per-entity attribute sets (infobox predicates):
//! verification strategy A (§III-A) compares entity and concept attribute
//! distributions.

use crate::hash::FxHashMap;
use crate::interner::{Interner, Symbol};

/// Which encyclopedia source produced an isA edge (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Separation algorithm on the bracket noun compound.
    Bracket,
    /// Neural (CopyNet) generation from the abstract.
    Abstract,
    /// Predicate discovery on infobox SPO triples.
    Infobox,
    /// Direct extraction from tags.
    Tag,
    /// Subconcept→concept edge derived during taxonomy assembly.
    SubConcept,
    /// Imported from an external taxonomy (used by the Table I baselines).
    Import,
}

impl Source {
    /// Stable wire id for persistence.
    pub fn to_u8(self) -> u8 {
        match self {
            Source::Bracket => 0,
            Source::Abstract => 1,
            Source::Infobox => 2,
            Source::Tag => 3,
            Source::SubConcept => 4,
            Source::Import => 5,
        }
    }

    /// Inverse of [`Source::to_u8`].
    pub fn from_u8(v: u8) -> Option<Source> {
        Some(match v {
            0 => Source::Bracket,
            1 => Source::Abstract,
            2 => Source::Infobox,
            3 => Source::Tag,
            4 => Source::SubConcept,
            5 => Source::Import,
            _ => return None,
        })
    }
}

/// Per-edge metadata: provenance and confidence in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsAMeta {
    /// Producing source.
    pub source: Source,
    /// Extraction confidence; higher survives dedup and cycle repair.
    pub confidence: f32,
}

impl IsAMeta {
    /// Convenience constructor. The confidence is clamped into `[0, 1]`;
    /// a NaN collapses to `0.0` so it can never poison the ordering used
    /// by dedup and cycle repair.
    pub fn new(source: Source, confidence: f32) -> Self {
        let confidence = if confidence.is_nan() {
            0.0
        } else {
            confidence.clamp(0.0, 1.0)
        };
        IsAMeta { source, confidence }
    }
}

/// Dense entity handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Dense concept handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

impl EntityId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ConceptId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A disambiguated entity: surface name + optional bracket text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityRecord {
    /// Surface name (刘德华).
    pub name: Symbol,
    /// Bracket disambiguation (中国香港男演员), `Symbol(0)` when absent.
    pub disambig: Symbol,
}

/// The taxonomy store.
#[derive(Debug, Clone, Default)]
pub struct TaxonomyStore {
    interner: Interner,
    entities: Vec<EntityRecord>,
    entity_by_key: FxHashMap<(Symbol, Symbol), EntityId>,
    concepts: Vec<Symbol>,
    concept_by_sym: FxHashMap<Symbol, ConceptId>,
    entity_concepts: Vec<Vec<(ConceptId, IsAMeta)>>,
    concept_entities: Vec<Vec<EntityId>>,
    concept_parents: Vec<Vec<(ConceptId, IsAMeta)>>,
    concept_children: Vec<Vec<ConceptId>>,
    entity_attrs: Vec<Vec<Symbol>>,
    entity_aliases: Vec<Vec<Symbol>>,
    n_entity_isa: usize,
    n_concept_isa: usize,
}

impl TaxonomyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            interner: Interner::new(),
            ..Default::default()
        }
    }

    // ----- interning ------------------------------------------------------

    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Read-only access to the interner (persistence).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    // ----- entities -------------------------------------------------------

    /// Registers (or finds) a disambiguated entity.
    pub fn add_entity(&mut self, name: &str, disambig: Option<&str>) -> EntityId {
        let name_sym = self.interner.intern(name);
        let dis_sym = disambig.map_or(Symbol(0), |d| self.interner.intern(d));
        if let Some(&id) = self.entity_by_key.get(&(name_sym, dis_sym)) {
            return id;
        }
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(EntityRecord {
            name: name_sym,
            disambig: dis_sym,
        });
        self.entity_concepts.push(Vec::new());
        self.entity_attrs.push(Vec::new());
        self.entity_aliases.push(Vec::new());
        self.entity_by_key.insert((name_sym, dis_sym), id);
        id
    }

    /// Finds an entity by exact name + disambiguation.
    pub fn find_entity(&self, name: &str, disambig: Option<&str>) -> Option<EntityId> {
        let name_sym = self.interner.get(name)?;
        let dis_sym = match disambig {
            None => Symbol(0),
            Some(d) => self.interner.get(d)?,
        };
        self.entity_by_key.get(&(name_sym, dis_sym)).copied()
    }

    /// Record for an entity id.
    pub fn entity(&self, id: EntityId) -> EntityRecord {
        self.entities[id.index()]
    }

    /// Full display key: `name（disambig）` or just `name`.
    pub fn entity_key(&self, id: EntityId) -> String {
        let rec = self.entities[id.index()];
        let name = self.interner.resolve(rec.name);
        if rec.disambig == Symbol(0) {
            name.to_string()
        } else {
            format!("{name}（{}）", self.interner.resolve(rec.disambig))
        }
    }

    /// Number of registered entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Entities that participate in at least one isA edge.
    pub fn num_linked_entities(&self) -> usize {
        self.entity_concepts
            .iter()
            .filter(|v| !v.is_empty())
            .count()
    }

    /// Iterates all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len() as u32).map(EntityId)
    }

    // ----- concepts -------------------------------------------------------

    /// Registers (or finds) a concept.
    pub fn add_concept(&mut self, name: &str) -> ConceptId {
        let sym = self.interner.intern(name);
        if let Some(&id) = self.concept_by_sym.get(&sym) {
            return id;
        }
        let id = ConceptId(self.concepts.len() as u32);
        self.concepts.push(sym);
        self.concept_entities.push(Vec::new());
        self.concept_parents.push(Vec::new());
        self.concept_children.push(Vec::new());
        self.concept_by_sym.insert(sym, id);
        id
    }

    /// Finds a concept by name.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        let sym = self.interner.get(name)?;
        self.concept_by_sym.get(&sym).copied()
    }

    /// Concept name.
    pub fn concept_name(&self, id: ConceptId) -> &str {
        self.interner.resolve(self.concepts[id.index()])
    }

    /// Number of registered concepts.
    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Iterates all concept ids.
    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    // ----- edges ----------------------------------------------------------

    /// Adds an entity→concept isA edge. Duplicate edges are merged, keeping
    /// the higher confidence; returns `true` when the edge is new.
    pub fn add_entity_is_a(&mut self, e: EntityId, c: ConceptId, meta: IsAMeta) -> bool {
        let edges = &mut self.entity_concepts[e.index()];
        if let Some(existing) = edges.iter_mut().find(|(cc, _)| *cc == c) {
            if meta.confidence > existing.1.confidence {
                existing.1 = meta;
            }
            return false;
        }
        edges.push((c, meta));
        self.concept_entities[c.index()].push(e);
        self.n_entity_isa += 1;
        true
    }

    /// Adds a subconcept→concept isA edge. Self-loops are rejected;
    /// duplicates merge like entity edges. Returns `true` when new.
    pub fn add_concept_is_a(&mut self, sub: ConceptId, sup: ConceptId, meta: IsAMeta) -> bool {
        if sub == sup {
            return false;
        }
        let edges = &mut self.concept_parents[sub.index()];
        if let Some(existing) = edges.iter_mut().find(|(cc, _)| *cc == sup) {
            if meta.confidence > existing.1.confidence {
                existing.1 = meta;
            }
            return false;
        }
        edges.push((sup, meta));
        self.concept_children[sup.index()].push(sub);
        self.n_concept_isa += 1;
        true
    }

    /// Removes an entity→concept edge; returns `true` when it existed.
    pub fn remove_entity_is_a(&mut self, e: EntityId, c: ConceptId) -> bool {
        let edges = &mut self.entity_concepts[e.index()];
        let before = edges.len();
        edges.retain(|(cc, _)| *cc != c);
        if edges.len() == before {
            return false;
        }
        self.concept_entities[c.index()].retain(|&ee| ee != e);
        self.n_entity_isa -= 1;
        true
    }

    /// Overwrites the metadata of an existing entity→concept edge **in
    /// place**: the edge keeps its position in both adjacency rows, so a
    /// confidence *decrease* — which [`TaxonomyStore::add_entity_is_a`]'s
    /// max-merge refuses — re-ranks serving output without perturbing the
    /// insertion order other rows are built from. Returns `false` (and
    /// changes nothing) when the edge does not exist.
    pub fn set_entity_is_a_meta(&mut self, e: EntityId, c: ConceptId, meta: IsAMeta) -> bool {
        match self.entity_concepts[e.index()]
            .iter_mut()
            .find(|(cc, _)| *cc == c)
        {
            Some(existing) => {
                existing.1 = meta;
                true
            }
            None => false,
        }
    }

    /// Overwrites the metadata of an existing subconcept→concept edge in
    /// place; see [`TaxonomyStore::set_entity_is_a_meta`]. Returns `false`
    /// when the edge does not exist.
    pub fn set_concept_is_a_meta(&mut self, sub: ConceptId, sup: ConceptId, meta: IsAMeta) -> bool {
        match self.concept_parents[sub.index()]
            .iter_mut()
            .find(|(cc, _)| *cc == sup)
        {
            Some(existing) => {
                existing.1 = meta;
                true
            }
            None => false,
        }
    }

    /// Removes a subconcept→concept edge; returns `true` when it existed.
    pub fn remove_concept_is_a(&mut self, sub: ConceptId, sup: ConceptId) -> bool {
        let edges = &mut self.concept_parents[sub.index()];
        let before = edges.len();
        edges.retain(|(cc, _)| *cc != sup);
        if edges.len() == before {
            return false;
        }
        self.concept_children[sup.index()].retain(|&ss| ss != sub);
        self.n_concept_isa -= 1;
        true
    }

    /// Direct concepts of an entity, with edge metadata.
    pub fn concepts_of(&self, e: EntityId) -> &[(ConceptId, IsAMeta)] {
        &self.entity_concepts[e.index()]
    }

    /// Direct entities of a concept, in insertion order.
    pub fn entities_of(&self, c: ConceptId) -> &[EntityId] {
        &self.concept_entities[c.index()]
    }

    /// Direct entities of a concept in *serving rank order*: descending
    /// edge confidence, entity id as tie-break. This is the one definition
    /// of the order [`crate::frozen::FrozenTaxonomy`] freezes into its
    /// hyponym rows (and that `getEntity` limits/pagination rely on);
    /// freeze and its equivalence tests all call it so they cannot drift.
    pub fn ranked_entities_of(&self, c: ConceptId) -> Vec<EntityId> {
        let mut keyed: Vec<(f32, EntityId)> = self
            .entities_of(c)
            .iter()
            .map(|&e| {
                let conf = self
                    .concepts_of(e)
                    .iter()
                    .find(|&&(cc, _)| cc == c)
                    .map_or(0.0, |&(_, m)| m.confidence);
                (conf, e)
            })
            .collect();
        keyed.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        keyed.into_iter().map(|(_, e)| e).collect()
    }

    /// Direct parent concepts of a concept, with edge metadata.
    pub fn parents_of(&self, c: ConceptId) -> &[(ConceptId, IsAMeta)] {
        &self.concept_parents[c.index()]
    }

    /// Direct child concepts of a concept.
    pub fn children_of(&self, c: ConceptId) -> &[ConceptId] {
        &self.concept_children[c.index()]
    }

    /// Total isA edges (entity→concept + subconcept→concept), the headline
    /// count of Table I.
    pub fn num_is_a(&self) -> usize {
        self.n_entity_isa + self.n_concept_isa
    }

    /// Entity→concept edge count.
    pub fn num_entity_is_a(&self) -> usize {
        self.n_entity_isa
    }

    /// Subconcept→concept edge count.
    pub fn num_concept_is_a(&self) -> usize {
        self.n_concept_isa
    }

    // ----- exact reconstruction (compaction thaw) -------------------------

    /// Rebuilds a store from pre-assembled rows — the `thaw` half of the
    /// compaction path (see `crate::compact`). The caller supplies every
    /// adjacency row verbatim; this constructor only derives the lookup
    /// maps and edge counters, so the result is *exactly* the store the
    /// rows came from as far as `freeze_with` can observe.
    pub(crate) fn from_raw_parts(parts: RawStoreParts) -> TaxonomyStore {
        let RawStoreParts {
            interner,
            entities,
            concepts,
            entity_concepts,
            concept_entities,
            concept_parents,
            concept_children,
            entity_attrs,
            entity_aliases,
        } = parts;
        let mut entity_by_key = FxHashMap::default();
        for (i, rec) in entities.iter().enumerate() {
            entity_by_key.insert((rec.name, rec.disambig), EntityId(i as u32));
        }
        let mut concept_by_sym = FxHashMap::default();
        for (i, &sym) in concepts.iter().enumerate() {
            concept_by_sym.insert(sym, ConceptId(i as u32));
        }
        let n_entity_isa = entity_concepts.iter().map(Vec::len).sum();
        let n_concept_isa = concept_parents.iter().map(Vec::len).sum();
        TaxonomyStore {
            interner,
            entities,
            entity_by_key,
            concepts,
            concept_by_sym,
            entity_concepts,
            concept_entities,
            concept_parents,
            concept_children,
            entity_attrs,
            entity_aliases,
            n_entity_isa,
            n_concept_isa,
        }
    }

    // ----- attributes & aliases -------------------------------------------

    /// Attaches an infobox attribute (predicate name) to an entity.
    pub fn add_attribute(&mut self, e: EntityId, attr: &str) {
        let sym = self.interner.intern(attr);
        let attrs = &mut self.entity_attrs[e.index()];
        if !attrs.contains(&sym) {
            attrs.push(sym);
        }
    }

    /// Attribute symbols of an entity.
    pub fn attributes_of(&self, e: EntityId) -> &[Symbol] {
        &self.entity_attrs[e.index()]
    }

    /// Adds a surface alias for `men2ent` (e.g. the English name Andy Lau).
    pub fn add_alias(&mut self, e: EntityId, alias: &str) {
        let sym = self.interner.intern(alias);
        let aliases = &mut self.entity_aliases[e.index()];
        if !aliases.contains(&sym) {
            aliases.push(sym);
        }
    }

    /// Alias symbols of an entity.
    pub fn aliases_of(&self, e: EntityId) -> &[Symbol] {
        &self.entity_aliases[e.index()]
    }

    // ----- attribute distributions (verification strategy A) ---------------

    /// Attribute distribution of an entity: uniform over its attributes.
    pub fn entity_attr_distribution(&self, e: EntityId) -> FxHashMap<Symbol, f64> {
        let attrs = &self.entity_attrs[e.index()];
        let mut dist = FxHashMap::default();
        if attrs.is_empty() {
            return dist;
        }
        let w = 1.0 / attrs.len() as f64;
        for &a in attrs {
            *dist.entry(a).or_insert(0.0) += w;
        }
        dist
    }

    /// Attribute distribution of a concept: normalized attribute counts
    /// over its direct hyponym entities.
    pub fn concept_attr_distribution(&self, c: ConceptId) -> FxHashMap<Symbol, f64> {
        let mut counts: FxHashMap<Symbol, f64> = FxHashMap::default();
        let mut total = 0.0f64;
        for &e in &self.concept_entities[c.index()] {
            for &a in &self.entity_attrs[e.index()] {
                *counts.entry(a).or_insert(0.0) += 1.0;
                total += 1.0;
            }
        }
        if total > 0.0 {
            for v in counts.values_mut() {
                *v /= total;
            }
        }
        counts
    }
}

/// Verbatim adjacency rows for [`TaxonomyStore::from_raw_parts`]: one
/// field per store row table, in the store's own representation.
pub(crate) struct RawStoreParts {
    pub interner: Interner,
    pub entities: Vec<EntityRecord>,
    pub concepts: Vec<Symbol>,
    pub entity_concepts: Vec<Vec<(ConceptId, IsAMeta)>>,
    pub concept_entities: Vec<Vec<EntityId>>,
    pub concept_parents: Vec<Vec<(ConceptId, IsAMeta)>>,
    pub concept_children: Vec<Vec<ConceptId>>,
    pub entity_attrs: Vec<Vec<Symbol>>,
    pub entity_aliases: Vec<Vec<Symbol>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: Source) -> IsAMeta {
        IsAMeta::new(src, 0.9)
    }

    #[test]
    fn entities_are_deduplicated_by_name_and_disambig() {
        let mut s = TaxonomyStore::new();
        let a = s.add_entity("刘德华", Some("中国香港男演员"));
        let b = s.add_entity("刘德华", Some("中国香港男演员"));
        let c = s.add_entity("刘德华", Some("数学家"));
        let d = s.add_entity("刘德华", None);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(s.num_entities(), 3);
    }

    #[test]
    fn entity_key_formats_disambiguation() {
        let mut s = TaxonomyStore::new();
        let a = s.add_entity("刘德华", Some("男演员"));
        let b = s.add_entity("演员", None);
        assert_eq!(s.entity_key(a), "刘德华（男演员）");
        assert_eq!(s.entity_key(b), "演员");
    }

    #[test]
    fn is_a_edges_count_and_dedup() {
        let mut s = TaxonomyStore::new();
        let e = s.add_entity("刘德华", None);
        let c1 = s.add_concept("演员");
        let c2 = s.add_concept("歌手");
        assert!(s.add_entity_is_a(e, c1, meta(Source::Tag)));
        assert!(!s.add_entity_is_a(e, c1, meta(Source::Bracket)));
        assert!(s.add_entity_is_a(e, c2, meta(Source::Bracket)));
        assert_eq!(s.num_is_a(), 2);
        assert_eq!(s.concepts_of(e).len(), 2);
        assert_eq!(s.entities_of(c1), &[e]);
    }

    #[test]
    fn duplicate_edge_keeps_max_confidence() {
        let mut s = TaxonomyStore::new();
        let e = s.add_entity("e", None);
        let c = s.add_concept("c");
        s.add_entity_is_a(e, c, IsAMeta::new(Source::Tag, 0.5));
        s.add_entity_is_a(e, c, IsAMeta::new(Source::Bracket, 0.9));
        assert_eq!(s.concepts_of(e)[0].1.confidence, 0.9);
        // Lower confidence does not downgrade.
        s.add_entity_is_a(e, c, IsAMeta::new(Source::Tag, 0.1));
        assert_eq!(s.concepts_of(e)[0].1.confidence, 0.9);
    }

    #[test]
    fn remove_entity_is_a_updates_both_directions() {
        let mut s = TaxonomyStore::new();
        let e = s.add_entity("e", None);
        let c = s.add_concept("c");
        s.add_entity_is_a(e, c, meta(Source::Tag));
        assert!(s.remove_entity_is_a(e, c));
        assert!(!s.remove_entity_is_a(e, c));
        assert_eq!(s.num_is_a(), 0);
        assert!(s.entities_of(c).is_empty());
        assert!(s.concepts_of(e).is_empty());
    }

    #[test]
    fn concept_self_loop_rejected() {
        let mut s = TaxonomyStore::new();
        let c = s.add_concept("演员");
        assert!(!s.add_concept_is_a(c, c, meta(Source::SubConcept)));
        assert_eq!(s.num_is_a(), 0);
    }

    #[test]
    fn concept_hierarchy_edges() {
        let mut s = TaxonomyStore::new();
        let sub = s.add_concept("男演员");
        let sup = s.add_concept("演员");
        assert!(s.add_concept_is_a(sub, sup, meta(Source::SubConcept)));
        assert_eq!(s.parents_of(sub)[0].0, sup);
        assert_eq!(s.children_of(sup), &[sub]);
        assert!(s.remove_concept_is_a(sub, sup));
        assert_eq!(s.num_concept_is_a(), 0);
    }

    #[test]
    fn linked_entities_counts_only_entities_with_edges() {
        let mut s = TaxonomyStore::new();
        let e1 = s.add_entity("a", None);
        let _e2 = s.add_entity("b", None);
        let c = s.add_concept("c");
        s.add_entity_is_a(e1, c, meta(Source::Tag));
        assert_eq!(s.num_entities(), 2);
        assert_eq!(s.num_linked_entities(), 1);
    }

    #[test]
    fn attribute_distributions() {
        let mut s = TaxonomyStore::new();
        let e1 = s.add_entity("刘德华", None);
        let e2 = s.add_entity("张学友", None);
        let c = s.add_concept("歌手");
        s.add_entity_is_a(e1, c, meta(Source::Tag));
        s.add_entity_is_a(e2, c, meta(Source::Tag));
        s.add_attribute(e1, "职业");
        s.add_attribute(e1, "代表作品");
        s.add_attribute(e2, "职业");
        let de = s.entity_attr_distribution(e1);
        assert_eq!(de.len(), 2);
        let sum: f64 = de.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let dc = s.concept_attr_distribution(c);
        let occupation = s.interner().get("职业").unwrap();
        assert!((dc[&occupation] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn attributes_and_aliases_dedup() {
        let mut s = TaxonomyStore::new();
        let e = s.add_entity("e", None);
        s.add_attribute(e, "职业");
        s.add_attribute(e, "职业");
        s.add_alias(e, "别名");
        s.add_alias(e, "别名");
        assert_eq!(s.attributes_of(e).len(), 1);
        assert_eq!(s.aliases_of(e).len(), 1);
    }

    #[test]
    fn is_a_meta_clamps_confidence_and_absorbs_nan() {
        assert_eq!(IsAMeta::new(Source::Tag, f32::NAN).confidence, 0.0);
        assert_eq!(IsAMeta::new(Source::Tag, 1.5).confidence, 1.0);
        assert_eq!(IsAMeta::new(Source::Tag, -0.5).confidence, 0.0);
        assert_eq!(IsAMeta::new(Source::Tag, 0.7).confidence, 0.7);
    }

    #[test]
    fn source_wire_roundtrip() {
        for src in [
            Source::Bracket,
            Source::Abstract,
            Source::Infobox,
            Source::Tag,
            Source::SubConcept,
            Source::Import,
        ] {
            assert_eq!(Source::from_u8(src.to_u8()), Some(src));
        }
        assert_eq!(Source::from_u8(99), None);
    }
}
