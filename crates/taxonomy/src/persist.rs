//! Compact binary snapshots of a [`TaxonomyStore`].
//!
//! A production taxonomy service loads its store from a snapshot at boot.
//! The format is a hand-written little-endian codec over [`bytes`]:
//!
//! ```text
//! magic "CNPB" | version u32 | interner strings | entities | concepts
//!   | per-entity edges/attrs/aliases | per-concept parent edges
//! ```
//!
//! Strings are length-prefixed UTF-8; all counts are u32 (the paper-scale
//! taxonomy has 15 M entities, well under u32::MAX). Decoding validates the
//! magic, the version, string UTF-8 and every symbol/id bound, so a
//! truncated or corrupted snapshot fails loudly instead of producing a
//! broken store.

use crate::store::{IsAMeta, Source, TaxonomyStore};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"CNPB";
const VERSION: u32 = 1;

/// Errors produced while decoding a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// The snapshot does not start with the `CNPB` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the structure was complete.
    Truncated(&'static str),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An id/symbol referenced an out-of-range table index.
    BadIndex(&'static str),
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "snapshot magic mismatch"),
            PersistError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            PersistError::Truncated(what) => write!(f, "snapshot truncated while reading {what}"),
            PersistError::BadUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            PersistError::BadIndex(what) => write!(f, "snapshot contains out-of-range {what}"),
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serializes the store to bytes.
pub fn encode(store: &TaxonomyStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);

    // Interner strings, in symbol order (Symbol(0) == "").
    let strings: Vec<&str> = store.interner().iter().map(|(_, s)| s).collect();
    buf.put_u32_le(strings.len() as u32);
    for s in &strings {
        put_str(&mut buf, s);
    }

    // Entities.
    buf.put_u32_le(store.num_entities() as u32);
    for id in store.entity_ids() {
        let rec = store.entity(id);
        buf.put_u32_le(rec.name.0);
        buf.put_u32_le(rec.disambig.0);
    }

    // Concepts (by name symbol).
    buf.put_u32_le(store.num_concepts() as u32);
    for id in store.concept_ids() {
        let name = store.concept_name(id);
        let sym = store.interner().get(name).expect("concept name interned");
        buf.put_u32_le(sym.0);
    }

    // Per-entity: concept edges, attributes, aliases.
    for id in store.entity_ids() {
        let edges = store.concepts_of(id);
        buf.put_u32_le(edges.len() as u32);
        for &(c, meta) in edges {
            buf.put_u32_le(c.0);
            buf.put_u8(meta.source.to_u8());
            buf.put_f32_le(meta.confidence);
        }
        let attrs = store.attributes_of(id);
        buf.put_u32_le(attrs.len() as u32);
        for a in attrs {
            buf.put_u32_le(a.0);
        }
        let aliases = store.aliases_of(id);
        buf.put_u32_le(aliases.len() as u32);
        for a in aliases {
            buf.put_u32_le(a.0);
        }
    }

    // Per-concept parent edges.
    for id in store.concept_ids() {
        let parents = store.parents_of(id);
        buf.put_u32_le(parents.len() as u32);
        for &(p, meta) in parents {
            buf.put_u32_le(p.0);
            buf.put_u8(meta.source.to_u8());
            buf.put_f32_le(meta.confidence);
        }
    }

    buf.freeze()
}

/// Deserializes a store from bytes.
pub fn decode(mut buf: &[u8]) -> Result<TaxonomyStore, PersistError> {
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated("header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }

    let n_strings = get_u32(&mut buf, "string count")? as usize;
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        strings.push(get_str(&mut buf)?);
    }
    let resolve = |sym: u32, what: &'static str| -> Result<&str, PersistError> {
        strings
            .get(sym as usize)
            .map(|s| s.as_str())
            .ok_or(PersistError::BadIndex(what))
    };

    let mut store = TaxonomyStore::new();

    let n_entities = get_u32(&mut buf, "entity count")? as usize;
    let mut entity_ids = Vec::with_capacity(n_entities);
    for _ in 0..n_entities {
        let name = get_u32(&mut buf, "entity name")?;
        let disambig = get_u32(&mut buf, "entity disambig")?;
        let name_s = resolve(name, "entity name symbol")?;
        let dis_s = resolve(disambig, "entity disambig symbol")?;
        let id = store.add_entity(name_s, if dis_s.is_empty() { None } else { Some(dis_s) });
        entity_ids.push(id);
    }

    let n_concepts = get_u32(&mut buf, "concept count")? as usize;
    let mut concept_ids = Vec::with_capacity(n_concepts);
    for _ in 0..n_concepts {
        let sym = get_u32(&mut buf, "concept name")?;
        let name = resolve(sym, "concept name symbol")?;
        concept_ids.push(store.add_concept(name));
    }

    for &e in &entity_ids {
        let n_edges = get_u32(&mut buf, "entity edge count")? as usize;
        for _ in 0..n_edges {
            let c = get_u32(&mut buf, "edge concept")? as usize;
            let src = get_u8(&mut buf, "edge source")?;
            let conf = get_f32(&mut buf, "edge confidence")?;
            let &cid = concept_ids
                .get(c)
                .ok_or(PersistError::BadIndex("edge concept id"))?;
            let source = Source::from_u8(src).ok_or(PersistError::BadIndex("edge source tag"))?;
            store.add_entity_is_a(e, cid, IsAMeta::new(source, conf));
        }
        let n_attrs = get_u32(&mut buf, "attr count")? as usize;
        for _ in 0..n_attrs {
            let a = get_u32(&mut buf, "attr symbol")?;
            let s = resolve(a, "attr symbol")?.to_string();
            store.add_attribute(e, &s);
        }
        let n_aliases = get_u32(&mut buf, "alias count")? as usize;
        for _ in 0..n_aliases {
            let a = get_u32(&mut buf, "alias symbol")?;
            let s = resolve(a, "alias symbol")?.to_string();
            store.add_alias(e, &s);
        }
    }

    for &c in &concept_ids {
        let n_parents = get_u32(&mut buf, "parent count")? as usize;
        for _ in 0..n_parents {
            let p = get_u32(&mut buf, "parent concept")? as usize;
            let src = get_u8(&mut buf, "parent source")?;
            let conf = get_f32(&mut buf, "parent confidence")?;
            let &pid = concept_ids
                .get(p)
                .ok_or(PersistError::BadIndex("parent concept id"))?;
            let source = Source::from_u8(src).ok_or(PersistError::BadIndex("parent source tag"))?;
            store.add_concept_is_a(c, pid, IsAMeta::new(source, conf));
        }
    }

    Ok(store)
}

/// Writes a snapshot to `path`.
pub fn save_to_file(store: &TaxonomyStore, path: &Path) -> Result<(), PersistError> {
    std::fs::write(path, encode(store))?;
    Ok(())
}

/// Loads a snapshot from `path`.
pub fn load_from_file(path: &Path) -> Result<TaxonomyStore, PersistError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_u32(buf: &mut &[u8], what: &'static str) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated(what));
    }
    Ok(buf.get_u32_le())
}

fn get_u8(buf: &mut &[u8], what: &'static str) -> Result<u8, PersistError> {
    if buf.remaining() < 1 {
        return Err(PersistError::Truncated(what));
    }
    Ok(buf.get_u8())
}

fn get_f32(buf: &mut &[u8], what: &'static str) -> Result<f32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated(what));
    }
    Ok(buf.get_f32_le())
}

fn get_str(buf: &mut &[u8]) -> Result<String, PersistError> {
    let len = get_u32(buf, "string length")? as usize;
    if buf.remaining() < len {
        return Err(PersistError::Truncated("string body"));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| PersistError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};
    use proptest::prelude::*;

    fn demo_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let zhang = s.add_entity("张学友", None);
        s.add_alias(liu, "Andy Lau");
        s.add_attribute(liu, "职业");
        s.add_attribute(liu, "代表作品");
        let actor = s.add_concept("演员");
        let singer = s.add_concept("歌手");
        let person = s.add_concept("人物");
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_entity_is_a(liu, actor, IsAMeta::new(Source::Bracket, 0.96));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.97));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Infobox, 0.9));
        s
    }

    fn assert_stores_equal(a: &TaxonomyStore, b: &TaxonomyStore) {
        assert_eq!(a.num_entities(), b.num_entities());
        assert_eq!(a.num_concepts(), b.num_concepts());
        assert_eq!(a.num_is_a(), b.num_is_a());
        for id in a.entity_ids() {
            assert_eq!(a.entity_key(id), b.entity_key(id));
            let ea: Vec<_> = a
                .concepts_of(id)
                .iter()
                .map(|(c, m)| (a.concept_name(*c).to_string(), m.source, m.confidence))
                .collect();
            let eb: Vec<_> = b
                .concepts_of(id)
                .iter()
                .map(|(c, m)| (b.concept_name(*c).to_string(), m.source, m.confidence))
                .collect();
            assert_eq!(ea, eb);
            let attrs_a: Vec<_> = a.attributes_of(id).iter().map(|&s| a.resolve(s)).collect();
            let attrs_b: Vec<_> = b.attributes_of(id).iter().map(|&s| b.resolve(s)).collect();
            assert_eq!(attrs_a, attrs_b);
        }
        for id in a.concept_ids() {
            assert_eq!(a.concept_name(id), b.concept_name(id));
        }
    }

    #[test]
    fn roundtrip_demo_store() {
        let store = demo_store();
        let bytes = encode(&store);
        let loaded = decode(&bytes).expect("decode");
        assert_stores_equal(&store, &loaded);
    }

    #[test]
    fn file_roundtrip() {
        let store = demo_store();
        let dir = std::env::temp_dir().join("cnp_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.cnpb");
        save_to_file(&store, &path).expect("save");
        let loaded = load_from_file(&path).expect("load");
        assert_stores_equal(&store, &loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode(b"XXXX\x01\x00\x00\x00").unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(999);
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, PersistError::BadVersion(999)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&demo_store());
        // Chop the snapshot at several points; each must error, not panic.
        for cut in [0, 3, 8, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            let res = decode(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} unexpectedly decoded");
        }
    }

    #[test]
    fn empty_store_roundtrip() {
        let store = TaxonomyStore::new();
        let loaded = decode(&encode(&store)).unwrap();
        assert_eq!(loaded.num_entities(), 0);
        assert_eq!(loaded.num_concepts(), 0);
        assert_eq!(loaded.num_is_a(), 0);
    }

    proptest! {
        /// Arbitrary small stores round-trip exactly.
        #[test]
        fn roundtrip_arbitrary(
            entities in proptest::collection::vec("[一-龥]{1,4}", 1..10),
            concepts in proptest::collection::vec("[一-龥]{1,4}", 1..8),
            edges in proptest::collection::vec((0usize..10, 0usize..8, 0.0f32..=1.0), 0..30),
        ) {
            let mut store = TaxonomyStore::new();
            let eids: Vec<_> = entities.iter().map(|n| store.add_entity(n, None)).collect();
            let cids: Vec<_> = concepts.iter().map(|n| store.add_concept(n)).collect();
            for (e, c, conf) in edges {
                if e < eids.len() && c < cids.len() {
                    store.add_entity_is_a(eids[e], cids[c], IsAMeta::new(Source::Tag, conf));
                }
            }
            let loaded = decode(&encode(&store)).unwrap();
            prop_assert_eq!(store.num_entities(), loaded.num_entities());
            prop_assert_eq!(store.num_concepts(), loaded.num_concepts());
            prop_assert_eq!(store.num_is_a(), loaded.num_is_a());
        }
    }
}
