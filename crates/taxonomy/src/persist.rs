//! Compact binary snapshots of the taxonomy, in three formats.
//!
//! A production taxonomy service loads its state from a snapshot at boot.
//! All formats share the `CNPB` magic, the sectioned framing and a
//! little-endian codec over [`bytes`]; they differ in *what* they persist
//! and how much work boot does:
//!
//! * **v1** persists the mutable build-time [`TaxonomyStore`]. Booting the
//!   serving path from a v1 snapshot costs a full
//!   [`FrozenTaxonomy::freeze`] (Tarjan SCC condensation, depth DP,
//!   ancestor-closure materialisation) before the first query.
//! * **v2** persists the [`FrozenTaxonomy`] itself — interner, entity and
//!   concept tables, all six CSR relations, the mention table, topological
//!   order, exact depths and the materialised ancestor closure — so boot is
//!   a validate-and-go load that still copies every section into owned
//!   `Vec`s.
//! * **v3** persists the same snapshot for
//!   [`crate::view::FrozenTaxonomyView`]: queries are answered by
//!   borrowing directly out of the one loaded buffer, so boot allocates
//!   nothing per section and validation reduces to a single
//!   bounds/invariant sweep over the raw bytes. The bytes are smaller
//!   too — CSR rows are delta+varint-encoded ([`crate::varint`]) and the
//!   materialised ancestor closure is replaced by a succinct run/bitset
//!   encoding decoded on the query path.
//!
//! Shared layout:
//!
//! ```text
//! magic "CNPB" | version u32 = 1|2|3
//!   | section*          section = tag [u8;4] | byte-length u64 | payload
//!   | "CKSM" section    FNV-1a of every byte before the CKSM tag
//! ```
//!
//! Readers skip sections with unknown tags, so future writers can add
//! sections (before `CKSM`) without breaking old readers. Decoding
//! validates the magic and version, every string, symbol and id bound, the
//! CSR invariants (first offset zero, monotone row offsets, entry count
//! matching the final offset, in-bounds column ids), the closure and depth
//! consistency with the parent edges, and finally the content checksum —
//! a truncated or bit-flipped snapshot fails loudly instead of producing a
//! broken service. Pre-allocations are capped by the remaining buffer
//! length, so a hostile length field cannot trigger an OOM.
//!
//! [`Snapshot::load`] is the single entry point that dispatches on the
//! version byte: v1 loads a store (freeze before serving), v2 loads the
//! frozen snapshot directly, v3 opens the borrowed view.

use crate::frozen::{Csr, FrozenTaxonomy};
use crate::hash::{FxHashMap, FxHashSet};
use crate::interner::{Interner, Symbol};
use crate::overlay::{DeltaOp, DeltaOverlay};
use crate::read::AnySnapshot;
use crate::store::{ConceptId, EntityId, EntityRecord, IsAMeta, Source, TaxonomyStore};
use crate::varint::{put_varint, varint_len, zigzag};
use crate::view::FrozenTaxonomyView;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cnp_runtime::stable_hash;
use std::fmt;
use std::path::Path;

pub(crate) const MAGIC: &[u8; 4] = b"CNPB";
/// v1: the mutable [`TaxonomyStore`] (load, then freeze).
pub const VERSION_STORE: u32 = 1;
/// v2: the [`FrozenTaxonomy`] serving snapshot (validate-and-go).
pub const VERSION_FROZEN: u32 = 2;
/// v3: the zero-copy [`FrozenTaxonomyView`] snapshot (borrow-and-go).
pub const VERSION_VIEW: u32 = 3;

// ----- section tags (v2 + v3; v3-only tags noted) -------------------------

pub(crate) const SEC_INTERNER: [u8; 4] = *b"INTR";
pub(crate) const SEC_ENTITIES: [u8; 4] = *b"ENTS";
pub(crate) const SEC_CONCEPTS: [u8; 4] = *b"CNPT";
pub(crate) const SEC_ENTITY_CONCEPTS: [u8; 4] = *b"ECON";
pub(crate) const SEC_CONCEPT_ENTITIES: [u8; 4] = *b"CENT";
pub(crate) const SEC_CONCEPT_PARENTS: [u8; 4] = *b"CPAR";
pub(crate) const SEC_CONCEPT_CHILDREN: [u8; 4] = *b"CCHD";
pub(crate) const SEC_ENTITY_ATTRS: [u8; 4] = *b"EATT";
pub(crate) const SEC_ENTITY_ALIASES: [u8; 4] = *b"EALS";
pub(crate) const SEC_ANCESTORS: [u8; 4] = *b"ANCS";
pub(crate) const SEC_TOPO: [u8; 4] = *b"TOPO";
pub(crate) const SEC_DEPTH: [u8; 4] = *b"DPTH";
pub(crate) const SEC_MENTIONS: [u8; 4] = *b"MENT";
/// v3 only: interner symbols sorted by string bytes (binary-search index).
pub(crate) const SEC_STR_SORT: [u8; 4] = *b"SSRT";
/// v3 only: concept ids sorted by name symbol (binary-search index).
pub(crate) const SEC_CONCEPT_SORT: [u8; 4] = *b"CSRT";
/// v3 only: succinct ancestor closure (run/bitset rows, replaces `ANCS`).
pub(crate) const SEC_ANCESTOR_SUCC: [u8; 4] = *b"ANCC";
/// v3 only: the deduplicated `(source, confidence)` dictionary every meta
/// row indexes into — real corpora carry a handful of distinct edge
/// provenances, so one varint per edge replaces five raw bytes.
pub(crate) const SEC_META_DICT: [u8; 4] = *b"MDCT";
/// v3 only: mention-key hash index — `(stable_hash32, symbol)` pairs for
/// every non-empty mention row, sorted by hash. `men2ent` resolves a
/// mention with one hash plus a binary search over fixed-width rows
/// instead of `log n` string comparisons through the interner.
pub(crate) const SEC_MENTION_HASH: [u8; 4] = *b"MHSH";
pub(crate) const SEC_CHECKSUM: [u8; 4] = *b"CKSM";

/// Rows per directory entry in a v3 varint-CSR section: row `i` is reached
/// by one directory jump plus at most `VCSR_BLOCK - 1` length skips.
///
/// 8 keeps the skip loop short enough that random row access (the
/// `getEntity` hyponym walk, `entity_edge` confidence probes) stays within
/// ~2x of the owned CSR, while the directory still costs only half a byte
/// per row.
pub(crate) const VCSR_BLOCK: usize = 8;

/// v3 succinct-closure row flavors: strictly ascending (gap, run-length)
/// pairs, or a base id plus a bitmap spanning the row.
pub(crate) const ANCC_RANGES: u8 = 0;
pub(crate) const ANCC_BITSET: u8 = 1;

/// Errors produced while decoding a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// The snapshot does not start with the `CNPB` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the structure was complete.
    Truncated(&'static str),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An id/symbol referenced an out-of-range table index, or a structural
    /// invariant (CSR offsets, closure/depth consistency, …) failed.
    BadIndex(&'static str),
    /// The v2 content checksum did not match the payload.
    BadChecksum,
    /// A required v2 section was absent.
    MissingSection(&'static str),
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "snapshot magic mismatch"),
            PersistError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            PersistError::Truncated(what) => write!(f, "snapshot truncated while reading {what}"),
            PersistError::BadUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            PersistError::BadIndex(what) => write!(f, "snapshot contains out-of-range {what}"),
            PersistError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            PersistError::MissingSection(tag) => write!(f, "snapshot is missing section {tag}"),
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ----- version dispatch ---------------------------------------------------

/// Reads the magic + version header without decoding the body.
pub fn peek_version(buf: &[u8]) -> Result<u32, PersistError> {
    if buf.len() < 8 {
        return Err(PersistError::Truncated("header"));
    }
    if &buf[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    Ok(u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]))
}

/// A decoded snapshot of any format, from the one [`Snapshot::load`]
/// entry point that dispatches on the version header.
#[derive(Debug)]
pub enum Snapshot {
    /// A v1 snapshot: the mutable build store. Freeze before serving.
    Store(Box<TaxonomyStore>),
    /// A v2 snapshot: the frozen serving snapshot, ready to serve.
    Frozen(Box<FrozenTaxonomy>),
    /// A v3 snapshot: the borrowed zero-copy view, ready to serve.
    View(Box<FrozenTaxonomyView>),
}

impl Snapshot {
    /// Decodes a snapshot of any version.
    ///
    /// A v3 payload is copied once into the view's backing buffer (the
    /// slice may not outlive the snapshot); [`Snapshot::load_from_file`]
    /// avoids even that copy by handing the read buffer to the view.
    pub fn load(bytes: &[u8]) -> Result<Self, PersistError> {
        match peek_version(bytes)? {
            VERSION_STORE => Ok(Snapshot::Store(Box::new(decode(bytes)?))),
            VERSION_FROZEN => Ok(Snapshot::Frozen(Box::new(decode_frozen(bytes)?))),
            VERSION_VIEW => Ok(Snapshot::View(Box::new(FrozenTaxonomyView::open(
                Bytes::copy_from_slice(bytes),
            )?))),
            v => Err(PersistError::BadVersion(v)),
        }
    }

    /// Loads a snapshot of any version from `path`. A v3 file boots
    /// zero-copy: the read buffer *is* the view's backing storage.
    pub fn load_from_file(path: &Path) -> Result<Self, PersistError> {
        let bytes = std::fs::read(path)?;
        if peek_version(&bytes)? == VERSION_VIEW {
            let view = FrozenTaxonomyView::open(Bytes::from(bytes))?;
            return Ok(Snapshot::View(Box::new(view)));
        }
        Self::load(&bytes)
    }

    /// Format version of the decoded snapshot.
    pub fn version(&self) -> u32 {
        match self {
            Snapshot::Store(_) => VERSION_STORE,
            Snapshot::Frozen(_) => VERSION_FROZEN,
            Snapshot::View(_) => VERSION_VIEW,
        }
    }

    /// The owned serving snapshot: a v2 payload is returned as-is, a v1
    /// store pays the freeze (Tarjan + depth DP + closure) here, and a v3
    /// view is fully decoded and deep-validated (the only variant that can
    /// fail — a v3 boot defers the semantic cross-checks to this
    /// materialisation).
    pub fn into_frozen(self) -> Result<FrozenTaxonomy, PersistError> {
        match self {
            Snapshot::Store(store) => Ok(FrozenTaxonomy::freeze(&store)),
            Snapshot::Frozen(frozen) => Ok(*frozen),
            Snapshot::View(view) => view.to_frozen(),
        }
    }

    /// The snapshot as a serving backend, preserving the zero-copy view
    /// where there is one: v1 freezes, v2 is wrapped as-is, v3 keeps
    /// borrowing from its buffer.
    pub fn into_any(self) -> AnySnapshot {
        match self {
            Snapshot::Store(store) => AnySnapshot::Owned(FrozenTaxonomy::freeze(&store)),
            Snapshot::Frozen(frozen) => AnySnapshot::Owned(*frozen),
            Snapshot::View(view) => AnySnapshot::View(*view),
        }
    }
}

// ----- v1: the mutable store ----------------------------------------------

/// Serializes the store to bytes (format v1).
pub fn encode(store: &TaxonomyStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_STORE);

    // Interner strings, in symbol order (Symbol(0) == "").
    let strings: Vec<&str> = store.interner().iter().map(|(_, s)| s).collect();
    buf.put_u32_le(strings.len() as u32);
    for s in &strings {
        put_str(&mut buf, s);
    }

    // Entities.
    buf.put_u32_le(store.num_entities() as u32);
    for id in store.entity_ids() {
        let rec = store.entity(id);
        buf.put_u32_le(rec.name.0);
        buf.put_u32_le(rec.disambig.0);
    }

    // Concepts (by name symbol).
    buf.put_u32_le(store.num_concepts() as u32);
    for id in store.concept_ids() {
        let name = store.concept_name(id);
        let sym = store.interner().get(name).expect("concept name interned");
        buf.put_u32_le(sym.0);
    }

    // Per-entity: concept edges, attributes, aliases.
    for id in store.entity_ids() {
        let edges = store.concepts_of(id);
        buf.put_u32_le(edges.len() as u32);
        for &(c, meta) in edges {
            buf.put_u32_le(c.0);
            buf.put_u8(meta.source.to_u8());
            buf.put_f32_le(meta.confidence);
        }
        let attrs = store.attributes_of(id);
        buf.put_u32_le(attrs.len() as u32);
        for a in attrs {
            buf.put_u32_le(a.0);
        }
        let aliases = store.aliases_of(id);
        buf.put_u32_le(aliases.len() as u32);
        for a in aliases {
            buf.put_u32_le(a.0);
        }
    }

    // Per-concept parent edges.
    for id in store.concept_ids() {
        let parents = store.parents_of(id);
        buf.put_u32_le(parents.len() as u32);
        for &(p, meta) in parents {
            buf.put_u32_le(p.0);
            buf.put_u8(meta.source.to_u8());
            buf.put_f32_le(meta.confidence);
        }
    }

    buf.freeze()
}

/// Deserializes a store from bytes (format v1).
///
/// Every count-prefixed pre-allocation is clamped by the bytes actually
/// remaining in the buffer, so a corrupt count field costs at most one
/// small allocation before the truncation is detected — never an OOM.
pub fn decode(mut buf: &[u8]) -> Result<TaxonomyStore, PersistError> {
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated("header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION_STORE {
        return Err(PersistError::BadVersion(version));
    }

    let n_strings = get_u32(&mut buf, "string count")? as usize;
    // Each string costs at least its 4-byte length prefix.
    let mut strings = Vec::with_capacity(n_strings.min(buf.remaining() / 4));
    for _ in 0..n_strings {
        strings.push(get_str(&mut buf)?);
    }
    let resolve = |sym: u32, what: &'static str| -> Result<&str, PersistError> {
        strings
            .get(sym as usize)
            .map(|s| s.as_str())
            .ok_or(PersistError::BadIndex(what))
    };

    let mut store = TaxonomyStore::new();

    let n_entities = get_u32(&mut buf, "entity count")? as usize;
    // Each entity record is 8 bytes on the wire.
    let mut entity_ids = Vec::with_capacity(n_entities.min(buf.remaining() / 8));
    for _ in 0..n_entities {
        let name = get_u32(&mut buf, "entity name")?;
        let disambig = get_u32(&mut buf, "entity disambig")?;
        let name_s = resolve(name, "entity name symbol")?;
        let dis_s = resolve(disambig, "entity disambig symbol")?;
        let id = store.add_entity(name_s, if dis_s.is_empty() { None } else { Some(dis_s) });
        entity_ids.push(id);
    }

    let n_concepts = get_u32(&mut buf, "concept count")? as usize;
    // Each concept is a 4-byte symbol on the wire.
    let mut concept_ids = Vec::with_capacity(n_concepts.min(buf.remaining() / 4));
    for _ in 0..n_concepts {
        let sym = get_u32(&mut buf, "concept name")?;
        let name = resolve(sym, "concept name symbol")?;
        concept_ids.push(store.add_concept(name));
    }

    for &e in &entity_ids {
        let n_edges = get_u32(&mut buf, "entity edge count")? as usize;
        for _ in 0..n_edges {
            let c = get_u32(&mut buf, "edge concept")? as usize;
            let src = get_u8(&mut buf, "edge source")?;
            let conf = get_f32(&mut buf, "edge confidence")?;
            let &cid = concept_ids
                .get(c)
                .ok_or(PersistError::BadIndex("edge concept id"))?;
            let source = Source::from_u8(src).ok_or(PersistError::BadIndex("edge source tag"))?;
            store.add_entity_is_a(e, cid, IsAMeta::new(source, conf));
        }
        let n_attrs = get_u32(&mut buf, "attr count")? as usize;
        for _ in 0..n_attrs {
            let a = get_u32(&mut buf, "attr symbol")?;
            let s = resolve(a, "attr symbol")?.to_string();
            store.add_attribute(e, &s);
        }
        let n_aliases = get_u32(&mut buf, "alias count")? as usize;
        for _ in 0..n_aliases {
            let a = get_u32(&mut buf, "alias symbol")?;
            let s = resolve(a, "alias symbol")?.to_string();
            store.add_alias(e, &s);
        }
    }

    for &c in &concept_ids {
        let n_parents = get_u32(&mut buf, "parent count")? as usize;
        for _ in 0..n_parents {
            let p = get_u32(&mut buf, "parent concept")? as usize;
            let src = get_u8(&mut buf, "parent source")?;
            let conf = get_f32(&mut buf, "parent confidence")?;
            let &pid = concept_ids
                .get(p)
                .ok_or(PersistError::BadIndex("parent concept id"))?;
            let source = Source::from_u8(src).ok_or(PersistError::BadIndex("parent source tag"))?;
            store.add_concept_is_a(c, pid, IsAMeta::new(source, conf));
        }
    }

    Ok(store)
}

/// Writes a v1 store snapshot to `path`.
pub fn save_to_file(store: &TaxonomyStore, path: &Path) -> Result<(), PersistError> {
    std::fs::write(path, encode(store))?;
    Ok(())
}

/// Loads a v1 store snapshot from `path`.
pub fn load_from_file(path: &Path) -> Result<TaxonomyStore, PersistError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

// ----- v2: the frozen serving snapshot ------------------------------------

/// Serializes a frozen snapshot to bytes (format v2).
pub fn encode_frozen(f: &FrozenTaxonomy) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_FROZEN);

    section(&mut buf, SEC_INTERNER, |b| {
        b.put_u32_le(f.interner.len() as u32);
        for (_, s) in f.interner.iter() {
            put_str(b, s);
        }
    });
    section(&mut buf, SEC_ENTITIES, |b| {
        b.put_u32_le(f.entities.len() as u32);
        for rec in &f.entities {
            b.put_u32_le(rec.name.0);
            b.put_u32_le(rec.disambig.0);
        }
    });
    section(&mut buf, SEC_CONCEPTS, |b| {
        b.put_u32_le(f.concepts.len() as u32);
        for sym in &f.concepts {
            b.put_u32_le(sym.0);
        }
    });
    section(&mut buf, SEC_ENTITY_CONCEPTS, |b| {
        put_meta_csr(b, &f.entity_concepts);
    });
    section(&mut buf, SEC_CONCEPT_ENTITIES, |b| {
        put_id_csr(b, &f.concept_entities, |e: &EntityId| e.0);
    });
    section(&mut buf, SEC_CONCEPT_PARENTS, |b| {
        put_meta_csr(b, &f.concept_parents);
    });
    section(&mut buf, SEC_CONCEPT_CHILDREN, |b| {
        put_id_csr(b, &f.concept_children, |c: &ConceptId| c.0);
    });
    section(&mut buf, SEC_ENTITY_ATTRS, |b| {
        put_id_csr(b, &f.entity_attrs, |s: &Symbol| s.0);
    });
    section(&mut buf, SEC_ENTITY_ALIASES, |b| {
        put_id_csr(b, &f.entity_aliases, |s: &Symbol| s.0);
    });
    section(&mut buf, SEC_ANCESTORS, |b| {
        put_id_csr(b, &f.ancestors, |c: &ConceptId| c.0);
    });
    section(&mut buf, SEC_TOPO, |b| {
        b.put_u32_le(f.topo.len() as u32);
        for c in &f.topo {
            b.put_u32_le(c.0);
        }
    });
    section(&mut buf, SEC_DEPTH, |b| {
        b.put_u32_le(f.depth.len() as u32);
        for &d in &f.depth {
            b.put_u32_le(d);
        }
    });
    section(&mut buf, SEC_MENTIONS, |b| {
        put_id_csr(b, &f.by_mention, |e: &EntityId| e.0);
    });

    // Content checksum over everything written so far (header + sections).
    let digest = stable_hash(&buf);
    buf.put_slice(&SEC_CHECKSUM);
    buf.put_u64_le(8);
    buf.put_u64_le(digest);
    buf.freeze()
}

/// Raw section payloads collected by the first decode pass, before any
/// cross-section validation. Also the hand-off point for
/// [`FrozenTaxonomyView::to_frozen`], which decodes its borrowed sections
/// into the same shape and funnels them through [`validate_frozen`].
#[derive(Default)]
pub(crate) struct RawSections {
    pub(crate) interner: Option<Interner>,
    pub(crate) entities: Option<Vec<EntityRecord>>,
    pub(crate) concepts: Option<Vec<Symbol>>,
    pub(crate) entity_concepts: Option<Csr<(ConceptId, IsAMeta)>>,
    pub(crate) concept_entities: Option<Csr<EntityId>>,
    pub(crate) concept_parents: Option<Csr<(ConceptId, IsAMeta)>>,
    pub(crate) concept_children: Option<Csr<ConceptId>>,
    pub(crate) entity_attrs: Option<Csr<Symbol>>,
    pub(crate) entity_aliases: Option<Csr<Symbol>>,
    pub(crate) ancestors: Option<Csr<ConceptId>>,
    pub(crate) topo: Option<Vec<ConceptId>>,
    pub(crate) depth: Option<Vec<u32>>,
    pub(crate) by_mention: Option<Csr<EntityId>>,
}

/// Deserializes a frozen snapshot from bytes (format v2), validating every
/// bound, the CSR/closure/depth invariants and the content checksum.
pub fn decode_frozen(bytes: &[u8]) -> Result<FrozenTaxonomy, PersistError> {
    if peek_version(bytes)? != VERSION_FROZEN {
        return Err(PersistError::BadVersion(peek_version(bytes)?));
    }
    let mut buf = &bytes[8..];
    let mut raw = RawSections::default();
    let mut checksum_seen = false;

    while !buf.is_empty() {
        if buf.remaining() < 12 {
            return Err(PersistError::Truncated("section header"));
        }
        // Byte offset of this section's tag, for the checksum prefix.
        let tag_pos = bytes.len() - buf.len();
        let mut tag = [0u8; 4];
        buf.copy_to_slice(&mut tag);
        let len = buf.get_u64_le();
        if (buf.remaining() as u64) < len {
            return Err(PersistError::Truncated("section body"));
        }
        let (body, rest) = buf.split_at(len as usize);
        buf = rest;
        match tag {
            SEC_INTERNER => raw.interner = Some(decode_interner(body)?),
            SEC_ENTITIES => raw.entities = Some(decode_entities(body)?),
            SEC_CONCEPTS => raw.concepts = Some(decode_u32_list(body, "concept table", Symbol)?),
            SEC_ENTITY_CONCEPTS => {
                raw.entity_concepts = Some(get_meta_csr(body, "entity-concept CSR")?)
            }
            SEC_CONCEPT_ENTITIES => {
                raw.concept_entities = Some(get_id_csr(body, "concept-entity CSR", EntityId)?)
            }
            SEC_CONCEPT_PARENTS => {
                raw.concept_parents = Some(get_meta_csr(body, "concept-parent CSR")?)
            }
            SEC_CONCEPT_CHILDREN => {
                raw.concept_children = Some(get_id_csr(body, "concept-child CSR", ConceptId)?)
            }
            SEC_ENTITY_ATTRS => {
                raw.entity_attrs = Some(get_id_csr(body, "entity-attribute CSR", Symbol)?)
            }
            SEC_ENTITY_ALIASES => {
                raw.entity_aliases = Some(get_id_csr(body, "entity-alias CSR", Symbol)?)
            }
            SEC_ANCESTORS => raw.ancestors = Some(get_id_csr(body, "ancestor CSR", ConceptId)?),
            SEC_TOPO => raw.topo = Some(decode_u32_list(body, "topo order", ConceptId)?),
            SEC_DEPTH => raw.depth = Some(decode_u32_list(body, "depth table", |d| d)?),
            SEC_MENTIONS => raw.by_mention = Some(get_id_csr(body, "mention CSR", EntityId)?),
            SEC_CHECKSUM => {
                let mut body = body;
                if len != 8 {
                    return Err(PersistError::BadIndex("checksum section length"));
                }
                if body.get_u64_le() != stable_hash(&bytes[..tag_pos]) {
                    return Err(PersistError::BadChecksum);
                }
                if !buf.is_empty() {
                    return Err(PersistError::BadIndex("data after checksum section"));
                }
                checksum_seen = true;
            }
            // Unknown tag: a future format extension. Skip it; the bytes
            // are still covered by the checksum.
            _ => {}
        }
    }
    if !checksum_seen {
        return Err(PersistError::MissingSection("CKSM"));
    }
    validate_frozen(raw)
}

/// Writes a v2 frozen snapshot to `path`.
pub fn save_frozen_to_file(f: &FrozenTaxonomy, path: &Path) -> Result<(), PersistError> {
    std::fs::write(path, encode_frozen(f))?;
    Ok(())
}

/// Loads a v2 frozen snapshot from `path`.
pub fn load_frozen_from_file(path: &Path) -> Result<FrozenTaxonomy, PersistError> {
    let bytes = std::fs::read(path)?;
    decode_frozen(&bytes)
}

/// Cross-section validation + derived-map rebuild. Everything the freeze
/// computes that is *not* on the wire (the three hash maps) is rebuilt
/// here; everything that is on the wire is checked for mutual consistency
/// so a decoded snapshot upholds the same invariants a freshly frozen one
/// does.
pub(crate) fn validate_frozen(raw: RawSections) -> Result<FrozenTaxonomy, PersistError> {
    let missing = PersistError::MissingSection;
    let interner = raw.interner.ok_or(missing("INTR"))?;
    let entities = raw.entities.ok_or(missing("ENTS"))?;
    let concepts = raw.concepts.ok_or(missing("CNPT"))?;
    let entity_concepts = raw.entity_concepts.ok_or(missing("ECON"))?;
    let concept_entities = raw.concept_entities.ok_or(missing("CENT"))?;
    let concept_parents = raw.concept_parents.ok_or(missing("CPAR"))?;
    let concept_children = raw.concept_children.ok_or(missing("CCHD"))?;
    let entity_attrs = raw.entity_attrs.ok_or(missing("EATT"))?;
    let entity_aliases = raw.entity_aliases.ok_or(missing("EALS"))?;
    let ancestors = raw.ancestors.ok_or(missing("ANCS"))?;
    let topo = raw.topo.ok_or(missing("TOPO"))?;
    let depth = raw.depth.ok_or(missing("DPTH"))?;
    let by_mention = raw.by_mention.ok_or(missing("MENT"))?;

    let n_strings = interner.len();
    let n_entities = entities.len();
    let n_concepts = concepts.len();
    let sym_ok = |s: Symbol| s.index() < n_strings;

    // Entity and concept tables: symbol bounds + unique keys.
    let mut entity_by_key = FxHashMap::default();
    for (i, rec) in entities.iter().enumerate() {
        if !sym_ok(rec.name) || !sym_ok(rec.disambig) {
            return Err(PersistError::BadIndex("entity symbol"));
        }
        if entity_by_key
            .insert((rec.name, rec.disambig), EntityId(i as u32))
            .is_some()
        {
            return Err(PersistError::BadIndex("duplicate entity key"));
        }
    }
    let mut concept_by_sym = FxHashMap::default();
    for (i, &sym) in concepts.iter().enumerate() {
        if !sym_ok(sym) {
            return Err(PersistError::BadIndex("concept symbol"));
        }
        if concept_by_sym.insert(sym, ConceptId(i as u32)).is_some() {
            return Err(PersistError::BadIndex("duplicate concept symbol"));
        }
    }

    // CSR shape: row counts must match their owning tables.
    let rows = [
        (
            entity_concepts.num_rows(),
            n_entities,
            "entity-concept rows",
        ),
        (entity_attrs.num_rows(), n_entities, "entity-attribute rows"),
        (entity_aliases.num_rows(), n_entities, "entity-alias rows"),
        (
            concept_entities.num_rows(),
            n_concepts,
            "concept-entity rows",
        ),
        (
            concept_parents.num_rows(),
            n_concepts,
            "concept-parent rows",
        ),
        (
            concept_children.num_rows(),
            n_concepts,
            "concept-child rows",
        ),
        (ancestors.num_rows(), n_concepts, "ancestor rows"),
        (by_mention.num_rows(), n_strings, "mention rows"),
    ];
    for (got, want, what) in rows {
        if got != want {
            return Err(PersistError::BadIndex(what));
        }
    }
    if topo.len() != n_concepts || depth.len() != n_concepts {
        return Err(PersistError::BadIndex("topo/depth length"));
    }

    // Column-id bounds per relation.
    let concept_ok = |c: ConceptId| c.index() < n_concepts;
    let entity_ok = |e: EntityId| e.index() < n_entities;
    if !entity_concepts.data().iter().all(|&(c, _)| concept_ok(c)) {
        return Err(PersistError::BadIndex("entity-concept column"));
    }
    if !concept_entities.data().iter().all(|&e| entity_ok(e)) {
        return Err(PersistError::BadIndex("concept-entity column"));
    }
    if !concept_parents.data().iter().all(|&(c, _)| concept_ok(c)) {
        return Err(PersistError::BadIndex("concept-parent column"));
    }
    if !concept_children.data().iter().all(|&c| concept_ok(c)) {
        return Err(PersistError::BadIndex("concept-child column"));
    }
    if !entity_attrs.data().iter().all(|&s| sym_ok(s)) {
        return Err(PersistError::BadIndex("entity-attribute column"));
    }
    if !entity_aliases.data().iter().all(|&s| sym_ok(s)) {
        return Err(PersistError::BadIndex("entity-alias column"));
    }
    if !ancestors.data().iter().all(|&c| concept_ok(c)) {
        return Err(PersistError::BadIndex("ancestor column"));
    }
    if !by_mention.data().iter().all(|&e| entity_ok(e)) {
        return Err(PersistError::BadIndex("mention column"));
    }

    // Topological order must be a permutation of the concepts.
    // cnp-lint: allow(capped-decode) reason="n_concepts is the length of the already-capped decoded concept table, not a raw wire value"
    let mut seen = vec![false; n_concepts];
    for &c in &topo {
        if !concept_ok(c) || std::mem::replace(&mut seen[c.index()], true) {
            return Err(PersistError::BadIndex("topo permutation"));
        }
    }

    // Relation symmetry: parents ↔ children and entity-edges ↔ entity
    // rows must describe the same edge sets (no edge lost or invented).
    let mut child_edges = FxHashSet::default();
    for p in 0..n_concepts {
        for &c in concept_children.row(p) {
            if !child_edges.insert((c, ConceptId(p as u32))) {
                return Err(PersistError::BadIndex("duplicate child edge"));
            }
        }
    }
    let mut n_parent_edges = 0usize;
    for c in 0..n_concepts {
        for &(p, _) in concept_parents.row(c) {
            n_parent_edges += 1;
            if p.index() == c {
                return Err(PersistError::BadIndex("self parent edge"));
            }
            if !child_edges.contains(&(ConceptId(c as u32), p)) {
                return Err(PersistError::BadIndex("parent edge without child edge"));
            }
        }
    }
    if n_parent_edges != child_edges.len() {
        return Err(PersistError::BadIndex("parent/child edge count"));
    }
    let mut entity_edges = FxHashSet::default();
    for c in 0..n_concepts {
        for &e in concept_entities.row(c) {
            if !entity_edges.insert((e, ConceptId(c as u32))) {
                return Err(PersistError::BadIndex("duplicate concept-entity edge"));
            }
        }
    }
    let mut n_entity_edges = 0usize;
    for e in 0..n_entities {
        for &(c, _) in entity_concepts.row(e) {
            n_entity_edges += 1;
            if !entity_edges.contains(&(EntityId(e as u32), c)) {
                return Err(PersistError::BadIndex("entity edge without concept edge"));
            }
        }
    }
    if n_entity_edges != entity_edges.len() {
        return Err(PersistError::BadIndex("entity/concept edge count"));
    }

    // Closure & depth consistency with the parent edges: ancestor rows are
    // strictly sorted, never contain the concept itself, and contain every
    // direct parent; a parent's depth never exceeds its child's, and a
    // parentless concept sits at depth 0.
    for c in 0..n_concepts {
        let row = ancestors.row(c);
        if !row.windows(2).all(|w| w[0] < w[1]) {
            return Err(PersistError::BadIndex("unsorted ancestor row"));
        }
        if row.binary_search(&ConceptId(c as u32)).is_ok() {
            return Err(PersistError::BadIndex("self ancestor"));
        }
        let parents = concept_parents.row(c);
        for &(p, _) in parents {
            if row.binary_search(&p).is_err() {
                return Err(PersistError::BadIndex("parent missing from closure"));
            }
            if depth[p.index()] > depth[c] {
                return Err(PersistError::BadIndex("depth inversion"));
            }
        }
        if parents.is_empty() && depth[c] != 0 {
            return Err(PersistError::BadIndex("parentless depth"));
        }
    }

    // Mention rows: strictly sorted, and every listed sense actually
    // carries the mention symbol as its name or one of its aliases.
    for sym in 0..n_strings {
        let row = by_mention.row(sym);
        if !row.windows(2).all(|w| w[0] < w[1]) {
            return Err(PersistError::BadIndex("unsorted mention row"));
        }
        let sym = Symbol(sym as u32);
        for &e in row {
            let rec = entities[e.index()];
            if rec.name != sym && !entity_aliases.row(e.index()).contains(&sym) {
                return Err(PersistError::BadIndex("mention without name or alias"));
            }
        }
    }

    // Rebuild the disambiguated full-key table (`name（disambig）` → sense).
    let mut full_keys = FxHashMap::default();
    for (i, rec) in entities.iter().enumerate() {
        if rec.disambig != Symbol(0) {
            let key = format!(
                "{}（{}）",
                interner.resolve(rec.name),
                interner.resolve(rec.disambig)
            );
            full_keys.insert(key, EntityId(i as u32));
        }
    }

    Ok(FrozenTaxonomy {
        interner,
        entities,
        entity_by_key,
        concepts,
        concept_by_sym,
        entity_concepts,
        concept_entities,
        concept_parents,
        concept_children,
        entity_attrs,
        entity_aliases,
        ancestors,
        topo,
        depth,
        by_mention,
        full_keys,
    })
}

// ----- v2 section codecs --------------------------------------------------

fn section(buf: &mut BytesMut, tag: [u8; 4], write: impl FnOnce(&mut BytesMut)) {
    // Write the payload in place and patch the length slot afterwards —
    // staging it in a scratch buffer would copy every payload byte twice
    // and transiently double the memory of the largest section.
    buf.put_slice(&tag);
    let len_at = buf.len();
    buf.put_u64_le(0);
    let start = buf.len();
    write(buf);
    let len = (buf.len() - start) as u64;
    buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

fn decode_interner(mut body: &[u8]) -> Result<Interner, PersistError> {
    let n = get_u32(&mut body, "string count")? as usize;
    let mut interner = Interner::new();
    for i in 0..n {
        let s = get_str(&mut body)?;
        // `Interner::new` pre-interns "" at 0, so a valid snapshot (whose
        // first string is "") re-interns every string at its own index;
        // duplicates or a missing leading "" surface as an index mismatch.
        if interner.intern(&s).index() != i {
            return Err(PersistError::BadIndex("duplicate interned string"));
        }
    }
    expect_consumed(body, "interner section")?;
    Ok(interner)
}

fn decode_entities(mut body: &[u8]) -> Result<Vec<EntityRecord>, PersistError> {
    let n = get_u32(&mut body, "entity count")? as usize;
    let mut out = Vec::with_capacity(n.min(body.remaining() / 8));
    for _ in 0..n {
        let name = Symbol(get_u32(&mut body, "entity name")?);
        let disambig = Symbol(get_u32(&mut body, "entity disambig")?);
        out.push(EntityRecord { name, disambig });
    }
    expect_consumed(body, "entity section")?;
    Ok(out)
}

fn decode_u32_list<T>(
    mut body: &[u8],
    what: &'static str,
    wrap: impl Fn(u32) -> T,
) -> Result<Vec<T>, PersistError> {
    let n = get_u32(&mut body, what)? as usize;
    let mut out = Vec::with_capacity(n.min(body.remaining() / 4));
    for _ in 0..n {
        out.push(wrap(get_u32(&mut body, what)?));
    }
    expect_consumed(body, what)?;
    Ok(out)
}

/// CSR wire layout: `rows u32 | offsets (rows+1)×u32 | entries u32 | data`.
fn put_csr_header<T: Copy>(buf: &mut BytesMut, csr: &Csr<T>) {
    let (offsets, data) = csr.parts();
    buf.put_u32_le((offsets.len() - 1) as u32);
    for &o in offsets {
        buf.put_u32_le(o);
    }
    buf.put_u32_le(data.len() as u32);
}

fn put_id_csr<T: Copy>(buf: &mut BytesMut, csr: &Csr<T>, id: impl Fn(&T) -> u32) {
    put_csr_header(buf, csr);
    for t in csr.data() {
        buf.put_u32_le(id(t));
    }
}

fn put_meta_csr(buf: &mut BytesMut, csr: &Csr<(ConceptId, IsAMeta)>) {
    put_csr_header(buf, csr);
    for &(c, meta) in csr.data() {
        buf.put_u32_le(c.0);
        buf.put_u8(meta.source.to_u8());
        // `IsAMeta`'s fields are public, so an unclamped or NaN confidence
        // can reach a store without passing `IsAMeta::new`. Clamp on the
        // way out (NaN → 0.0, the `IsAMeta::new` convention): the decoder
        // rejects out-of-range confidences as corruption, and a snapshot
        // that saved successfully must always load.
        let conf = if meta.confidence.is_nan() {
            0.0
        } else {
            meta.confidence.clamp(0.0, 1.0)
        };
        buf.put_f32_le(conf);
    }
}

/// Reads the CSR preamble, returning `(offsets, n_entries)` with the
/// structural invariants (first offset 0, monotone, final offset == entry
/// count) already checked and allocations capped by the remaining bytes.
fn get_csr_preamble(
    body: &mut &[u8],
    what: &'static str,
    elem_size: usize,
) -> Result<(Vec<u32>, usize), PersistError> {
    let rows = get_u32(body, what)? as usize;
    let n_offsets = rows + 1;
    if (body.remaining() as u64) < n_offsets as u64 * 4 {
        return Err(PersistError::Truncated(what));
    }
    let mut offsets = Vec::with_capacity(n_offsets.min(body.remaining() / 4));
    let mut prev = 0u32;
    for i in 0..n_offsets {
        let o = body.get_u32_le();
        if (i == 0 && o != 0) || o < prev {
            return Err(PersistError::BadIndex(what));
        }
        prev = o;
        offsets.push(o);
    }
    let n_entries = get_u32(body, what)? as usize;
    if n_entries != prev as usize {
        return Err(PersistError::BadIndex(what));
    }
    if (body.remaining() as u64) < n_entries as u64 * elem_size as u64 {
        return Err(PersistError::Truncated(what));
    }
    Ok((offsets, n_entries))
}

fn get_id_csr<T: Copy>(
    mut body: &[u8],
    what: &'static str,
    wrap: impl Fn(u32) -> T,
) -> Result<Csr<T>, PersistError> {
    let (offsets, n_entries) = get_csr_preamble(&mut body, what, 4)?;
    let mut data = Vec::with_capacity(n_entries.min(body.remaining() / 4));
    for _ in 0..n_entries {
        data.push(wrap(body.get_u32_le()));
    }
    expect_consumed(body, what)?;
    Ok(Csr::from_parts(offsets, data))
}

fn get_meta_csr(
    mut body: &[u8],
    what: &'static str,
) -> Result<Csr<(ConceptId, IsAMeta)>, PersistError> {
    let (offsets, n_entries) = get_csr_preamble(&mut body, what, 9)?;
    let mut data = Vec::with_capacity(n_entries.min(body.remaining() / 9));
    for _ in 0..n_entries {
        let c = ConceptId(body.get_u32_le());
        let src = body.get_u8();
        let conf = body.get_f32_le();
        let source = Source::from_u8(src).ok_or(PersistError::BadIndex("edge source tag"))?;
        // Reject rather than clamp: the encoder only writes clamped values,
        // so an out-of-range confidence is corruption, and clamping would
        // break the byte-identical re-encode guarantee.
        if !(0.0..=1.0).contains(&conf) {
            return Err(PersistError::BadIndex("edge confidence"));
        }
        data.push((
            c,
            IsAMeta {
                source,
                confidence: conf,
            },
        ));
    }
    expect_consumed(body, what)?;
    Ok(Csr::from_parts(offsets, data))
}

fn expect_consumed(body: &[u8], what: &'static str) -> Result<(), PersistError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(PersistError::BadIndex(what))
    }
}

// ----- v3: the zero-copy view snapshot ------------------------------------
//
// Same framing and checksum as v2, different section bodies, designed so
// `FrozenTaxonomyView` can answer every query straight off the buffer:
//
// * `INTR` — `n u32 | n×u32 cumulative byte ends | concatenated UTF-8` —
//   string `i` is `blob[end[i-1]..end[i]]`, no per-string length prefix.
// * `SSRT` / `CSRT` — symbols sorted by string bytes / concept ids sorted
//   by name symbol: the binary-search indexes replacing the hash maps a
//   v2 boot rebuilds.
// * `MDCT` — `n u32 | n×(source u8 | conf f32)` — the deduplicated edge
//   metadata dictionary, sorted by `(source tag, confidence bits)`.
// * CSR relations — varint-CSR ("VCSR"): `rows u32 | entries u32 |
//   dir ceil(rows/VCSR_BLOCK)×u32 | payload_len u32 | payload`, each row
//   a `varint(byte_len)` prefix plus delta+varint-encoded ids (first id
//   raw, then zigzag deltas). Meta rows (`ECON`, `CPAR`) follow each id
//   with a varint `MDCT` index; `CENT` rows carry the same index for the
//   mirrored entity→concept edge, so the `getEntity` hyponym walk reads
//   its confidences inline instead of probing the entity's `ECON` row per
//   hit. The directory holds every `VCSR_BLOCK`th row's payload offset,
//   so random row access is one jump plus at most `VCSR_BLOCK - 1`
//   length skips.
// * `ANCC` — the succinct ancestor closure: per row either strictly
//   ascending `(gap, run_len-1)` pairs (closures over topo-ordered ids
//   are usually a handful of intervals) or `base + bitmap` where the
//   interval structure breaks down; the encoder picks whichever is
//   smaller. An empty row is zero bytes.

/// Serializes a frozen snapshot to bytes (format v3, for
/// [`FrozenTaxonomyView`]).
pub fn encode_frozen_v3(f: &FrozenTaxonomy) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_VIEW);

    section(&mut buf, SEC_INTERNER, |b| {
        b.put_u32_le(f.interner.len() as u32);
        let mut end = 0u32;
        for (_, s) in f.interner.iter() {
            end += s.len() as u32;
            b.put_u32_le(end);
        }
        for (_, s) in f.interner.iter() {
            b.put_slice(s.as_bytes());
        }
    });
    section(&mut buf, SEC_STR_SORT, |b| {
        let mut order: Vec<u32> = (0..f.interner.len() as u32).collect();
        order.sort_unstable_by_key(|&s| f.interner.resolve(Symbol(s)));
        for s in order {
            b.put_u32_le(s);
        }
    });
    section(&mut buf, SEC_ENTITIES, |b| {
        b.put_u32_le(f.entities.len() as u32);
        for rec in &f.entities {
            b.put_u32_le(rec.name.0);
            b.put_u32_le(rec.disambig.0);
        }
    });
    section(&mut buf, SEC_CONCEPTS, |b| {
        b.put_u32_le(f.concepts.len() as u32);
        for sym in &f.concepts {
            b.put_u32_le(sym.0);
        }
    });
    section(&mut buf, SEC_CONCEPT_SORT, |b| {
        let mut order: Vec<u32> = (0..f.concepts.len() as u32).collect();
        order.sort_unstable_by_key(|&c| f.concepts[c as usize].0);
        for c in order {
            b.put_u32_le(c);
        }
    });
    let dict = meta_dict(f);
    section(&mut buf, SEC_META_DICT, |b| {
        b.put_u32_le(dict.len() as u32);
        for &(src, conf_bits) in &dict {
            b.put_u8(src);
            b.put_u32_le(conf_bits);
        }
    });
    section(&mut buf, SEC_ENTITY_CONCEPTS, |b| {
        put_vcsr(b, &f.entity_concepts, |p, _, row| {
            put_meta_row(p, row, &dict);
        });
    });
    section(&mut buf, SEC_CONCEPT_ENTITIES, |b| {
        // Hyponym rows mirror the entity→concept edge's dictionary index
        // inline, so `getEntity` never probes `ECON` per hit.
        put_vcsr(b, &f.concept_entities, |p, c, row| {
            let mut prev = 0i64;
            let mut first = true;
            for &e in row {
                if first {
                    put_varint(p, u64::from(e.0));
                    first = false;
                } else {
                    put_varint(p, zigzag(i64::from(e.0) - prev));
                }
                prev = i64::from(e.0);
                let idx = f
                    .entity_concepts
                    .row(e.index())
                    .iter()
                    .find(|(cc, _)| cc.index() == c)
                    .map(|(_, m)| dict_index(&dict, m))
                    .unwrap_or(0);
                put_varint(p, idx);
            }
        });
    });
    section(&mut buf, SEC_CONCEPT_PARENTS, |b| {
        put_vcsr(b, &f.concept_parents, |p, _, row| {
            put_meta_row(p, row, &dict);
        });
    });
    section(&mut buf, SEC_CONCEPT_CHILDREN, |b| {
        put_vcsr(b, &f.concept_children, |p, _, row| {
            put_delta_ids(p, row.iter().map(|c| c.0));
        });
    });
    section(&mut buf, SEC_ENTITY_ATTRS, |b| {
        put_vcsr(b, &f.entity_attrs, |p, _, row| {
            put_delta_ids(p, row.iter().map(|s| s.0));
        });
    });
    section(&mut buf, SEC_ENTITY_ALIASES, |b| {
        put_vcsr(b, &f.entity_aliases, |p, _, row| {
            put_delta_ids(p, row.iter().map(|s| s.0));
        });
    });
    section(&mut buf, SEC_ANCESTOR_SUCC, |b| {
        put_vcsr(b, &f.ancestors, |p, _, row| put_ancc_row(p, row));
    });
    section(&mut buf, SEC_TOPO, |b| {
        b.put_u32_le(f.topo.len() as u32);
        for c in &f.topo {
            b.put_u32_le(c.0);
        }
    });
    section(&mut buf, SEC_DEPTH, |b| {
        b.put_u32_le(f.depth.len() as u32);
        for &d in &f.depth {
            b.put_u32_le(d);
        }
    });
    section(&mut buf, SEC_MENTIONS, |b| {
        put_vcsr(b, &f.by_mention, |p, _, row| {
            put_delta_ids(p, row.iter().map(|e| e.0));
        });
    });
    section(&mut buf, SEC_MENTION_HASH, |b| {
        let mut rows: Vec<(u32, u32)> = (0..f.interner.len())
            .filter(|&s| !f.by_mention.row(s).is_empty())
            .map(|s| {
                let hash = stable_hash(f.interner.resolve(Symbol(s as u32)).as_bytes());
                (hash as u32, s as u32)
            })
            .collect();
        rows.sort_unstable();
        b.put_u32_le(rows.len() as u32);
        for (hash, sym) in rows {
            b.put_u32_le(hash);
            b.put_u32_le(sym);
        }
    });

    let digest = stable_hash(&buf);
    buf.put_slice(&SEC_CHECKSUM);
    buf.put_u64_le(8);
    buf.put_u64_le(digest);
    buf.freeze()
}

/// Writes a v3 snapshot to `path`.
pub fn save_frozen_v3_to_file(f: &FrozenTaxonomy, path: &Path) -> Result<(), PersistError> {
    std::fs::write(path, encode_frozen_v3(f))?;
    Ok(())
}

fn put_vcsr<T: Copy>(
    buf: &mut BytesMut,
    csr: &Csr<T>,
    write_row: impl Fn(&mut BytesMut, usize, &[T]),
) {
    let rows = csr.num_rows();
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(csr.num_entries() as u32);
    let mut payload = BytesMut::new();
    let mut dir: Vec<u32> = Vec::new();
    let mut row_buf = BytesMut::new();
    for i in 0..rows {
        if i % VCSR_BLOCK == 0 {
            dir.push(payload.len() as u32);
        }
        row_buf.clear();
        write_row(&mut row_buf, i, csr.row(i));
        put_varint(&mut payload, row_buf.len() as u64);
        payload.put_slice(&row_buf);
    }
    for o in dir {
        buf.put_u32_le(o);
    }
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
}

fn put_delta_ids(b: &mut BytesMut, ids: impl Iterator<Item = u32>) {
    let mut prev = 0i64;
    let mut first = true;
    for id in ids {
        if first {
            put_varint(b, u64::from(id));
            first = false;
        } else {
            put_varint(b, zigzag(i64::from(id) - prev));
        }
        prev = i64::from(id);
    }
}

/// Same clamp as the v2 encoder (see `put_meta_csr`): the decoder rejects
/// out-of-range confidences, and a snapshot that saved successfully must
/// always load.
fn clamp_conf(c: f32) -> f32 {
    if c.is_nan() {
        0.0
    } else {
        c.clamp(0.0, 1.0)
    }
}

/// Builds the deduplicated `(source tag, confidence bits)` dictionary the
/// v3 meta rows index into, sorted so re-encoding a decoded snapshot is
/// byte-identical.
fn meta_dict(f: &FrozenTaxonomy) -> Vec<(u8, u32)> {
    let mut dict: Vec<(u8, u32)> = f
        .entity_concepts
        .data()
        .iter()
        .chain(f.concept_parents.data().iter())
        .map(|(_, m)| (m.source.to_u8(), clamp_conf(m.confidence).to_bits()))
        .collect();
    dict.sort_unstable();
    dict.dedup();
    dict
}

/// Dictionary index of an edge's metadata; 0 only ever falls out for a
/// meta value absent from the dictionary, which cannot happen for the
/// frozen snapshot the dictionary was built from.
fn dict_index(dict: &[(u8, u32)], m: &IsAMeta) -> u64 {
    let key = (m.source.to_u8(), clamp_conf(m.confidence).to_bits());
    dict.binary_search(&key).map_or(0, |i| i as u64)
}

fn put_meta_row(b: &mut BytesMut, row: &[(ConceptId, IsAMeta)], dict: &[(u8, u32)]) {
    let mut prev = 0i64;
    let mut first = true;
    for &(c, meta) in row {
        if first {
            put_varint(b, u64::from(c.0));
            first = false;
        } else {
            put_varint(b, zigzag(i64::from(c.0) - prev));
        }
        prev = i64::from(c.0);
        put_varint(b, dict_index(dict, &meta));
    }
}

fn put_ancc_row(b: &mut BytesMut, row: &[ConceptId]) {
    if row.is_empty() {
        return;
    }
    // Maximal runs of consecutive ids (rows are strictly ascending).
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for &c in row {
        match runs.last_mut() {
            Some((start, len)) if *start + *len == c.0 => *len += 1,
            _ => runs.push((c.0, 1)),
        }
    }
    let mut ranges_size = 1usize;
    let mut cursor = 0u32;
    for &(start, len) in &runs {
        ranges_size += varint_len(u64::from(start - cursor)) + varint_len(u64::from(len - 1));
        cursor = start + len;
    }
    let first = row[0].0;
    let span = (row[row.len() - 1].0 - first) as usize + 1;
    let bitset_size = 1 + varint_len(u64::from(first)) + span.div_ceil(8);
    if ranges_size <= bitset_size {
        b.put_u8(ANCC_RANGES);
        let mut cursor = 0u32;
        for &(start, len) in &runs {
            put_varint(b, u64::from(start - cursor));
            put_varint(b, u64::from(len - 1));
            cursor = start + len;
        }
    } else {
        b.put_u8(ANCC_BITSET);
        put_varint(b, u64::from(first));
        // cnp-lint: allow(capped-decode) reason="encoder-side scratch sized by the trusted in-memory closure row, not by a wire count"
        let mut bits = vec![0u8; span.div_ceil(8)];
        for &c in row {
            let off = (c.0 - first) as usize;
            bits[off / 8] |= 1 << (off % 8);
        }
        b.put_slice(&bits);
    }
}

// ----- delta sidecar (CNPD) -----------------------------------------------

/// Magic for the delta sidecar format ([`crate::overlay::DeltaOverlay`]).
/// Deltas are not snapshots — they are shipped next to one (or POSTed to
/// `/admin/ingest`), so they carry their own magic instead of a `CNPB`
/// version.
pub(crate) const DELTA_MAGIC: &[u8; 4] = b"CNPD";
/// Delta sidecar format version.
pub const VERSION_DELTA: u32 = 1;

const OP_ENTITY: u8 = 0;
const OP_CONCEPT: u8 = 1;
const OP_ALIAS: u8 = 2;
const OP_ATTRIBUTE: u8 = 3;
const OP_ENTITY_IS_A: u8 = 4;
const OP_CONCEPT_IS_A: u8 = 5;
const OP_RETRACT_ENTITY_IS_A: u8 = 6;
const OP_RETRACT_CONCEPT_IS_A: u8 = 7;

fn put_opt_str(buf: &mut BytesMut, s: Option<&str>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn get_opt_str(buf: &mut &[u8]) -> Result<Option<String>, PersistError> {
    match get_u8(buf, "option tag")? {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        _ => Err(PersistError::BadIndex("option tag")),
    }
}

fn put_meta(buf: &mut BytesMut, meta: &IsAMeta) {
    buf.put_u8(meta.source.to_u8());
    buf.put_f32_le(meta.confidence);
}

fn get_meta(buf: &mut &[u8]) -> Result<IsAMeta, PersistError> {
    let src = get_u8(buf, "edge source")?;
    let source = Source::from_u8(src).ok_or(PersistError::BadIndex("edge source tag"))?;
    let confidence = get_f32(buf, "edge confidence")?;
    Ok(IsAMeta::new(source, confidence))
}

/// Serializes a delta overlay:
///
/// ```text
/// magic "CNPD" | version u32 = 1 | op-count u32 | op* | checksum u64
/// ```
///
/// Each op is a tag byte followed by its string keys (u32-length-prefixed)
/// and, for upserts, the edge metadata; the trailing checksum is the
/// FNV-1a [`stable_hash`] of every preceding byte.
pub(crate) fn encode_delta(d: &DeltaOverlay) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(DELTA_MAGIC);
    buf.put_u32_le(VERSION_DELTA);
    buf.put_u32_le(d.ops.len() as u32);
    for op in &d.ops {
        match op {
            DeltaOp::Entity { name, disambig } => {
                buf.put_u8(OP_ENTITY);
                put_str(&mut buf, name);
                put_opt_str(&mut buf, disambig.as_deref());
            }
            DeltaOp::Concept { name } => {
                buf.put_u8(OP_CONCEPT);
                put_str(&mut buf, name);
            }
            DeltaOp::Alias {
                name,
                disambig,
                alias,
            } => {
                buf.put_u8(OP_ALIAS);
                put_str(&mut buf, name);
                put_opt_str(&mut buf, disambig.as_deref());
                put_str(&mut buf, alias);
            }
            DeltaOp::Attribute {
                name,
                disambig,
                attr,
            } => {
                buf.put_u8(OP_ATTRIBUTE);
                put_str(&mut buf, name);
                put_opt_str(&mut buf, disambig.as_deref());
                put_str(&mut buf, attr);
            }
            DeltaOp::EntityIsA {
                name,
                disambig,
                concept,
                meta,
            } => {
                buf.put_u8(OP_ENTITY_IS_A);
                put_str(&mut buf, name);
                put_opt_str(&mut buf, disambig.as_deref());
                put_str(&mut buf, concept);
                put_meta(&mut buf, meta);
            }
            DeltaOp::ConceptIsA { sub, sup, meta } => {
                buf.put_u8(OP_CONCEPT_IS_A);
                put_str(&mut buf, sub);
                put_str(&mut buf, sup);
                put_meta(&mut buf, meta);
            }
            DeltaOp::RetractEntityIsA {
                name,
                disambig,
                concept,
            } => {
                buf.put_u8(OP_RETRACT_ENTITY_IS_A);
                put_str(&mut buf, name);
                put_opt_str(&mut buf, disambig.as_deref());
                put_str(&mut buf, concept);
            }
            DeltaOp::RetractConceptIsA { sub, sup } => {
                buf.put_u8(OP_RETRACT_CONCEPT_IS_A);
                put_str(&mut buf, sub);
                put_str(&mut buf, sup);
            }
        }
    }
    let digest = stable_hash(&buf);
    buf.put_u64_le(digest);
    buf.freeze()
}

/// Deserializes a delta overlay, validating magic, version, structure and
/// the trailing content checksum. Like the snapshot decoders, every read
/// is capped by the remaining buffer, so hostile length fields fail with
/// [`PersistError::Truncated`] instead of over-allocating.
pub(crate) fn decode_delta(bytes: &[u8]) -> Result<DeltaOverlay, PersistError> {
    if bytes.len() < 4 {
        return Err(PersistError::Truncated("delta header"));
    }
    if &bytes[..4] != DELTA_MAGIC {
        return Err(PersistError::BadMagic);
    }
    // magic + version + op count before the body, checksum u64 after it.
    if bytes.len() < 12 + 8 {
        return Err(PersistError::Truncated("delta header"));
    }
    let (body, mut tail) = bytes.split_at(bytes.len() - 8);
    if tail.get_u64_le() != stable_hash(body) {
        return Err(PersistError::BadChecksum);
    }
    let mut buf = &body[4..];
    let version = get_u32(&mut buf, "delta version")?;
    if version != VERSION_DELTA {
        return Err(PersistError::BadVersion(version));
    }
    let count = get_u32(&mut buf, "delta op count")? as usize;
    let mut ops = Vec::new();
    for _ in 0..count {
        let op = match get_u8(&mut buf, "delta op tag")? {
            OP_ENTITY => DeltaOp::Entity {
                name: get_str(&mut buf)?,
                disambig: get_opt_str(&mut buf)?,
            },
            OP_CONCEPT => DeltaOp::Concept {
                name: get_str(&mut buf)?,
            },
            OP_ALIAS => DeltaOp::Alias {
                name: get_str(&mut buf)?,
                disambig: get_opt_str(&mut buf)?,
                alias: get_str(&mut buf)?,
            },
            OP_ATTRIBUTE => DeltaOp::Attribute {
                name: get_str(&mut buf)?,
                disambig: get_opt_str(&mut buf)?,
                attr: get_str(&mut buf)?,
            },
            OP_ENTITY_IS_A => DeltaOp::EntityIsA {
                name: get_str(&mut buf)?,
                disambig: get_opt_str(&mut buf)?,
                concept: get_str(&mut buf)?,
                meta: get_meta(&mut buf)?,
            },
            OP_CONCEPT_IS_A => DeltaOp::ConceptIsA {
                sub: get_str(&mut buf)?,
                sup: get_str(&mut buf)?,
                meta: get_meta(&mut buf)?,
            },
            OP_RETRACT_ENTITY_IS_A => DeltaOp::RetractEntityIsA {
                name: get_str(&mut buf)?,
                disambig: get_opt_str(&mut buf)?,
                concept: get_str(&mut buf)?,
            },
            OP_RETRACT_CONCEPT_IS_A => DeltaOp::RetractConceptIsA {
                sub: get_str(&mut buf)?,
                sup: get_str(&mut buf)?,
            },
            _ => return Err(PersistError::BadIndex("delta op tag")),
        };
        ops.push(op);
    }
    expect_consumed(buf, "delta ops")?;
    Ok(DeltaOverlay { ops })
}

// ----- shared primitives --------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_u32(buf: &mut &[u8], what: &'static str) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated(what));
    }
    Ok(buf.get_u32_le())
}

fn get_u8(buf: &mut &[u8], what: &'static str) -> Result<u8, PersistError> {
    if buf.remaining() < 1 {
        return Err(PersistError::Truncated(what));
    }
    Ok(buf.get_u8())
}

fn get_f32(buf: &mut &[u8], what: &'static str) -> Result<f32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated(what));
    }
    Ok(buf.get_f32_le())
}

fn get_str(buf: &mut &[u8]) -> Result<String, PersistError> {
    let len = get_u32(buf, "string length")? as usize;
    if buf.remaining() < len {
        return Err(PersistError::Truncated("string body"));
    }
    let mut bytes = vec![0u8; len.min(buf.remaining())];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| PersistError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};
    use proptest::prelude::*;

    fn demo_delta() -> DeltaOverlay {
        let mut d = DeltaOverlay::new();
        d.add_entity("周杰伦", None);
        d.add_entity("刘德华", Some("中国香港男演员"));
        d.add_concept("艺人");
        d.add_alias("周杰伦", None, "Jay Chou");
        d.add_attribute("周杰伦", None, "出生日期");
        d.upsert_entity_is_a("周杰伦", None, "歌手", IsAMeta::new(Source::Tag, 0.97));
        d.upsert_concept_is_a("歌手", "艺人", IsAMeta::new(Source::SubConcept, 0.75));
        d.retract_entity_is_a("张学友", None, "歌手");
        d.retract_concept_is_a("演员", "人物");
        d
    }

    #[test]
    fn delta_round_trips() {
        let d = demo_delta();
        let bytes = encode_delta(&d);
        assert_eq!(decode_delta(&bytes).expect("decode delta"), d);
    }

    #[test]
    fn delta_decode_rejects_corruption() {
        let d = demo_delta();
        let bytes = encode_delta(&d);
        assert!(matches!(
            decode_delta(&bytes[..bytes.len() - 1]),
            Err(PersistError::BadChecksum)
        ));
        assert!(matches!(
            decode_delta(&bytes[..10]),
            Err(PersistError::Truncated(_))
        ));
        let mut flipped = bytes.to_vec();
        flipped[13] ^= 0xff;
        assert!(decode_delta(&flipped).is_err());
        let mut wrong_magic = bytes.to_vec();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_delta(&wrong_magic),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn delta_decode_rejects_snapshot_magic() {
        let store = demo_store();
        assert!(matches!(
            decode_delta(&encode(&store)),
            Err(PersistError::BadMagic)
        ));
    }

    fn demo_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let zhang = s.add_entity("张学友", None);
        s.add_alias(liu, "Andy Lau");
        s.add_attribute(liu, "职业");
        s.add_attribute(liu, "代表作品");
        let actor = s.add_concept("演员");
        let singer = s.add_concept("歌手");
        let person = s.add_concept("人物");
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_entity_is_a(liu, actor, IsAMeta::new(Source::Bracket, 0.96));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.97));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Infobox, 0.9));
        s
    }

    fn assert_stores_equal(a: &TaxonomyStore, b: &TaxonomyStore) {
        assert_eq!(a.num_entities(), b.num_entities());
        assert_eq!(a.num_concepts(), b.num_concepts());
        assert_eq!(a.num_is_a(), b.num_is_a());
        for id in a.entity_ids() {
            assert_eq!(a.entity_key(id), b.entity_key(id));
            let ea: Vec<_> = a
                .concepts_of(id)
                .iter()
                .map(|(c, m)| (a.concept_name(*c).to_string(), m.source, m.confidence))
                .collect();
            let eb: Vec<_> = b
                .concepts_of(id)
                .iter()
                .map(|(c, m)| (b.concept_name(*c).to_string(), m.source, m.confidence))
                .collect();
            assert_eq!(ea, eb);
            let attrs_a: Vec<_> = a.attributes_of(id).iter().map(|&s| a.resolve(s)).collect();
            let attrs_b: Vec<_> = b.attributes_of(id).iter().map(|&s| b.resolve(s)).collect();
            assert_eq!(attrs_a, attrs_b);
        }
        for id in a.concept_ids() {
            assert_eq!(a.concept_name(id), b.concept_name(id));
        }
    }

    fn assert_frozen_equal(a: &FrozenTaxonomy, b: &FrozenTaxonomy) {
        assert_eq!(a.num_entities(), b.num_entities());
        assert_eq!(a.num_concepts(), b.num_concepts());
        assert_eq!(a.num_is_a(), b.num_is_a());
        assert_eq!(a.topo_order(), b.topo_order());
        for e in a.entity_ids() {
            assert_eq!(a.concepts_of(e), b.concepts_of(e));
            assert_eq!(a.attributes_of(e), b.attributes_of(e));
            assert_eq!(a.aliases_of(e), b.aliases_of(e));
            assert_eq!(a.entity_key(e), b.entity_key(e));
        }
        for c in a.concept_ids() {
            assert_eq!(a.entities_of(c), b.entities_of(c));
            assert_eq!(a.parents_of(c), b.parents_of(c));
            assert_eq!(a.children_of(c), b.children_of(c));
            assert_eq!(a.ancestors_of(c), b.ancestors_of(c));
            assert_eq!(a.depth(c), b.depth(c));
            assert_eq!(a.concept_name(c), b.concept_name(c));
        }
    }

    // ----- v1 -------------------------------------------------------------

    #[test]
    fn roundtrip_demo_store() {
        let store = demo_store();
        let bytes = encode(&store);
        let loaded = decode(&bytes).expect("decode");
        assert_stores_equal(&store, &loaded);
    }

    #[test]
    fn file_roundtrip() {
        let store = demo_store();
        let dir = std::env::temp_dir().join("cnp_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.cnpb");
        save_to_file(&store, &path).expect("save");
        let loaded = load_from_file(&path).expect("load");
        assert_stores_equal(&store, &loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode(b"XXXX\x01\x00\x00\x00").unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(999);
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, PersistError::BadVersion(999)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&demo_store());
        // Chop the snapshot at several points; each must error, not panic.
        for cut in [0, 3, 8, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            let res = decode(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} unexpectedly decoded");
        }
    }

    #[test]
    fn empty_store_roundtrip() {
        let store = TaxonomyStore::new();
        let loaded = decode(&encode(&store)).unwrap();
        assert_eq!(loaded.num_entities(), 0);
        assert_eq!(loaded.num_concepts(), 0);
        assert_eq!(loaded.num_is_a(), 0);
    }

    /// Regression (pre-fix this could over-allocate): a v1 header whose
    /// count field claims u32::MAX records over a near-empty body must fail
    /// with a truncation error after at most a tiny bounded allocation.
    #[test]
    fn v1_hostile_count_is_clamped_by_remaining_bytes() {
        for section in 0..3 {
            let mut buf = BytesMut::new();
            buf.put_slice(MAGIC);
            buf.put_u32_le(VERSION_STORE);
            if section >= 1 {
                buf.put_u32_le(1); // one string: ""
                put_str(&mut buf, "");
            }
            if section >= 2 {
                buf.put_u32_le(0); // zero entities
            }
            // The hostile count (strings / entities / concepts by turn).
            buf.put_u32_le(u32::MAX);
            let err = decode(&buf).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated(_)),
                "section {section}: {err}"
            );
        }
    }

    // ----- v2 -------------------------------------------------------------

    #[test]
    fn frozen_roundtrip_demo_store() {
        let frozen = FrozenTaxonomy::freeze(&demo_store());
        let bytes = encode_frozen(&frozen);
        let loaded = decode_frozen(&bytes).expect("decode_frozen");
        assert_frozen_equal(&frozen, &loaded);
        // Re-encode is byte-identical: the codec is a pure function of the
        // snapshot contents and the derived maps never reach the wire.
        assert_eq!(encode_frozen(&loaded).as_ref(), bytes.as_ref());
    }

    #[test]
    fn frozen_roundtrip_preserves_queries() {
        let store = demo_store();
        let frozen = FrozenTaxonomy::freeze(&store);
        let loaded = decode_frozen(&encode_frozen(&frozen)).unwrap();
        for m in ["刘德华", "张学友", "Andy Lau", "刘德华（中国香港男演员）"] {
            assert_eq!(frozen.men2ent(m), loaded.men2ent(m), "mention {m}");
        }
        let actor = loaded.find_concept("演员").unwrap();
        let person = loaded.find_concept("人物").unwrap();
        assert_eq!(loaded.ancestors_of(actor), &[person]);
        assert_eq!(loaded.depth(actor), 1);
    }

    #[test]
    fn frozen_roundtrip_tolerates_cycles() {
        let mut store = demo_store();
        let actor = store.find_concept("演员").unwrap();
        let person = store.find_concept("人物").unwrap();
        store.add_concept_is_a(person, actor, IsAMeta::new(Source::SubConcept, 0.1));
        let frozen = FrozenTaxonomy::freeze(&store);
        let loaded = decode_frozen(&encode_frozen(&frozen)).unwrap();
        assert_frozen_equal(&frozen, &loaded);
    }

    /// Regression: `IsAMeta`'s fields are public, so a NaN or out-of-range
    /// confidence can enter a store without passing `IsAMeta::new`. The
    /// encoder must clamp on the way out — pre-fix it wrote the raw value,
    /// producing a snapshot that saved successfully but failed to load
    /// (`BadIndex("edge confidence")`).
    #[test]
    fn frozen_encode_clamps_unclamped_confidence() {
        let mut store = demo_store();
        let e = store.find_entity("张学友", None).unwrap();
        let c = store.find_concept("演员").unwrap();
        store.add_entity_is_a(
            e,
            c,
            IsAMeta {
                source: Source::Tag,
                confidence: f32::NAN,
            },
        );
        let c2 = store.find_concept("歌手").unwrap();
        store.add_concept_is_a(
            c2,
            c,
            IsAMeta {
                source: Source::SubConcept,
                confidence: 7.5,
            },
        );
        let frozen = FrozenTaxonomy::freeze(&store);
        let loaded = decode_frozen(&encode_frozen(&frozen)).expect("clamped snapshot loads");
        let nan_edge = loaded
            .concepts_of(e)
            .iter()
            .find(|&&(cc, _)| cc == c)
            .unwrap();
        assert_eq!(nan_edge.1.confidence, 0.0);
        let hot_edge = loaded
            .parents_of(c2)
            .iter()
            .find(|&&(cc, _)| cc == c)
            .unwrap();
        assert_eq!(hot_edge.1.confidence, 1.0);
    }

    #[test]
    fn frozen_empty_roundtrip() {
        let frozen = FrozenTaxonomy::freeze(&TaxonomyStore::new());
        let loaded = decode_frozen(&encode_frozen(&frozen)).unwrap();
        assert_eq!(loaded.num_entities(), 0);
        assert_eq!(loaded.num_concepts(), 0);
    }

    #[test]
    fn frozen_file_roundtrip() {
        let frozen = FrozenTaxonomy::freeze(&demo_store());
        let dir = std::env::temp_dir().join("cnp_persist_test_v2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.cnpb");
        save_frozen_to_file(&frozen, &path).expect("save");
        let loaded = load_frozen_from_file(&path).expect("load");
        assert_frozen_equal(&frozen, &loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_dispatches_on_version() {
        let store = demo_store();
        let v1 = encode(&store);
        let frozen = FrozenTaxonomy::freeze(&store);
        let v2 = encode_frozen(&frozen);
        let v3 = encode_frozen_v3(&frozen);
        let s1 = Snapshot::load(&v1).unwrap();
        assert_eq!(s1.version(), VERSION_STORE);
        let s2 = Snapshot::load(&v2).unwrap();
        assert_eq!(s2.version(), VERSION_FROZEN);
        let s3 = Snapshot::load(&v3).unwrap();
        assert_eq!(s3.version(), VERSION_VIEW);
        assert_frozen_equal(&frozen, &s3.into_frozen().expect("materialise v3"));
        // v1 and v2 land on an equivalent serving snapshot. The v1 path
        // re-interns strings in rebuild order, so symbols are compared
        // through `resolve`, not numerically.
        let (a, b) = (s1.into_frozen().unwrap(), s2.into_frozen().unwrap());
        assert_eq!(a.num_entities(), b.num_entities());
        assert_eq!(a.num_is_a(), b.num_is_a());
        for e in a.entity_ids() {
            assert_eq!(a.entity_key(e), b.entity_key(e));
            assert_eq!(a.concepts_of(e), b.concepts_of(e));
            let resolve_all = |f: &FrozenTaxonomy, syms: &[Symbol]| -> Vec<String> {
                syms.iter().map(|&s| f.resolve(s).to_string()).collect()
            };
            assert_eq!(
                resolve_all(&a, a.attributes_of(e)),
                resolve_all(&b, b.attributes_of(e))
            );
            assert_eq!(
                resolve_all(&a, a.aliases_of(e)),
                resolve_all(&b, b.aliases_of(e))
            );
        }
        for c in a.concept_ids() {
            assert_eq!(a.concept_name(c), b.concept_name(c));
            assert_eq!(a.entities_of(c), b.entities_of(c));
            assert_eq!(a.ancestors_of(c), b.ancestors_of(c));
            assert_eq!(a.depth(c), b.depth(c));
        }
        let mut bad = BytesMut::new();
        bad.put_slice(MAGIC);
        bad.put_u32_le(77);
        assert!(matches!(
            Snapshot::load(&bad),
            Err(PersistError::BadVersion(77))
        ));
    }

    /// Rebuilds the trailing CKSM section after the test mutated the body.
    fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
        bytes.truncate(bytes.len() - 20); // tag + u64 len + u64 digest
        let digest = stable_hash(&bytes);
        bytes.put_slice(&SEC_CHECKSUM);
        bytes.put_u64_le(8);
        bytes.put_u64_le(digest);
        bytes
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let frozen = FrozenTaxonomy::freeze(&demo_store());
        let encoded = encode_frozen(&frozen);
        // Splice an unknown section right after the header, re-seal.
        let mut bytes = encoded[..8].to_vec();
        bytes.put_slice(b"XTRA");
        bytes.put_u64_le(3);
        bytes.put_slice(b"\xAA\xBB\xCC");
        bytes.extend_from_slice(&encoded[8..]);
        let loaded = decode_frozen(&reseal(bytes)).expect("skip unknown section");
        assert_frozen_equal(&frozen, &loaded);
    }

    #[test]
    fn missing_section_is_reported() {
        let frozen = FrozenTaxonomy::freeze(&demo_store());
        let encoded = encode_frozen(&frozen);
        // Drop the DPTH section wholesale, re-seal: structurally valid
        // framing, but a required section is gone.
        let mut bytes = encoded[..8].to_vec();
        let mut cursor = &encoded[8..];
        while cursor.remaining() >= 12 {
            let start = encoded.len() - cursor.remaining();
            let mut tag = [0u8; 4];
            cursor.copy_to_slice(&mut tag);
            let len = cursor.get_u64_le() as usize;
            let end = start + 12 + len;
            cursor = &encoded[end..];
            if tag != SEC_DEPTH {
                bytes.extend_from_slice(&encoded[start..end]);
            }
        }
        let err = decode_frozen(&reseal(bytes)).unwrap_err();
        assert!(matches!(err, PersistError::MissingSection("DPTH")), "{err}");
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let frozen = FrozenTaxonomy::freeze(&demo_store());
        let mut bytes = encode_frozen(&frozen).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt the stored digest itself
        assert!(matches!(
            decode_frozen(&bytes),
            Err(PersistError::BadChecksum)
        ));
    }

    #[test]
    fn v2_hostile_section_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_FROZEN);
        buf.put_slice(&SEC_INTERNER);
        buf.put_u64_le(u64::MAX);
        assert!(matches!(
            decode_frozen(&buf),
            Err(PersistError::Truncated(_))
        ));
    }

    #[test]
    fn v2_hostile_csr_counts_are_rejected() {
        // An ANCS section claiming u32::MAX rows over an 8-byte body: the
        // offset-table size check fires before any allocation happens.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_FROZEN);
        let mut payload = BytesMut::new();
        payload.put_u32_le(u32::MAX);
        payload.put_u32_le(0);
        buf.put_slice(&SEC_ANCESTORS);
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
        assert!(matches!(
            decode_frozen(&buf),
            Err(PersistError::Truncated(_))
        ));
    }

    proptest! {
        /// Arbitrary small stores round-trip exactly (v1).
        #[test]
        fn roundtrip_arbitrary(
            entities in proptest::collection::vec("[一-龥]{1,4}", 1..10),
            concepts in proptest::collection::vec("[一-龥]{1,4}", 1..8),
            edges in proptest::collection::vec((0usize..10, 0usize..8, 0.0f32..=1.0), 0..30),
        ) {
            let mut store = TaxonomyStore::new();
            let eids: Vec<_> = entities.iter().map(|n| store.add_entity(n, None)).collect();
            let cids: Vec<_> = concepts.iter().map(|n| store.add_concept(n)).collect();
            for (e, c, conf) in edges {
                if e < eids.len() && c < cids.len() {
                    store.add_entity_is_a(eids[e], cids[c], IsAMeta::new(Source::Tag, conf));
                }
            }
            let loaded = decode(&encode(&store)).unwrap();
            prop_assert_eq!(store.num_entities(), loaded.num_entities());
            prop_assert_eq!(store.num_concepts(), loaded.num_concepts());
            prop_assert_eq!(store.num_is_a(), loaded.num_is_a());
        }

        /// Arbitrary stores (cycles included): freeze → encode → decode
        /// re-encodes byte-identically and answers identical
        /// `concepts_of` / `entities_of` / `ancestors_of` queries.
        #[test]
        fn frozen_roundtrip_arbitrary(
            concept_edges in proptest::collection::vec((0u32..12, 0u32..12, 0u32..100), 0..40),
            entity_links in proptest::collection::vec((0u32..6, 0u32..12), 0..18),
            aliased in proptest::collection::vec(0u32..6, 0..4),
            disambiguated in proptest::collection::vec(0u32..6, 0..4),
        ) {
            let mut store = TaxonomyStore::new();
            for i in 0..12 {
                store.add_concept(&format!("概念{i}"));
            }
            for i in 0..6u32 {
                let dis = disambiguated.contains(&i).then(|| format!("义项{i}"));
                store.add_entity(&format!("实体{i}"), dis.as_deref());
            }
            for &(a, b, conf) in &concept_edges {
                if a != b {
                    store.add_concept_is_a(
                        ConceptId(a),
                        ConceptId(b),
                        IsAMeta::new(Source::SubConcept, conf as f32 / 100.0),
                    );
                }
            }
            for &(e, c) in &entity_links {
                store.add_entity_is_a(EntityId(e), ConceptId(c), IsAMeta::new(Source::Tag, 0.8));
            }
            for &e in &aliased {
                store.add_alias(EntityId(e), &format!("别名{e}"));
                store.add_attribute(EntityId(e), "职业");
            }
            let frozen = FrozenTaxonomy::freeze(&store);
            let bytes = encode_frozen(&frozen);
            let loaded = decode_frozen(&bytes).unwrap();
            prop_assert_eq!(encode_frozen(&loaded).as_ref(), bytes.as_ref());
            for e in frozen.entity_ids() {
                prop_assert_eq!(frozen.concepts_of(e), loaded.concepts_of(e));
            }
            for c in frozen.concept_ids() {
                prop_assert_eq!(frozen.entities_of(c), loaded.entities_of(c));
                prop_assert_eq!(frozen.ancestors_of(c), loaded.ancestors_of(c));
            }
            for e in 0..6 {
                let m = format!("实体{e}");
                prop_assert_eq!(frozen.men2ent(&m), loaded.men2ent(&m));
            }
        }

        /// Arbitrary stores through the v3 path: encode → open view ≡
        /// owned queries, materialise through `to_frozen`, and re-encode
        /// byte-identically (the canonical-closure-form guarantee).
        #[test]
        fn view_roundtrip_arbitrary(
            concept_edges in proptest::collection::vec((0u32..12, 0u32..12, 0u32..100), 0..40),
            entity_links in proptest::collection::vec((0u32..6, 0u32..12), 0..18),
            aliased in proptest::collection::vec(0u32..6, 0..4),
            disambiguated in proptest::collection::vec(0u32..6, 0..4),
        ) {
            let mut store = TaxonomyStore::new();
            for i in 0..12 {
                store.add_concept(&format!("概念{i}"));
            }
            for i in 0..6u32 {
                let dis = disambiguated.contains(&i).then(|| format!("义项{i}"));
                store.add_entity(&format!("实体{i}"), dis.as_deref());
            }
            for &(a, b, conf) in &concept_edges {
                if a != b {
                    store.add_concept_is_a(
                        ConceptId(a),
                        ConceptId(b),
                        IsAMeta::new(Source::SubConcept, conf as f32 / 100.0),
                    );
                }
            }
            for &(e, c) in &entity_links {
                store.add_entity_is_a(EntityId(e), ConceptId(c), IsAMeta::new(Source::Tag, 0.8));
            }
            for &e in &aliased {
                store.add_alias(EntityId(e), &format!("别名{e}"));
                store.add_attribute(EntityId(e), "职业");
            }
            let frozen = FrozenTaxonomy::freeze(&store);
            let bytes = encode_frozen_v3(&frozen);
            let view = FrozenTaxonomyView::open(bytes.clone()).unwrap();
            for e in frozen.entity_ids() {
                prop_assert_eq!(
                    view.concepts_of(e).collect::<Vec<_>>(),
                    frozen.concepts_of(e).to_vec()
                );
                prop_assert_eq!(view.entity_key(e), frozen.entity_key(e));
                prop_assert_eq!(
                    view.attributes_of(e).collect::<Vec<_>>(),
                    frozen.attributes_of(e).to_vec()
                );
            }
            for c in frozen.concept_ids() {
                prop_assert_eq!(
                    view.entities_of(c).collect::<Vec<_>>(),
                    frozen.entities_of(c).to_vec()
                );
                prop_assert_eq!(
                    view.ancestors(c).collect::<Vec<_>>(),
                    frozen.ancestors_of(c).to_vec()
                );
                prop_assert_eq!(view.depth(c), frozen.depth(c));
                for sup in frozen.concept_ids() {
                    prop_assert_eq!(
                        view.ancestor_contains(c, sup),
                        frozen.ancestors_of(c).binary_search(&sup).is_ok()
                    );
                }
            }
            for e in 0..6u32 {
                for m in [format!("实体{e}"), format!("别名{e}"), format!("实体{e}（义项{e}）")] {
                    prop_assert_eq!(view.men2ent(&m), frozen.men2ent(&m).to_vec());
                }
            }
            let owned = view.to_frozen().unwrap();
            prop_assert_eq!(encode_frozen_v3(&owned).as_ref(), bytes.as_ref());
        }
    }
}
