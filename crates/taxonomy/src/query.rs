//! Higher-level taxonomy queries built on the closure primitives.
//!
//! The deployed CN-Probase backs applications like short-text
//! classification (paper §V), which need more than raw edge lookups:
//! concept depth, lowest common ancestors, siblings and path-based concept
//! similarity (Wu–Palmer). All queries are read-only and cycle-safe.
//!
//! Depths are computed through the SCC condensation of the parent graph
//! ([`crate::topo`]) — exact longest-chain values on the post-
//! [`crate::closure::break_cycles`] DAG, with any remaining cycle collapsed
//! to a single component instead of being silently truncated (the previous
//! per-call memoized DFS could cache cycle-truncated values and overcount
//! back edges). Each call here recomputes the depth array in one `O(V + E)`
//! pass; hot serving paths should use the precomputed
//! [`crate::frozen::FrozenTaxonomy`] instead.

use crate::closure::ancestors;
use crate::hash::FxHashSet;
use crate::store::{ConceptId, TaxonomyStore};
use crate::topo::Condensation;

/// Exact depth of every concept in one pass: longest parent-chain length
/// to a root (0 for roots), cycles collapsed to their component.
pub fn depths(store: &TaxonomyStore) -> Vec<u32> {
    Condensation::of(store).depths(store)
}

/// Depth of a concept: longest parent-chain length to a root (0 for roots).
///
/// Computes the full [`depths`] array; batch callers should call that once.
pub fn depth(store: &TaxonomyStore, c: ConceptId) -> usize {
    depths(store)[c.index()] as usize
}

/// Common ancestors of two concepts, including the concepts themselves.
fn common_ancestors(store: &TaxonomyStore, a: ConceptId, b: ConceptId) -> Vec<ConceptId> {
    let mut up_a: FxHashSet<ConceptId> = ancestors(store, a).into_iter().collect();
    up_a.insert(a);
    let mut up_b: FxHashSet<ConceptId> = ancestors(store, b).into_iter().collect();
    up_b.insert(b);
    up_a.intersection(&up_b).copied().collect()
}

/// The deepest concepts of `common`, sorted by id.
fn deepest(common: Vec<ConceptId>, depth_of: &[u32]) -> Vec<ConceptId> {
    let Some(max_depth) = common.iter().map(|&c| depth_of[c.index()]).max() else {
        return Vec::new();
    };
    let mut out: Vec<ConceptId> = common
        .into_iter()
        .filter(|&c| depth_of[c.index()] == max_depth)
        .collect();
    out.sort_unstable();
    out
}

/// Lowest common ancestors of two concepts: the common ancestors (including
/// the concepts themselves) of maximal depth. Empty when the concepts share
/// no root. Depths come from a single exact pass, not one recomputation per
/// candidate.
pub fn lowest_common_ancestors(
    store: &TaxonomyStore,
    a: ConceptId,
    b: ConceptId,
) -> Vec<ConceptId> {
    let common = common_ancestors(store, a, b);
    if common.is_empty() {
        return Vec::new();
    }
    deepest(common, &depths(store))
}

/// Sibling concepts: other children of `c`'s parents.
pub fn siblings(store: &TaxonomyStore, c: ConceptId) -> Vec<ConceptId> {
    let mut out: Vec<ConceptId> = Vec::new();
    for &(p, _) in store.parents_of(c) {
        for &child in store.children_of(p) {
            if child != c && !out.contains(&child) {
                out.push(child);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Wu–Palmer similarity between two concepts, using node counts
/// (`depth + 1`) so that a root LCA still contributes:
/// `2·(depth(lca)+1) / ((depth(a)+1) + (depth(b)+1))`, in `(0, 1]`.
/// Returns 0 when the concepts share no ancestor.
pub fn wu_palmer(store: &TaxonomyStore, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let common = common_ancestors(store, a, b);
    if common.is_empty() {
        return 0.0;
    }
    // One depth pass serves both the LCA selection and the formula.
    let depth_of = depths(store);
    let lcas = deepest(common, &depth_of);
    let lca = lcas[0];
    let dl = depth_of[lca.index()] as f64 + 1.0;
    let da = depth_of[a.index()] as f64 + 1.0;
    let db = depth_of[b.index()] as f64 + 1.0;
    (2.0 * dl / (da + db)).clamp(0.0, 1.0)
}

/// Concepts shared by a set of entities — the conceptualisation primitive
/// behind short-text understanding (“what do 刘德华 and 张学友 have in
/// common?” → 歌手, 人物).
pub fn common_concepts(
    store: &TaxonomyStore,
    entities: &[crate::store::EntityId],
    transitive: bool,
) -> Vec<ConceptId> {
    let mut iter = entities.iter();
    let Some(&first) = iter.next() else {
        return Vec::new();
    };
    let concept_set = |e: crate::store::EntityId| -> FxHashSet<ConceptId> {
        let mut set: FxHashSet<ConceptId> = FxHashSet::default();
        for &(c, _) in store.concepts_of(e) {
            set.insert(c);
            if transitive {
                for a in ancestors(store, c) {
                    set.insert(a);
                }
            }
        }
        set
    };
    let mut acc = concept_set(first);
    for &e in iter {
        let s = concept_set(e);
        acc.retain(|c| s.contains(c));
    }
    let mut out: Vec<ConceptId> = acc.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    /// 男演员 → 演员 → 人物;  歌手 → 人物;  城市 → 地点 (separate root).
    fn fixture() -> (
        TaxonomyStore,
        ConceptId,
        ConceptId,
        ConceptId,
        ConceptId,
        ConceptId,
    ) {
        let mut s = TaxonomyStore::new();
        let male_actor = s.add_concept("男演员");
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        let singer = s.add_concept("歌手");
        let city = s.add_concept("城市");
        let place = s.add_concept("地点");
        let m = IsAMeta::new(Source::SubConcept, 0.9);
        s.add_concept_is_a(male_actor, actor, m);
        s.add_concept_is_a(actor, person, m);
        s.add_concept_is_a(singer, person, m);
        s.add_concept_is_a(city, place, m);
        (s, male_actor, actor, person, singer, city)
    }

    #[test]
    fn depth_counts_longest_chain() {
        let (s, male_actor, actor, person, singer, _) = fixture();
        assert_eq!(depth(&s, person), 0);
        assert_eq!(depth(&s, actor), 1);
        assert_eq!(depth(&s, singer), 1);
        assert_eq!(depth(&s, male_actor), 2);
    }

    #[test]
    fn lca_of_professions_is_person() {
        let (s, male_actor, actor, person, singer, city) = fixture();
        assert_eq!(
            lowest_common_ancestors(&s, male_actor, singer),
            vec![person]
        );
        // One concept an ancestor of the other: the ancestor is the LCA.
        assert_eq!(lowest_common_ancestors(&s, male_actor, actor), vec![actor]);
        // Different roots: no common ancestor.
        assert!(lowest_common_ancestors(&s, male_actor, city).is_empty());
    }

    #[test]
    fn siblings_share_a_parent() {
        let (s, male_actor, actor, _, singer, _) = fixture();
        assert_eq!(siblings(&s, actor), vec![singer]);
        assert_eq!(siblings(&s, singer), vec![actor]);
        assert!(siblings(&s, male_actor).is_empty());
    }

    #[test]
    fn wu_palmer_ordering() {
        let (s, male_actor, actor, _, singer, city) = fixture();
        let close = wu_palmer(&s, male_actor, actor);
        let mid = wu_palmer(&s, male_actor, singer);
        let far = wu_palmer(&s, male_actor, city);
        assert_eq!(wu_palmer(&s, actor, actor), 1.0);
        assert!(close > mid, "{close} vs {mid}");
        assert!(mid > far, "{mid} vs {far}");
        assert_eq!(far, 0.0);
    }

    #[test]
    fn common_concepts_intersects_transitively() {
        let (mut s, male_actor, _, person, singer, _) = fixture();
        let liu = s.add_entity("刘德华", None);
        let zhang = s.add_entity("张学友", None);
        let m = IsAMeta::new(Source::Tag, 0.9);
        s.add_entity_is_a(liu, male_actor, m);
        s.add_entity_is_a(liu, singer, m);
        s.add_entity_is_a(zhang, singer, m);
        // Direct: only 歌手 in common.
        assert_eq!(common_concepts(&s, &[liu, zhang], false), vec![singer]);
        // Transitive: 歌手 and 人物.
        let trans = common_concepts(&s, &[liu, zhang], true);
        assert!(trans.contains(&singer));
        assert!(trans.contains(&person));
        // Empty input.
        assert!(common_concepts(&s, &[], true).is_empty());
    }

    #[test]
    fn depth_survives_cycles() {
        let (mut s, male_actor, actor, person, _, _) = fixture();
        // Introduce a cycle 人物 → 男演员: the whole chain collapses into
        // one root component, so every member has depth 0; repairing the
        // cycle restores the exact chain depths.
        s.add_concept_is_a(person, male_actor, IsAMeta::new(Source::SubConcept, 0.1));
        assert_eq!(depth(&s, actor), 0);
        let removed = crate::closure::break_cycles(&mut s);
        assert_eq!(removed, vec![(person, male_actor)]);
        assert_eq!(depth(&s, actor), 1);
        assert_eq!(depth(&s, male_actor), 2);
    }

    /// Regression: the old per-call memoized DFS cached cycle-truncated
    /// values. With 起点 → {甲, 丙}, the noise cycle 甲 ⇄ 乙 and 丙 → 乙,
    /// the DFS walked 起点 → 甲 → 乙 → (甲 on path, guard fires) and
    /// memoized depth(乙) = 1 — counting the back edge 乙 → 甲 as a real
    /// step — giving depth(起点) = 3. Exact semantics collapse the cycle:
    /// depth(起点) = 2, the same answer break_cycles + exact depth give.
    #[test]
    fn depth_does_not_count_cycle_back_edges() {
        let mut s = TaxonomyStore::new();
        let start = s.add_concept("起点");
        let jia = s.add_concept("甲");
        let yi = s.add_concept("乙");
        let bing = s.add_concept("丙");
        let m = |c: f32| IsAMeta::new(Source::SubConcept, c);
        s.add_concept_is_a(start, jia, m(0.9));
        s.add_concept_is_a(start, bing, m(0.9));
        s.add_concept_is_a(jia, yi, m(0.9));
        s.add_concept_is_a(yi, jia, m(0.1)); // extraction-noise back edge
        s.add_concept_is_a(bing, yi, m(0.9));
        assert_eq!(depth(&s, start), 2);
        // And the answer is stable across cycle repair.
        let removed = crate::closure::break_cycles(&mut s);
        assert_eq!(removed, vec![(yi, jia)]);
        assert_eq!(depth(&s, start), 2);
        assert_eq!(depth(&s, yi), 0);
        assert_eq!(depth(&s, jia), 1);
    }
}
