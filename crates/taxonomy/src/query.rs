//! Higher-level taxonomy queries built on the closure primitives.
//!
//! The deployed CN-Probase backs applications like short-text
//! classification (paper §V), which need more than raw edge lookups:
//! concept depth, lowest common ancestors, siblings and path-based concept
//! similarity (Wu–Palmer). All queries are read-only and cycle-safe.

use crate::closure::ancestors;
use crate::hash::{FxHashMap, FxHashSet};
use crate::store::{ConceptId, TaxonomyStore};

/// Depth of a concept: longest parent-chain length to a root (0 for roots).
///
/// Cycle-safe: edges on cycles are ignored past the first visit.
pub fn depth(store: &TaxonomyStore, c: ConceptId) -> usize {
    fn walk(
        store: &TaxonomyStore,
        c: ConceptId,
        memo: &mut FxHashMap<ConceptId, usize>,
        on_path: &mut FxHashSet<ConceptId>,
    ) -> usize {
        if let Some(&d) = memo.get(&c) {
            return d;
        }
        if !on_path.insert(c) {
            return 0; // cycle guard
        }
        let d = store
            .parents_of(c)
            .iter()
            .map(|&(p, _)| walk(store, p, memo, on_path) + 1)
            .max()
            .unwrap_or(0);
        on_path.remove(&c);
        memo.insert(c, d);
        d
    }
    walk(
        store,
        c,
        &mut FxHashMap::default(),
        &mut FxHashSet::default(),
    )
}

/// Lowest common ancestors of two concepts: the common ancestors (including
/// the concepts themselves) of maximal depth. Empty when the concepts share
/// no root.
pub fn lowest_common_ancestors(
    store: &TaxonomyStore,
    a: ConceptId,
    b: ConceptId,
) -> Vec<ConceptId> {
    let mut up_a: FxHashSet<ConceptId> = ancestors(store, a).into_iter().collect();
    up_a.insert(a);
    let mut up_b: FxHashSet<ConceptId> = ancestors(store, b).into_iter().collect();
    up_b.insert(b);
    let common: Vec<ConceptId> = up_a.intersection(&up_b).copied().collect();
    if common.is_empty() {
        return Vec::new();
    }
    let max_depth = common.iter().map(|&c| depth(store, c)).max().unwrap();
    let mut out: Vec<ConceptId> = common
        .into_iter()
        .filter(|&c| depth(store, c) == max_depth)
        .collect();
    out.sort_unstable();
    out
}

/// Sibling concepts: other children of `c`'s parents.
pub fn siblings(store: &TaxonomyStore, c: ConceptId) -> Vec<ConceptId> {
    let mut out: Vec<ConceptId> = Vec::new();
    for &(p, _) in store.parents_of(c) {
        for &child in store.children_of(p) {
            if child != c && !out.contains(&child) {
                out.push(child);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Wu–Palmer similarity between two concepts, using node counts
/// (`depth + 1`) so that a root LCA still contributes:
/// `2·(depth(lca)+1) / ((depth(a)+1) + (depth(b)+1))`, in `(0, 1]`.
/// Returns 0 when the concepts share no ancestor.
pub fn wu_palmer(store: &TaxonomyStore, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let lcas = lowest_common_ancestors(store, a, b);
    let Some(&lca) = lcas.first() else {
        return 0.0;
    };
    let dl = depth(store, lca) as f64 + 1.0;
    let da = depth(store, a) as f64 + 1.0;
    let db = depth(store, b) as f64 + 1.0;
    (2.0 * dl / (da + db)).clamp(0.0, 1.0)
}

/// Concepts shared by a set of entities — the conceptualisation primitive
/// behind short-text understanding (“what do 刘德华 and 张学友 have in
/// common?” → 歌手, 人物).
pub fn common_concepts(
    store: &TaxonomyStore,
    entities: &[crate::store::EntityId],
    transitive: bool,
) -> Vec<ConceptId> {
    let mut iter = entities.iter();
    let Some(&first) = iter.next() else {
        return Vec::new();
    };
    let concept_set = |e: crate::store::EntityId| -> FxHashSet<ConceptId> {
        let mut set: FxHashSet<ConceptId> = FxHashSet::default();
        for &(c, _) in store.concepts_of(e) {
            set.insert(c);
            if transitive {
                for a in ancestors(store, c) {
                    set.insert(a);
                }
            }
        }
        set
    };
    let mut acc = concept_set(first);
    for &e in iter {
        let s = concept_set(e);
        acc.retain(|c| s.contains(c));
    }
    let mut out: Vec<ConceptId> = acc.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    /// 男演员 → 演员 → 人物;  歌手 → 人物;  城市 → 地点 (separate root).
    fn fixture() -> (
        TaxonomyStore,
        ConceptId,
        ConceptId,
        ConceptId,
        ConceptId,
        ConceptId,
    ) {
        let mut s = TaxonomyStore::new();
        let male_actor = s.add_concept("男演员");
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        let singer = s.add_concept("歌手");
        let city = s.add_concept("城市");
        let place = s.add_concept("地点");
        let m = IsAMeta::new(Source::SubConcept, 0.9);
        s.add_concept_is_a(male_actor, actor, m);
        s.add_concept_is_a(actor, person, m);
        s.add_concept_is_a(singer, person, m);
        s.add_concept_is_a(city, place, m);
        (s, male_actor, actor, person, singer, city)
    }

    #[test]
    fn depth_counts_longest_chain() {
        let (s, male_actor, actor, person, singer, _) = fixture();
        assert_eq!(depth(&s, person), 0);
        assert_eq!(depth(&s, actor), 1);
        assert_eq!(depth(&s, singer), 1);
        assert_eq!(depth(&s, male_actor), 2);
    }

    #[test]
    fn lca_of_professions_is_person() {
        let (s, male_actor, actor, person, singer, city) = fixture();
        assert_eq!(
            lowest_common_ancestors(&s, male_actor, singer),
            vec![person]
        );
        // One concept an ancestor of the other: the ancestor is the LCA.
        assert_eq!(lowest_common_ancestors(&s, male_actor, actor), vec![actor]);
        // Different roots: no common ancestor.
        assert!(lowest_common_ancestors(&s, male_actor, city).is_empty());
    }

    #[test]
    fn siblings_share_a_parent() {
        let (s, male_actor, actor, _, singer, _) = fixture();
        assert_eq!(siblings(&s, actor), vec![singer]);
        assert_eq!(siblings(&s, singer), vec![actor]);
        assert!(siblings(&s, male_actor).is_empty());
    }

    #[test]
    fn wu_palmer_ordering() {
        let (s, male_actor, actor, _, singer, city) = fixture();
        let close = wu_palmer(&s, male_actor, actor);
        let mid = wu_palmer(&s, male_actor, singer);
        let far = wu_palmer(&s, male_actor, city);
        assert_eq!(wu_palmer(&s, actor, actor), 1.0);
        assert!(close > mid, "{close} vs {mid}");
        assert!(mid > far, "{mid} vs {far}");
        assert_eq!(far, 0.0);
    }

    #[test]
    fn common_concepts_intersects_transitively() {
        let (mut s, male_actor, _, person, singer, _) = fixture();
        let liu = s.add_entity("刘德华", None);
        let zhang = s.add_entity("张学友", None);
        let m = IsAMeta::new(Source::Tag, 0.9);
        s.add_entity_is_a(liu, male_actor, m);
        s.add_entity_is_a(liu, singer, m);
        s.add_entity_is_a(zhang, singer, m);
        // Direct: only 歌手 in common.
        assert_eq!(common_concepts(&s, &[liu, zhang], false), vec![singer]);
        // Transitive: 歌手 and 人物.
        let trans = common_concepts(&s, &[liu, zhang], true);
        assert!(trans.contains(&singer));
        assert!(trans.contains(&person));
        // Empty input.
        assert!(common_concepts(&s, &[], true).is_empty());
    }

    #[test]
    fn depth_survives_cycles() {
        let (mut s, male_actor, actor, person, _, _) = fixture();
        // Introduce a cycle 人物 → 男演员.
        s.add_concept_is_a(person, male_actor, IsAMeta::new(Source::SubConcept, 0.1));
        // Must terminate and still give a sane depth for 演员.
        let d = depth(&s, actor);
        assert!(d >= 1);
    }
}
