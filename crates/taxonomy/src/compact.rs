//! Compaction: folding base + delta overlays back into a fresh base.
//!
//! The LSM-flavoured write path (`crate::overlay`) accumulates small
//! immutable deltas on top of an immutable base; compaction is the
//! background step that re-materialises the merged content as a plain
//! snapshot, resetting the overlay depth to zero. The correctness bar is
//! the determinism contract (PR 3): a compacted base must be
//! **byte-identical** to a from-scratch freeze of the same logical
//! content, so that `snapshot(build ∪ delta)` and
//! `compact(snapshot(build) + delta)` cannot drift apart —
//! `tests/determinism.rs` asserts exactly this.
//!
//! The pivot is `thaw`: a [`FrozenTaxonomy`] reconstructed into a
//! [`TaxonomyStore`] *verbatim* — raw adjacency rows copied, the interner
//! cloned — so that replaying an overlay's op log onto the thawed store
//! takes the same branches (same dedup hits, same intern order, same row
//! positions) as replaying it onto the original build store. Only the
//! hyponym rows (`concept_entities`) come back in ranked rather than
//! insertion order, which is sound because the freeze re-ranks them under
//! a total order (descending confidence, entity id tie-break): that table
//! is the one adjacency whose build-store row order is not observable in
//! a frozen snapshot.

use crate::frozen::FrozenTaxonomy;
use crate::overlay::{DeltaOverlay, IngestDelta, OverlayView};
use crate::persist::{self, PersistError};
use crate::read::{AnySnapshot, TaxonomyRead};
use crate::store::{RawStoreParts, TaxonomyStore};
use crate::view::FrozenTaxonomyView;
use cnp_runtime::Runtime;

/// Reconstructs the build store a snapshot was frozen from, up to the one
/// non-observable row order described in the module docs. `O(size)`.
pub(crate) fn thaw(f: &FrozenTaxonomy) -> TaxonomyStore {
    let n_e = f.entities.len();
    let n_c = f.concepts.len();
    TaxonomyStore::from_raw_parts(RawStoreParts {
        interner: f.interner.clone(),
        entities: f.entities.clone(),
        concepts: f.concepts.clone(),
        entity_concepts: (0..n_e)
            .map(|i| f.entity_concepts.row(i).to_vec())
            .collect(),
        concept_entities: (0..n_c)
            .map(|i| f.concept_entities.row(i).to_vec())
            .collect(),
        concept_parents: (0..n_c)
            .map(|i| f.concept_parents.row(i).to_vec())
            .collect(),
        concept_children: (0..n_c)
            .map(|i| f.concept_children.row(i).to_vec())
            .collect(),
        entity_attrs: (0..n_e).map(|i| f.entity_attrs.row(i).to_vec()).collect(),
        entity_aliases: (0..n_e).map(|i| f.entity_aliases.row(i).to_vec()).collect(),
    })
}

/// Materialises a serving snapshot back into a mutable build store, the
/// first half of a compaction (or of a write to an overlay-less backend).
pub(crate) trait ToStore {
    fn to_store(&self) -> Result<TaxonomyStore, PersistError>;
}

/// Rebuilds `Self`'s representation from a freshly frozen taxonomy,
/// the last half of a compaction: `like` carries the representation
/// choice (owned vs view) forward.
pub(crate) trait FromFrozen: Sized {
    fn from_frozen(f: FrozenTaxonomy, like: &Self) -> Result<Self, PersistError>;
}

impl ToStore for FrozenTaxonomy {
    fn to_store(&self) -> Result<TaxonomyStore, PersistError> {
        Ok(thaw(self))
    }
}

impl FromFrozen for FrozenTaxonomy {
    fn from_frozen(f: FrozenTaxonomy, _like: &Self) -> Result<Self, PersistError> {
        Ok(f)
    }
}

impl ToStore for FrozenTaxonomyView {
    fn to_store(&self) -> Result<TaxonomyStore, PersistError> {
        Ok(thaw(&self.to_frozen()?))
    }
}

impl FromFrozen for FrozenTaxonomyView {
    fn from_frozen(f: FrozenTaxonomy, _like: &Self) -> Result<Self, PersistError> {
        FrozenTaxonomyView::open(persist::encode_frozen_v3(&f))
    }
}

impl ToStore for AnySnapshot {
    fn to_store(&self) -> Result<TaxonomyStore, PersistError> {
        match self {
            AnySnapshot::Owned(f) => f.to_store(),
            AnySnapshot::View(v) => v.to_store(),
        }
    }
}

impl FromFrozen for AnySnapshot {
    fn from_frozen(f: FrozenTaxonomy, like: &Self) -> Result<Self, PersistError> {
        match like {
            AnySnapshot::Owned(o) => Ok(AnySnapshot::Owned(FrozenTaxonomy::from_frozen(f, o)?)),
            AnySnapshot::View(v) => Ok(AnySnapshot::View(FrozenTaxonomyView::from_frozen(f, v)?)),
        }
    }
}

/// Writes to a plain (overlay-less) snapshot materialise immediately:
/// thaw, replay the delta, re-freeze in the same representation.
fn materialize<T: ToStore + FromFrozen>(
    snap: &T,
    delta: &DeltaOverlay,
    rt: &Runtime,
) -> Result<T, PersistError> {
    let mut store = snap.to_store()?;
    delta.apply_to_store(&mut store);
    T::from_frozen(FrozenTaxonomy::freeze_with(&store, rt), snap)
}

impl IngestDelta for FrozenTaxonomy {
    fn ingest_delta(&self, delta: &DeltaOverlay) -> Result<Self, PersistError> {
        materialize(self, delta, &Runtime::default())
    }

    fn compacted(&self, _rt: &Runtime) -> Result<Self, PersistError> {
        // A plain snapshot *is* a fully compacted base.
        Ok(self.clone())
    }
}

impl IngestDelta for FrozenTaxonomyView {
    fn ingest_delta(&self, delta: &DeltaOverlay) -> Result<Self, PersistError> {
        materialize(self, delta, &Runtime::default())
    }

    fn compacted(&self, _rt: &Runtime) -> Result<Self, PersistError> {
        FrozenTaxonomyView::open(self.bytes_handle())
    }
}

impl IngestDelta for AnySnapshot {
    fn ingest_delta(&self, delta: &DeltaOverlay) -> Result<Self, PersistError> {
        materialize(self, delta, &Runtime::default())
    }

    fn compacted(&self, rt: &Runtime) -> Result<Self, PersistError> {
        match self {
            AnySnapshot::Owned(f) => Ok(AnySnapshot::Owned(f.compacted(rt)?)),
            AnySnapshot::View(v) => Ok(AnySnapshot::View(v.compacted(rt)?)),
        }
    }
}

impl<B> IngestDelta for OverlayView<B>
where
    B: TaxonomyRead + ToStore + FromFrozen + Send + Sync,
{
    /// Overlay apply: cheap, no materialisation. The base stays shared.
    fn ingest_delta(&self, delta: &DeltaOverlay) -> Result<Self, PersistError> {
        Ok(self.apply(delta))
    }

    fn overlay_depth(&self) -> usize {
        OverlayView::overlay_depth(self)
    }

    /// Folds base + accumulated deltas into a fresh base of the same
    /// representation: thaw the base, replay the full op log (the same
    /// log, in the same order, the overlay folded), re-freeze on `rt`.
    fn compacted(&self, rt: &Runtime) -> Result<Self, PersistError> {
        if OverlayView::overlay_depth(self) == 0 {
            return Ok(self.clone());
        }
        let mut store = self.base().to_store()?;
        let log = DeltaOverlay {
            ops: self.log_ops().to_vec(),
        };
        log.apply_to_store(&mut store);
        let frozen = FrozenTaxonomy::freeze_with(&store, rt);
        Ok(OverlayView::new(B::from_frozen(frozen, self.base())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IsAMeta, Source};

    fn build_store() -> TaxonomyStore {
        let mut s = TaxonomyStore::new();
        let liu = s.add_entity("刘德华", Some("中国香港男演员"));
        let actor = s.add_concept("演员");
        let person = s.add_concept("人物");
        s.add_concept_is_a(actor, person, IsAMeta::new(Source::SubConcept, 0.8));
        s.add_entity_is_a(liu, actor, IsAMeta::new(Source::Bracket, 0.96));
        s.add_alias(liu, "华仔");
        s.add_attribute(liu, "出生日期");
        let zhang = s.add_entity("张学友", None);
        let singer = s.add_concept("歌手");
        s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.85));
        s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.9));
        s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Infobox, 0.7));
        s
    }

    fn sample_delta() -> DeltaOverlay {
        let mut d = DeltaOverlay::new();
        d.add_entity("周杰伦", None);
        d.add_alias("周杰伦", None, "Jay Chou");
        d.upsert_entity_is_a("周杰伦", None, "歌手", IsAMeta::new(Source::Tag, 0.97));
        d.upsert_entity_is_a(
            "刘德华",
            Some("中国香港男演员"),
            "歌手",
            IsAMeta::new(Source::Tag, 0.5),
        );
        d.upsert_concept_is_a("歌手", "艺人", IsAMeta::new(Source::SubConcept, 0.75));
        d.retract_entity_is_a("张学友", None, "歌手");
        d
    }

    #[test]
    fn thaw_refreeze_is_byte_identical() {
        let store = build_store();
        let frozen = FrozenTaxonomy::freeze(&store);
        let refrozen = FrozenTaxonomy::freeze(&thaw(&frozen));
        assert_eq!(
            persist::encode_frozen(&frozen),
            persist::encode_frozen(&refrozen)
        );
    }

    #[test]
    fn replay_on_thawed_equals_replay_on_original() {
        let mut original = build_store();
        let frozen = FrozenTaxonomy::freeze(&original);
        let delta = sample_delta();

        let mut thawed = thaw(&frozen);
        delta.apply_to_store(&mut thawed);
        delta.apply_to_store(&mut original);

        assert_eq!(
            persist::encode_frozen(&FrozenTaxonomy::freeze(&original)),
            persist::encode_frozen(&FrozenTaxonomy::freeze(&thawed))
        );
    }

    #[test]
    fn overlay_compaction_is_byte_identical_to_fresh_union() {
        let mut union_store = build_store();
        let delta = sample_delta();
        let rt = Runtime::default();

        let view = OverlayView::new(FrozenTaxonomy::freeze(&build_store()));
        let ingested = view.ingest_delta(&delta).expect("overlay apply");
        assert_eq!(IngestDelta::overlay_depth(&ingested), 1);
        let compacted = ingested.compacted(&rt).expect("compaction");
        assert_eq!(IngestDelta::overlay_depth(&compacted), 0);

        delta.apply_to_store(&mut union_store);
        let fresh = FrozenTaxonomy::freeze(&union_store);
        assert_eq!(
            persist::encode_frozen(compacted.base()),
            persist::encode_frozen(&fresh)
        );
    }

    #[test]
    fn plain_snapshot_ingest_materialises() {
        let frozen = FrozenTaxonomy::freeze(&build_store());
        let delta = sample_delta();
        let next = frozen.ingest_delta(&delta).expect("materialising ingest");
        assert_eq!(IngestDelta::overlay_depth(&next), 0);
        let jay = next.find_entity("周杰伦", None).expect("ingested entity");
        assert_eq!(TaxonomyRead::men2ent(&next, "Jay Chou"), vec![jay]);
    }

    #[test]
    fn view_backend_round_trips_through_compaction() {
        let frozen = FrozenTaxonomy::freeze(&build_store());
        let view_snap =
            FrozenTaxonomyView::open(persist::encode_frozen_v3(&frozen)).expect("open v3 snapshot");
        let overlay = OverlayView::new(view_snap);
        let compacted = overlay
            .apply(&sample_delta())
            .compacted(&Runtime::default())
            .expect("view compaction");
        assert!(compacted.base().find_entity("周杰伦", None).is_some());
    }
}
