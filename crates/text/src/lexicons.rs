//! Embedded linguistic resources.
//!
//! * [`THEMATIC_WORDS`] — the 184-entry non-taxonomic thematic lexicon used
//!   by verification rule (1) of §III-C. The paper takes this lexicon from
//!   Li et al. (APWeb 2015); we curate an equivalent 184-entry list (same
//!   size, same function: thematic tags such as 政治 / 军事 / 音乐 that must
//!   never be accepted as hypernyms).
//! * [`SURNAMES`] / [`GIVEN_NAME_CHARS`] — Chinese person-name material,
//!   shared by the NER and by the synthetic encyclopedia generator.
//! * [`PLACE_SUFFIX_CHARS`] / [`ORG_SUFFIXES`] — suffix cues for place and
//!   organization named entities.
//! * [`BASE_VOCAB`] — a base segmentation dictionary of function words,
//!   frequent verbs, adverbs, measure and time words with hand-assigned
//!   frequencies, mirroring the generic part of a jieba dictionary.

use crate::pos::PosTag;
use std::collections::HashSet;
use std::sync::OnceLock;

/// The 184 thematic (non-taxonomic) words of verification rule (1).
///
/// A hypernym candidate equal to any of these words is rejected: “politics”
/// is a *topic* of an article, not a class its subject belongs to.
pub static THEMATIC_WORDS: [&str; 184] = [
    // Broad domains (the paper's own examples 政治 / 军事 appear first).
    "政治",
    "军事",
    "经济",
    "文化",
    "体育",
    "娱乐",
    "科技",
    "音乐",
    "历史",
    "地理",
    "教育",
    "艺术",
    "文学",
    "社会",
    "自然",
    "科学",
    "宗教",
    "哲学",
    "法律",
    "医学",
    // Finance & industry.
    "财经",
    "金融",
    "股票",
    "投资",
    "理财",
    "贸易",
    "商业",
    "工业",
    "农业",
    "林业",
    "渔业",
    "畜牧",
    "能源",
    "环保",
    "环境",
    "气候",
    "天文",
    "气象",
    "化学",
    "物理",
    // Sciences & state affairs.
    "数学",
    "生物",
    "地质",
    "海洋",
    "航天",
    "航空",
    "军工",
    "国防",
    "外交",
    "民族",
    "人口",
    "民生",
    "医疗",
    "卫生",
    "健康",
    "养生",
    "心理",
    "情感",
    "婚恋",
    "家庭",
    // Lifestyle.
    "美食",
    "烹饪",
    "菜谱",
    "饮食",
    "旅游",
    "旅行",
    "户外",
    "探险",
    "时尚",
    "美容",
    "美妆",
    "服饰",
    "购物",
    "生活",
    "休闲",
    "摄影",
    "绘画",
    "书法",
    "雕塑",
    "设计",
    // Performing arts & recreation.
    "舞蹈",
    "戏曲",
    "曲艺",
    "相声",
    "魔术",
    "杂技",
    "影视",
    "综艺",
    "动漫",
    "漫画",
    "电竞",
    "棋牌",
    "武术",
    "健身",
    "瑜伽",
    "跑步",
    "球类",
    "田径",
    "游泳",
    "登山",
    // Folk culture & language.
    "民俗",
    "民间",
    "传统",
    "节日",
    "礼仪",
    "语言",
    "文字",
    "词汇",
    "语法",
    "翻译",
    // Media & information technology.
    "新闻",
    "传媒",
    "媒体",
    "出版",
    "广播",
    "网络",
    "互联网",
    "通信",
    "数码",
    "电子",
    "编程",
    "程序",
    "算法",
    "数据",
    "信息",
    "智能",
    "自动化",
    "制造",
    "机械",
    "建筑",
    // Infrastructure & public sector.
    "交通",
    "物流",
    "运输",
    "驾驶",
    "航运",
    "铁路",
    "公路",
    "桥梁",
    "港口",
    "水利",
    "电力",
    "矿业",
    "冶金",
    "纺织",
    "化工",
    "医药",
    "保健",
    "保险",
    "税务",
    "审计",
    "统计",
    "管理",
    "营销",
    "广告",
    "公关",
    "人力",
    "行政",
    "司法",
    "治安",
    "消防",
    "救援",
    "公益",
    "慈善",
    "考古",
    "文物",
    "收藏",
    "古玩",
    "钱币",
    "邮票",
    "珠宝",
    // Hobbies & genres.
    "玉器",
    "陶瓷",
    "家具",
    "园艺",
    "花艺",
    "宠物",
    "水族",
    "观鸟",
    "垂钓",
    "露营",
    "骑行",
    "滑雪",
    "冲浪",
    "星座",
];

/// Single-character suffixes that mark place named entities (临江市, 云梦县).
pub static PLACE_SUFFIX_CHARS: [char; 22] = [
    '省', '市', '县', '区', '镇', '乡', '村', '国', '州', '郡', '山', '河', '江', '湖', '海', '岛',
    '湾', '峰', '谷', '原', '漠', '洲',
];

/// Multi-character suffixes that mark organization named entities.
pub static ORG_SUFFIXES: [&str; 30] = [
    "有限公司",
    "科技公司",
    "电影公司",
    "唱片公司",
    "公司",
    "集团",
    "大学",
    "学院",
    "中学",
    "小学",
    "银行",
    "医院",
    "研究所",
    "研究院",
    "博物馆",
    "图书馆",
    "出版社",
    "报社",
    "电视台",
    "俱乐部",
    "乐队",
    "基金会",
    "协会",
    "学会",
    "委员会",
    "工作室",
    "事务所",
    "剧院",
    "剧团",
    "乐团",
];

/// One hundred common Chinese surnames (frequency order, 百家姓 usage data).
pub static SURNAMES: [&str; 100] = [
    "王", "李", "张", "刘", "陈", "杨", "黄", "赵", "吴", "周", "徐", "孙", "马", "朱", "胡", "郭",
    "何", "林", "罗", "高", "郑", "梁", "谢", "宋", "唐", "许", "韩", "冯", "邓", "曹", "彭", "曾",
    "肖", "田", "董", "潘", "袁", "蔡", "蒋", "余", "于", "杜", "叶", "程", "苏", "魏", "吕", "丁",
    "任", "沈", "姚", "卢", "姜", "崔", "钟", "谭", "陆", "汪", "范", "金", "石", "廖", "贾", "夏",
    "韦", "傅", "方", "白", "邹", "孟", "熊", "秦", "邱", "江", "尹", "薛", "闫", "段", "雷", "侯",
    "龙", "史", "陶", "黎", "贺", "顾", "毛", "郝", "龚", "邵", "万", "钱", "严", "覃", "武", "戴",
    "莫", "孔", "向", "汤",
];

/// Characters commonly used in Chinese given names.
pub static GIVEN_NAME_CHARS: [&str; 88] = [
    "伟", "芳", "娜", "敏", "静", "丽", "强", "磊", "军", "洋", "勇", "艳", "杰", "娟", "涛", "明",
    "超", "秀", "霞", "平", "刚", "桂", "英", "华", "玉", "萍", "红", "玲", "芬", "燕", "彬", "凤",
    "洁", "梅", "琳", "松", "兰", "竹", "鹏", "飞", "宇", "浩", "轩", "然", "博", "文", "昊", "天",
    "瑞", "晨", "阳", "佳", "嘉", "俊", "辰", "宁", "宏", "志", "远", "晓", "春", "龙", "海", "山",
    "仁", "波", "义", "兴", "良", "德", "林", "峰", "国", "庆", "云", "莉", "欣", "怡", "雪", "倩",
    "楠", "薇", "萌", "丹", "菲", "璐", "桐", "琪",
];

/// Base segmentation dictionary: `(word, frequency, pos)`.
///
/// Frequencies are order-of-magnitude realistic (的 ≫ content verbs) so the
/// max-probability DP prefers natural segmentations before corpus counts
/// are folded in.
pub static BASE_VOCAB: &[(&str, u64, PosTag)] = &[
    // --- particles ---
    ("的", 800_000, PosTag::Particle),
    ("了", 300_000, PosTag::Particle),
    ("着", 80_000, PosTag::Particle),
    ("过", 60_000, PosTag::Particle),
    ("地", 50_000, PosTag::Particle),
    ("得", 50_000, PosTag::Particle),
    ("们", 40_000, PosTag::Particle),
    ("等", 45_000, PosTag::Particle),
    ("吧", 8_000, PosTag::Particle),
    ("吗", 9_000, PosTag::Particle),
    ("呢", 8_000, PosTag::Particle),
    ("啊", 7_000, PosTag::Particle),
    // --- pronouns & question words ---
    ("我", 120_000, PosTag::Pronoun),
    ("你", 90_000, PosTag::Pronoun),
    ("他", 110_000, PosTag::Pronoun),
    ("她", 70_000, PosTag::Pronoun),
    ("它", 30_000, PosTag::Pronoun),
    ("我们", 40_000, PosTag::Pronoun),
    ("他们", 30_000, PosTag::Pronoun),
    ("这", 60_000, PosTag::Pronoun),
    ("那", 40_000, PosTag::Pronoun),
    ("其", 35_000, PosTag::Pronoun),
    ("该", 20_000, PosTag::Pronoun),
    ("本", 18_000, PosTag::Pronoun),
    ("此", 15_000, PosTag::Pronoun),
    ("谁", 12_000, PosTag::Pronoun),
    ("什么", 25_000, PosTag::Pronoun),
    ("哪", 8_000, PosTag::Pronoun),
    ("哪些", 6_000, PosTag::Pronoun),
    ("哪里", 6_000, PosTag::Pronoun),
    ("怎么", 9_000, PosTag::Pronoun),
    ("如何", 9_000, PosTag::Pronoun),
    ("为什么", 6_000, PosTag::Pronoun),
    // --- prepositions & conjunctions ---
    ("在", 250_000, PosTag::Function),
    ("于", 90_000, PosTag::Function),
    ("从", 40_000, PosTag::Function),
    ("向", 25_000, PosTag::Function),
    ("对", 45_000, PosTag::Function),
    ("把", 30_000, PosTag::Function),
    ("被", 35_000, PosTag::Function),
    ("给", 25_000, PosTag::Function),
    ("和", 150_000, PosTag::Function),
    ("与", 80_000, PosTag::Function),
    ("或", 25_000, PosTag::Function),
    ("及", 30_000, PosTag::Function),
    ("以及", 20_000, PosTag::Function),
    ("而", 40_000, PosTag::Function),
    ("但", 25_000, PosTag::Function),
    ("但是", 15_000, PosTag::Function),
    ("因为", 15_000, PosTag::Function),
    ("所以", 12_000, PosTag::Function),
    ("如果", 12_000, PosTag::Function),
    ("虽然", 8_000, PosTag::Function),
    ("并", 30_000, PosTag::Function),
    ("并且", 8_000, PosTag::Function),
    ("或者", 9_000, PosTag::Function),
    ("而且", 8_000, PosTag::Function),
    ("为", 70_000, PosTag::Function),
    ("由", 40_000, PosTag::Function),
    ("以", 50_000, PosTag::Function),
    // --- adverbs ---
    ("不", 120_000, PosTag::Adverb),
    ("也", 60_000, PosTag::Adverb),
    ("都", 50_000, PosTag::Adverb),
    ("又", 25_000, PosTag::Adverb),
    ("还", 35_000, PosTag::Adverb),
    ("再", 20_000, PosTag::Adverb),
    ("就", 55_000, PosTag::Adverb),
    ("很", 40_000, PosTag::Adverb),
    ("非常", 15_000, PosTag::Adverb),
    ("十分", 8_000, PosTag::Adverb),
    ("特别", 9_000, PosTag::Adverb),
    ("最", 30_000, PosTag::Adverb),
    ("更", 25_000, PosTag::Adverb),
    ("较", 12_000, PosTag::Adverb),
    ("比较", 10_000, PosTag::Adverb),
    ("曾", 20_000, PosTag::Adverb),
    ("曾经", 9_000, PosTag::Adverb),
    ("已", 18_000, PosTag::Adverb),
    ("已经", 15_000, PosTag::Adverb),
    ("正在", 9_000, PosTag::Adverb),
    ("将", 30_000, PosTag::Adverb),
    ("一直", 9_000, PosTag::Adverb),
    ("总是", 5_000, PosTag::Adverb),
    ("经常", 6_000, PosTag::Adverb),
    ("先后", 8_000, PosTag::Adverb),
    ("主要", 20_000, PosTag::Adj),
    ("著名", 18_000, PosTag::Adj),
    ("知名", 9_000, PosTag::Adj),
    ("国际", 20_000, PosTag::Adj),
    ("全国", 15_000, PosTag::Adj),
    ("首席", 6_000, PosTag::Adj),
    ("高级", 8_000, PosTag::Adj),
    ("资深", 4_000, PosTag::Adj),
    ("优秀", 9_000, PosTag::Adj),
    ("杰出", 5_000, PosTag::Adj),
    ("男", 25_000, PosTag::Adj),
    ("女", 25_000, PosTag::Adj),
    // --- copulas & frequent verbs (encyclopedia register) ---
    ("是", 400_000, PosTag::Verb),
    ("有", 150_000, PosTag::Verb),
    ("出生", 25_000, PosTag::Verb),
    ("出生于", 18_000, PosTag::Verb),
    ("毕业", 15_000, PosTag::Verb),
    ("毕业于", 14_000, PosTag::Verb),
    ("创办", 8_000, PosTag::Verb),
    ("创立", 7_000, PosTag::Verb),
    ("成立", 15_000, PosTag::Verb),
    ("成立于", 9_000, PosTag::Verb),
    ("担任", 12_000, PosTag::Verb),
    ("获得", 20_000, PosTag::Verb),
    ("主演", 10_000, PosTag::Verb),
    ("出演", 8_000, PosTag::Verb),
    ("发行", 9_000, PosTag::Verb),
    ("发布", 8_000, PosTag::Verb),
    ("出版于", 3_000, PosTag::Verb),
    ("位于", 18_000, PosTag::Verb),
    ("地处", 5_000, PosTag::Verb),
    ("属于", 10_000, PosTag::Verb),
    ("隶属于", 4_000, PosTag::Verb),
    ("包括", 12_000, PosTag::Verb),
    ("包含", 6_000, PosTag::Verb),
    ("拥有", 10_000, PosTag::Verb),
    ("成为", 18_000, PosTag::Verb),
    ("称为", 8_000, PosTag::Verb),
    ("被称为", 6_000, PosTag::Verb),
    ("享有", 4_000, PosTag::Verb),
    ("凭借", 7_000, PosTag::Verb),
    ("荣获", 6_000, PosTag::Verb),
    ("入选", 5_000, PosTag::Verb),
    ("当选", 5_000, PosTag::Verb),
    ("执导", 5_000, PosTag::Verb),
    ("编写", 4_000, PosTag::Verb),
    ("创作", 8_000, PosTag::Verb),
    ("演唱", 7_000, PosTag::Verb),
    ("录制", 4_000, PosTag::Verb),
    ("经营", 6_000, PosTag::Verb),
    ("生产", 8_000, PosTag::Verb),
    ("研发", 6_000, PosTag::Verb),
    ("上映", 6_000, PosTag::Verb),
    ("开播", 3_000, PosTag::Verb),
    ("连载", 3_000, PosTag::Verb),
    ("建成", 4_000, PosTag::Verb),
    ("开通", 3_000, PosTag::Verb),
    ("注册", 4_000, PosTag::Verb),
    ("上市", 5_000, PosTag::Verb),
    ("收购", 4_000, PosTag::Verb),
    ("更名", 3_000, PosTag::Verb),
    ("改编", 4_000, PosTag::Verb),
    ("饰演", 5_000, PosTag::Verb),
    ("配音", 3_000, PosTag::Verb),
    ("作曲", 4_000, PosTag::Verb),
    ("作词", 4_000, PosTag::Verb),
    ("执教", 3_000, PosTag::Verb),
    ("效力", 3_000, PosTag::Verb),
    ("退役", 3_000, PosTag::Verb),
    ("夺得", 4_000, PosTag::Verb),
    ("打破", 3_000, PosTag::Verb),
    ("保持", 4_000, PosTag::Verb),
    ("介绍", 6_000, PosTag::Verb),
    ("请问", 3_000, PosTag::Verb),
    // --- common nouns / time ---
    ("年", 120_000, PosTag::Time),
    ("月", 80_000, PosTag::Time),
    ("日", 75_000, PosTag::Time),
    ("时间", 15_000, PosTag::Noun),
    ("地区", 12_000, PosTag::Noun),
    ("地方", 10_000, PosTag::Noun),
    ("方面", 8_000, PosTag::Noun),
    ("人", 90_000, PosTag::Noun),
    ("名", 30_000, PosTag::Noun),
    ("字", 15_000, PosTag::Noun),
    ("之一", 20_000, PosTag::Noun),
    ("代表", 12_000, PosTag::Noun),
    ("成员", 9_000, PosTag::Noun),
    ("作者", 9_000, PosTag::Noun),
    ("奖项", 5_000, PosTag::Noun),
    ("奖", 12_000, PosTag::Noun),
    ("中国", 80_000, PosTag::PlaceName),
    ("美国", 30_000, PosTag::PlaceName),
    ("英国", 15_000, PosTag::PlaceName),
    ("法国", 12_000, PosTag::PlaceName),
    ("德国", 11_000, PosTag::PlaceName),
    ("日本", 18_000, PosTag::PlaceName),
    ("韩国", 10_000, PosTag::PlaceName),
    ("香港", 15_000, PosTag::PlaceName),
    ("台湾", 10_000, PosTag::PlaceName),
    ("北京", 25_000, PosTag::PlaceName),
    ("上海", 22_000, PosTag::PlaceName),
    // --- numerals ---
    ("一", 90_000, PosTag::Numeral),
    ("二", 30_000, PosTag::Numeral),
    ("三", 28_000, PosTag::Numeral),
    ("四", 20_000, PosTag::Numeral),
    ("五", 18_000, PosTag::Numeral),
    ("六", 15_000, PosTag::Numeral),
    ("七", 13_000, PosTag::Numeral),
    ("八", 13_000, PosTag::Numeral),
    ("九", 12_000, PosTag::Numeral),
    ("十", 25_000, PosTag::Numeral),
    ("百", 10_000, PosTag::Numeral),
    ("千", 8_000, PosTag::Numeral),
    ("万", 9_000, PosTag::Numeral),
    ("亿", 5_000, PosTag::Numeral),
    ("第一", 12_000, PosTag::Numeral),
    ("第二", 8_000, PosTag::Numeral),
    // --- measure words ---
    ("个", 60_000, PosTag::Measure),
    ("位", 20_000, PosTag::Measure),
    ("部", 18_000, PosTag::Measure),
    ("首", 10_000, PosTag::Measure),
    ("张", 9_000, PosTag::Measure),
    ("座", 8_000, PosTag::Measure),
    ("所", 12_000, PosTag::Measure),
    ("家", 20_000, PosTag::Measure),
    ("支", 6_000, PosTag::Measure),
    ("只", 8_000, PosTag::Measure),
    ("条", 8_000, PosTag::Measure),
    ("枚", 3_000, PosTag::Measure),
    ("届", 6_000, PosTag::Measure),
    ("次", 12_000, PosTag::Measure),
    ("种", 12_000, PosTag::Measure),
];

fn thematic_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| THEMATIC_WORDS.iter().copied().collect())
}

/// Returns `true` when `word` is in the thematic (non-taxonomic) lexicon.
pub fn is_thematic(word: &str) -> bool {
    thematic_set().contains(word)
}

fn surname_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| SURNAMES.iter().copied().collect())
}

/// Returns `true` when `s` is one of the embedded surnames.
pub fn is_surname(s: &str) -> bool {
    surname_set().contains(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thematic_lexicon_has_exactly_184_entries() {
        // The paper: “We collect a Chinese lexicon from Li et al. including
        // 184 non-taxonomies, thematic words.”
        assert_eq!(THEMATIC_WORDS.len(), 184);
        let unique: HashSet<_> = THEMATIC_WORDS.iter().collect();
        assert_eq!(unique.len(), 184, "thematic lexicon contains duplicates");
    }

    #[test]
    fn thematic_membership() {
        assert!(is_thematic("政治"));
        assert!(is_thematic("军事"));
        assert!(is_thematic("音乐"));
        assert!(!is_thematic("演员"));
        assert!(!is_thematic("歌手"));
    }

    #[test]
    fn surnames_unique_and_complete() {
        let unique: HashSet<_> = SURNAMES.iter().collect();
        assert_eq!(unique.len(), 100);
        assert!(is_surname("刘"));
        assert!(!is_surname("甲"));
    }

    #[test]
    fn given_name_chars_unique() {
        let unique: HashSet<_> = GIVEN_NAME_CHARS.iter().collect();
        assert_eq!(unique.len(), GIVEN_NAME_CHARS.len());
    }

    #[test]
    fn base_vocab_has_no_duplicates_and_positive_freqs() {
        let mut seen = HashSet::new();
        for (w, f, _) in BASE_VOCAB {
            assert!(seen.insert(*w), "duplicate base vocab entry: {w}");
            assert!(*f > 0);
        }
    }

    #[test]
    fn org_suffixes_sorted_longest_variants_first() {
        // 有限公司 must be listed before 公司 so longest-suffix matching wins.
        let long = ORG_SUFFIXES.iter().position(|s| *s == "有限公司").unwrap();
        let short = ORG_SUFFIXES.iter().position(|s| *s == "公司").unwrap();
        assert!(long < short);
    }

    #[test]
    fn thematic_words_are_not_surnames() {
        for w in THEMATIC_WORDS {
            assert!(!is_surname(w));
        }
    }
}
