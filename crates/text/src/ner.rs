//! Named-entity recognition and NE-support statistics.
//!
//! Verification strategy B of the paper (§III-B) rejects isA relations whose
//! hypernym is itself a named entity — `isA(iPhone, America)` is wrong
//! because *America* names an individual, not a class. The strategy needs:
//!
//! * a recognizer deciding whether a string *looks like* a named entity
//!   (person / place / organization / work title), and
//! * support statistics: `s1(H) = NE(H) / total(H)` over a text corpus,
//!   combined with the taxonomy-side support `s2(H)` through the noisy-or
//!   model of Eq. 2 (implemented in `cnp-core::verification`).

use crate::chars::char_len;
use crate::dict::Dictionary;
use crate::lexicons::{is_surname, ORG_SUFFIXES, PLACE_SUFFIX_CHARS};
use std::collections::HashMap;

/// Kinds of named entities the recognizer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeKind {
    /// Person name (刘德华).
    Person,
    /// Place name (临江市, 美国).
    Place,
    /// Organization name (蚂蚁金服有限公司).
    Org,
    /// Work title (《彩云曲》).
    Work,
}

/// Heuristic Chinese named-entity recognizer.
///
/// Decisions combine surname/suffix cues with a common-word veto from the
/// dictionary: a frequent common noun is never classified as a person name
/// even when its first character happens to be a surname (e.g. 金服).
#[derive(Debug, Clone)]
pub struct NeRecognizer {
    dict: Dictionary,
    /// Words whose dictionary frequency exceeds this are vetoed as Person.
    common_word_freq_veto: u64,
}

impl NeRecognizer {
    /// Creates a recognizer backed by `dict`.
    pub fn new(dict: Dictionary) -> Self {
        NeRecognizer {
            dict,
            common_word_freq_veto: 50,
        }
    }

    /// Classifies `s`, returning `None` for non-entities.
    pub fn classify(&self, s: &str) -> Option<NeKind> {
        if s.is_empty() {
            return None;
        }
        if s.starts_with('《') && s.ends_with('》') && char_len(s) > 2 {
            return Some(NeKind::Work);
        }
        // Organization: longest-suffix match; must have a proper prefix.
        for suffix in ORG_SUFFIXES {
            if s.ends_with(suffix) && char_len(s) > char_len(suffix) {
                return Some(NeKind::Org);
            }
        }
        // Place: single-char geographic suffix with a proper prefix, or a
        // dictionary-tagged place name (中国, 香港 …).
        if let Some(info) = self.dict.get(s) {
            if info.pos == crate::pos::PosTag::PlaceName {
                return Some(NeKind::Place);
            }
            if info.pos == crate::pos::PosTag::PersonName {
                return Some(NeKind::Person);
            }
        }
        let chars: Vec<char> = s.chars().collect();
        let last = *chars.last().unwrap();
        if chars.len() >= 2 && PLACE_SUFFIX_CHARS.contains(&last) {
            return Some(NeKind::Place);
        }
        // Person: surname + 1-2 further Han chars, not a common word.
        if (2..=3).contains(&chars.len()) && is_surname(&chars[0].to_string()) {
            let is_common = self
                .dict
                .get(s)
                .map(|i| i.freq > self.common_word_freq_veto)
                .unwrap_or(false);
            if !is_common && chars.iter().all(|&c| crate::chars::is_han(c)) {
                return Some(NeKind::Person);
            }
        }
        None
    }

    /// Convenience: is `s` any kind of named entity?
    pub fn is_entity(&self, s: &str) -> bool {
        self.classify(s).is_some()
    }
}

/// Occurrence statistics for the NE-support score `s1(H)`.
///
/// `observe(word, as_ne)` is called once per corpus occurrence; `support`
/// returns `NE(H) / total(H)` (0 when unseen).
#[derive(Debug, Clone, Default)]
pub struct NeStats {
    counts: HashMap<String, (u64, u64)>, // (ne_occurrences, total_occurrences)
}

impl NeStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `word`, flagged as NE usage or not.
    pub fn observe(&mut self, word: &str, as_ne: bool) {
        let entry = self.counts.entry(word.to_string()).or_insert((0, 0));
        if as_ne {
            entry.0 += 1;
        }
        entry.1 += 1;
    }

    /// `s(H) = NE(H) / total(H)`; 0 for unseen words.
    pub fn support(&self, word: &str) -> f64 {
        match self.counts.get(word) {
            Some(&(ne, total)) if total > 0 => ne as f64 / total as f64,
            _ => 0.0,
        }
    }

    /// Total occurrences of `word`.
    pub fn total(&self, word: &str) -> u64 {
        self.counts.get(word).map(|&(_, t)| t).unwrap_or(0)
    }

    /// Number of distinct observed words.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Merges another statistics set into this one.
    pub fn merge(&mut self, other: NeStats) {
        for (word, (ne, total)) in other.counts {
            let entry = self.counts.entry(word).or_insert((0, 0));
            entry.0 += ne;
            entry.1 += total;
        }
    }
}

/// Noisy-or combination of independent support signals (paper Eq. 2):
/// `s(H) = 1 − (1 − s1)(1 − s2)`.
///
/// The noisy-or amplifies the support signal: either source alone being
/// confident is enough to flag the hypernym.
pub fn noisy_or(s1: f64, s2: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&s1), "s1 out of range: {s1}");
    debug_assert!((0.0..=1.0).contains(&s2), "s2 out of range: {s2}");
    1.0 - (1.0 - s1) * (1.0 - s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::PosTag;
    use proptest::prelude::*;

    fn recognizer() -> NeRecognizer {
        let mut d = Dictionary::base();
        d.add_word("演员", 900, PosTag::Noun);
        d.add_word("金服", 200, PosTag::Noun);
        NeRecognizer::new(d)
    }

    #[test]
    fn classifies_person_names() {
        let r = recognizer();
        assert_eq!(r.classify("刘德华"), Some(NeKind::Person));
        assert_eq!(r.classify("王伟"), Some(NeKind::Person));
    }

    #[test]
    fn common_words_are_not_persons() {
        let r = recognizer();
        // 金服 starts with surname 金 but is a frequent common word.
        assert_eq!(r.classify("金服"), None);
        assert_eq!(r.classify("演员"), None);
    }

    #[test]
    fn classifies_places() {
        let r = recognizer();
        assert_eq!(r.classify("临江市"), Some(NeKind::Place));
        assert_eq!(r.classify("美国"), Some(NeKind::Place));
        assert_eq!(r.classify("香港"), Some(NeKind::Place));
        // A bare suffix char is not a place.
        assert_eq!(r.classify("市"), None);
    }

    #[test]
    fn classifies_orgs_with_longest_suffix() {
        let r = recognizer();
        assert_eq!(r.classify("星辰有限公司"), Some(NeKind::Org));
        assert_eq!(r.classify("南华大学"), Some(NeKind::Org));
        assert_eq!(r.classify("大学"), None);
    }

    #[test]
    fn classifies_work_titles() {
        let r = recognizer();
        assert_eq!(r.classify("《彩云曲》"), Some(NeKind::Work));
        assert_eq!(r.classify("《》"), None);
    }

    #[test]
    fn ne_stats_support() {
        let mut s = NeStats::new();
        for _ in 0..9 {
            s.observe("美国", true);
        }
        s.observe("美国", false);
        assert!((s.support("美国") - 0.9).abs() < 1e-12);
        assert_eq!(s.support("演员"), 0.0);
        assert_eq!(s.total("美国"), 10);
    }

    #[test]
    fn noisy_or_matches_eq2() {
        assert!((noisy_or(0.9, 0.5) - 0.95).abs() < 1e-12);
        assert_eq!(noisy_or(0.0, 0.0), 0.0);
        assert_eq!(noisy_or(1.0, 0.0), 1.0);
    }

    proptest! {
        /// Noisy-or stays in [0,1] and dominates both inputs (amplification).
        #[test]
        fn noisy_or_bounds_and_amplification(s1 in 0.0f64..=1.0, s2 in 0.0f64..=1.0) {
            let v = noisy_or(s1, s2);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            prop_assert!(v >= s1 - 1e-12);
            prop_assert!(v >= s2 - 1e-12);
        }

        /// Noisy-or is monotone in each argument.
        #[test]
        fn noisy_or_monotone(s1 in 0.0f64..=1.0, s2 in 0.0f64..=1.0, d in 0.0f64..=0.5) {
            let base = noisy_or(s1, s2);
            let bumped = noisy_or((s1 + d).min(1.0), s2);
            prop_assert!(bumped + 1e-12 >= base);
        }

        /// Support is always a valid probability.
        #[test]
        fn support_is_probability(obs in proptest::collection::vec(("[a-c]", proptest::bool::ANY), 0..30)) {
            let mut s = NeStats::new();
            for (w, ne) in &obs {
                s.observe(w, *ne);
            }
            for w in ["a", "b", "c", "d"] {
                let v = s.support(w);
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
