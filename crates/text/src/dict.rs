//! Word dictionary: frequencies + part-of-speech tags, indexed by a trie.
//!
//! The segmenter scores a segmentation by the sum of word log-probabilities,
//! exactly like jieba's `calc` routine. Frequencies can come from the
//! embedded base lexicon, from corpus counts (the CN-Probase pipeline
//! bootstraps its dictionary from the encyclopedia corpus itself), or both.

use crate::pos::PosTag;
use crate::trie::Trie;

/// Dictionary entry: corpus frequency and a coarse part-of-speech tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordInfo {
    /// Raw corpus frequency (≥ 1 for any stored word).
    pub freq: u64,
    /// Coarse part-of-speech tag.
    pub pos: PosTag,
}

/// A frequency dictionary over Chinese words.
#[derive(Debug, Clone)]
pub struct Dictionary {
    trie: Trie<WordInfo>,
    total: u64,
    log_total: f64,
}

impl Default for Dictionary {
    fn default() -> Self {
        Self::new()
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary {
            trie: Trie::new(),
            total: 0,
            log_total: 0.0,
        }
    }

    /// Builds the embedded base dictionary: lexicon words, function words,
    /// measure words and common verbs with hand-assigned frequencies.
    ///
    /// This provides segmentation coverage for generic Chinese before any
    /// corpus statistics are available; pipelines then call
    /// [`Dictionary::add_word`] for every corpus-derived vocabulary item.
    pub fn base() -> Self {
        let mut d = Dictionary::new();
        for &(word, freq, pos) in crate::lexicons::BASE_VOCAB {
            d.add_word(word, freq, pos);
        }
        d
    }

    /// Inserts or updates a word. Re-inserting accumulates frequency and
    /// keeps the first non-`Other` POS tag.
    pub fn add_word(&mut self, word: &str, freq: u64, pos: PosTag) {
        debug_assert!(freq > 0, "dictionary frequencies must be positive");
        match self.trie.get(word).copied() {
            Some(old) => {
                let merged = WordInfo {
                    freq: old.freq + freq,
                    pos: if old.pos == PosTag::Other {
                        pos
                    } else {
                        old.pos
                    },
                };
                self.trie.insert(word, merged);
                self.total += freq;
            }
            None => {
                self.trie.insert(word, WordInfo { freq, pos });
                self.total += freq;
            }
        }
        self.log_total = (self.total.max(1) as f64).ln();
    }

    /// Exact lookup.
    pub fn get(&self, word: &str) -> Option<WordInfo> {
        self.trie.get(word).copied()
    }

    /// Returns `true` when `word` is stored.
    pub fn contains(&self, word: &str) -> bool {
        self.trie.contains(word)
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Returns `true` when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.len() == 0
    }

    /// Sum of all frequencies.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Log-probability of a known word; unknown words receive a one-count
    /// smoothed probability so the DP remains well-defined.
    pub fn log_prob(&self, word: &str) -> f64 {
        let freq = self.get(word).map(|i| i.freq).unwrap_or(1).max(1);
        (freq as f64).ln() - self.log_total
    }

    /// All dictionary words starting at `chars[start..]`, as
    /// `(end_char_index_exclusive, info)` pairs — the segmentation DAG edges.
    pub fn matches_at(&self, chars: &[char], start: usize) -> Vec<(usize, WordInfo)> {
        self.trie
            .prefix_matches(chars, start)
            .into_iter()
            .map(|(end, info)| (end, *info))
            .collect()
    }

    /// Iterates `(word, info)` over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (String, WordInfo)> + '_ {
        self.trie.iter().map(|(w, i)| (w, *i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut d = Dictionary::new();
        d.add_word("演员", 100, PosTag::Noun);
        assert!(d.contains("演员"));
        assert_eq!(d.get("演员").unwrap().freq, 100);
        assert_eq!(d.total(), 100);
    }

    #[test]
    fn reinsert_accumulates_frequency() {
        let mut d = Dictionary::new();
        d.add_word("歌手", 10, PosTag::Noun);
        d.add_word("歌手", 5, PosTag::Noun);
        assert_eq!(d.get("歌手").unwrap().freq, 15);
        assert_eq!(d.total(), 15);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn pos_upgrade_from_other() {
        let mut d = Dictionary::new();
        d.add_word("东西", 10, PosTag::Other);
        d.add_word("东西", 10, PosTag::Noun);
        assert_eq!(d.get("东西").unwrap().pos, PosTag::Noun);
        // A later different tag does not overwrite an established one.
        d.add_word("东西", 10, PosTag::Verb);
        assert_eq!(d.get("东西").unwrap().pos, PosTag::Noun);
    }

    #[test]
    fn log_prob_ordering_follows_frequency() {
        let mut d = Dictionary::new();
        d.add_word("的", 1000, PosTag::Particle);
        d.add_word("罕见词", 2, PosTag::Noun);
        assert!(d.log_prob("的") > d.log_prob("罕见词"));
        // Unknown word gets the floor probability.
        assert!(d.log_prob("未登录") <= d.log_prob("罕见词"));
    }

    #[test]
    fn base_dictionary_is_nonempty_and_has_function_words() {
        let d = Dictionary::base();
        assert!(d.len() > 200, "base dictionary too small: {}", d.len());
        assert!(d.contains("的"));
        assert!(d.contains("出生"));
    }

    #[test]
    fn matches_at_returns_dag_edges() {
        let mut d = Dictionary::new();
        d.add_word("中国", 10, PosTag::Noun);
        d.add_word("中", 5, PosTag::Noun);
        let chars: Vec<char> = "中国".chars().collect();
        let ends: Vec<usize> = d.matches_at(&chars, 0).iter().map(|(e, _)| *e).collect();
        assert_eq!(ends, vec![1, 2]);
    }
}
