#![forbid(unsafe_code)]
//! # cnp-text — Chinese text-processing substrate for CN-Probase
//!
//! The CN-Probase paper (Chen et al., ICDE 2019) builds a Chinese taxonomy
//! from encyclopedia text. Every text-level capability the paper depends on
//! is implemented in this crate, from scratch:
//!
//! * [`trie`] — prefix trie over Chinese characters, the dictionary index.
//! * [`dict`] — word dictionary with frequencies and part-of-speech tags.
//! * [`segment`] — jieba-style word segmentation: dictionary DAG +
//!   max-probability dynamic programming, with an HMM fallback for
//!   out-of-vocabulary spans.
//! * [`hmm`] — BMES hidden Markov model used by the segmenter, trainable
//!   from a segmented corpus.
//! * [`ngram`]/[`pmi`] — corpus co-occurrence statistics and pointwise
//!   mutual information, which drive the paper's *separation algorithm*
//!   (§II, Fig. 3).
//! * [`pos`] — part-of-speech tagging (dictionary + suffix heuristics),
//!   needed by the Probase-Tran baseline's POS filter.
//! * [`ner`] — named-entity recognition and NE *support* statistics
//!   (`s1(H)` of §III-B, Eq. 2).
//! * [`head`] — lexical-head and stem analysis for the syntax-based
//!   verification rules (§III-C).
//! * [`lexicons`] — embedded linguistic resources: the 184-entry thematic
//!   word lexicon, NE suffixes, Chinese surnames, function words.
//!
//! All APIs operate on `&str` and internally use `char` indexing, so they
//! are correct for multi-byte CJK text.

pub mod chars;
pub mod dict;
pub mod head;
pub mod hmm;
pub mod lexicons;
pub mod ner;
pub mod ngram;
pub mod pmi;
pub mod pos;
pub mod segment;
pub mod trie;

pub use dict::Dictionary;
pub use head::HeadAnalyzer;
pub use hmm::HmmModel;
pub use ner::{NeKind, NeRecognizer, NeStats};
pub use ngram::NgramCounter;
pub use pmi::PmiModel;
pub use pos::{PosTag, PosTagger};
pub use segment::Segmenter;
pub use trie::Trie;
