//! Prefix trie over `char`s — the dictionary index used by the segmenter.
//!
//! The segmenter builds a word DAG by asking, for each start position in a
//! sentence, which dictionary words begin there. That query is exactly a
//! walk down this trie, so lookups are O(word length) with no hashing of
//! whole substrings.

use std::collections::HashMap;

/// A node in the trie. Children are keyed by the next character.
#[derive(Debug, Clone)]
struct Node<V> {
    children: HashMap<char, Node<V>>,
    value: Option<V>,
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            children: HashMap::new(),
            value: None,
        }
    }
}

/// Prefix trie mapping `&str` keys (as char sequences) to values.
#[derive(Debug, Clone)]
pub struct Trie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for Trie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Trie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Trie {
            root: Node {
                children: HashMap::new(),
                value: None,
            },
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key`, returning the previous value if the key was present.
    pub fn insert(&mut self, key: &str, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for c in key.chars() {
            node = node.children.entry(c).or_default();
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, key: &str) -> Option<&V> {
        let mut node = &self.root;
        for c in key.chars() {
            node = node.children.get(&c)?;
        }
        node.value.as_ref()
    }

    /// Returns `true` when `key` is stored.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Walks the trie along `chars[start..]` and reports every prefix that
    /// is a stored key, as `(end_char_index_exclusive, &value)`.
    ///
    /// This is the segmenter's DAG-edge query: all dictionary words starting
    /// at `start`.
    pub fn prefix_matches<'a>(&'a self, chars: &[char], start: usize) -> Vec<(usize, &'a V)> {
        let mut out = Vec::new();
        let mut node = &self.root;
        for (offset, &c) in chars[start..].iter().enumerate() {
            match node.children.get(&c) {
                Some(next) => {
                    node = next;
                    if let Some(v) = node.value.as_ref() {
                        out.push((start + offset + 1, v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Longest stored key that is a prefix of `chars[start..]`, as
    /// `(end_char_index_exclusive, &value)`.
    pub fn longest_match<'a>(&'a self, chars: &[char], start: usize) -> Option<(usize, &'a V)> {
        self.prefix_matches(chars, start).into_iter().last()
    }

    /// Iterates over all `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (String, &V)> {
        let mut stack: Vec<(String, &Node<V>)> = vec![(String::new(), &self.root)];
        std::iter::from_fn(move || {
            while let Some((prefix, node)) = stack.pop() {
                for (c, child) in node.children.iter() {
                    let mut key = prefix.clone();
                    key.push(*c);
                    stack.push((key, child));
                }
                if let Some(v) = node.value.as_ref() {
                    return Some((prefix, v));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_and_get() {
        let mut t = Trie::new();
        assert_eq!(t.insert("蚂蚁", 1u32), None);
        assert_eq!(t.insert("蚂蚁", 2), Some(1));
        assert_eq!(t.get("蚂蚁"), Some(&2));
        assert_eq!(t.get("蚂"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prefix_matches_reports_all_word_ends() {
        let mut t = Trie::new();
        t.insert("中", 1u32);
        t.insert("中国", 2);
        t.insert("中国人", 3);
        t.insert("国人", 4);
        let chars: Vec<char> = "中国人民".chars().collect();
        let ends: Vec<usize> = t
            .prefix_matches(&chars, 0)
            .iter()
            .map(|(e, _)| *e)
            .collect();
        assert_eq!(ends, vec![1, 2, 3]);
        let ends1: Vec<usize> = t
            .prefix_matches(&chars, 1)
            .iter()
            .map(|(e, _)| *e)
            .collect();
        assert_eq!(ends1, vec![3]); // 国人
    }

    #[test]
    fn longest_match_prefers_longest() {
        let mut t = Trie::new();
        t.insert("战略", 1u32);
        t.insert("战略官", 2);
        let chars: Vec<char> = "战略官员".chars().collect();
        assert_eq!(t.longest_match(&chars, 0), Some((3, &2)));
    }

    #[test]
    fn empty_key_is_storable() {
        let mut t = Trie::new();
        t.insert("", 7u32);
        assert_eq!(t.get(""), Some(&7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_all_pairs() {
        let mut t = Trie::new();
        for (i, w) in ["演员", "歌手", "演唱会"].iter().enumerate() {
            t.insert(w, i);
        }
        let collected: HashMap<String, usize> = t.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected["演员"], 0);
        assert_eq!(collected["演唱会"], 2);
    }

    proptest! {
        /// The trie must agree with a HashMap on arbitrary insert sequences.
        #[test]
        fn trie_matches_hashmap(entries in proptest::collection::vec(("[一-龥a-z]{0,6}", 0u32..1000), 0..60)) {
            let mut trie = Trie::new();
            let mut map = HashMap::new();
            for (k, v) in &entries {
                trie.insert(k, *v);
                map.insert(k.clone(), *v);
            }
            prop_assert_eq!(trie.len(), map.len());
            for (k, v) in &map {
                prop_assert_eq!(trie.get(k), Some(v));
            }
        }

        /// Every prefix match must be a genuine stored key of that length.
        #[test]
        fn prefix_matches_are_real_keys(words in proptest::collection::vec("[一-龥]{1,4}", 1..20), query in "[一-龥]{1,8}") {
            let mut trie = Trie::new();
            for w in &words {
                trie.insert(w, ());
            }
            let chars: Vec<char> = query.chars().collect();
            for start in 0..chars.len() {
                for (end, _) in trie.prefix_matches(&chars, start) {
                    let key: String = chars[start..end].iter().collect();
                    prop_assert!(trie.contains(&key));
                }
            }
        }
    }
}
