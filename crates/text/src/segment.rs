//! Dictionary-DAG word segmentation with max-probability dynamic
//! programming and an HMM fallback — the jieba algorithm, from scratch.
//!
//! Pipeline per sentence:
//! 1. split the text into character-class runs ([`crate::chars::class_runs`]);
//! 2. inside each Han run, build the word DAG from dictionary prefix
//!    matches and pick the maximum-log-probability path (unigram model);
//! 3. re-segment maximal spans of unknown single characters with the BMES
//!    HMM ([`crate::hmm`]), recovering out-of-vocabulary words.
//!
//! The CN-Probase *separation algorithm* (paper §II, Fig. 3) runs this
//! segmenter on bracket noun compounds before its PMI merge loop.

use crate::chars::{class_runs, Run};
use crate::dict::Dictionary;
use crate::hmm::HmmModel;

/// A word segmenter over a frequency dictionary.
#[derive(Debug, Clone)]
pub struct Segmenter {
    dict: Dictionary,
    hmm: HmmModel,
    use_hmm: bool,
}

impl Segmenter {
    /// Creates a segmenter with the default (untrained) HMM enabled.
    pub fn new(dict: Dictionary) -> Self {
        Segmenter {
            dict,
            hmm: HmmModel::default(),
            use_hmm: true,
        }
    }

    /// Creates a segmenter with a trained HMM.
    pub fn with_hmm(dict: Dictionary, hmm: HmmModel) -> Self {
        Segmenter {
            dict,
            hmm,
            use_hmm: true,
        }
    }

    /// Disables the HMM pass (pure dictionary DP; unknown chars stay single).
    pub fn without_hmm(mut self) -> Self {
        self.use_hmm = false;
        self
    }

    /// Read-only access to the dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary (to fold in corpus counts).
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Segments `text` into tokens. Punctuation runs are emitted as single
    /// tokens; ASCII alphanumeric runs are kept atomic.
    pub fn segment(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for run in class_runs(text) {
            match run {
                Run::Han(s) => self.segment_han(s, &mut out),
                Run::Alnum(s) => out.push(s.to_string()),
                Run::Punct(s) => out.push(s.to_string()),
            }
        }
        out
    }

    /// Segments `text` and tags every token with its part of speech
    /// (dictionary tag, falling back to shape heuristics). Punctuation
    /// tokens carry [`crate::pos::PosTag::Other`].
    pub fn segment_tagged(&self, text: &str) -> Vec<(String, crate::pos::PosTag)> {
        self.segment(text)
            .into_iter()
            .map(|tok| {
                let tag = if tok.chars().all(crate::chars::is_punct) {
                    crate::pos::PosTag::Other
                } else if let Some(info) = self.dict.get(&tok) {
                    if info.pos == crate::pos::PosTag::Other {
                        crate::pos::PosTagger::guess_by_shape(&tok)
                    } else {
                        info.pos
                    }
                } else {
                    crate::pos::PosTagger::guess_by_shape(&tok)
                };
                (tok, tag)
            })
            .collect()
    }

    /// Segments `text` and drops punctuation/whitespace tokens — the
    /// convenient form for corpus statistics.
    pub fn words(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for run in class_runs(text) {
            match run {
                Run::Han(s) => self.segment_han(s, &mut out),
                Run::Alnum(s) => out.push(s.to_string()),
                Run::Punct(_) => {}
            }
        }
        out
    }

    /// Max-probability DP over the word DAG of a pure-Han span, with the
    /// HMM pass over unknown single-char stretches.
    fn segment_han(&self, s: &str, out: &mut Vec<String>) {
        let chars: Vec<char> = s.chars().collect();
        let n = chars.len();
        if n == 0 {
            return;
        }
        // route[i] = (best score of chars[i..], end index of first word).
        let mut route: Vec<(f64, usize)> = vec![(0.0, 0); n + 1];
        for i in (0..n).rev() {
            let single: String = chars[i..i + 1].iter().collect();
            let mut best = (self.dict.log_prob(&single) + route[i + 1].0, i + 1);
            for (end, _) in self.dict.matches_at(&chars, i) {
                if end == i + 1 {
                    continue; // already considered as the single-char edge
                }
                let word: String = chars[i..end].iter().collect();
                let score = self.dict.log_prob(&word) + route[end].0;
                if score > best.0 {
                    best = (score, end);
                }
            }
            route[i] = best;
        }

        // Walk the best path, buffering unknown single chars for the HMM.
        let mut i = 0usize;
        let mut oov_start: Option<usize> = None;
        while i < n {
            let end = route[i].1;
            let word: String = chars[i..end].iter().collect();
            let is_unknown_single = end == i + 1 && !self.dict.contains(&word);
            if is_unknown_single {
                if oov_start.is_none() {
                    oov_start = Some(i);
                }
            } else {
                self.flush_oov(&chars, oov_start.take(), i, out);
                out.push(word);
            }
            i = end;
        }
        self.flush_oov(&chars, oov_start, n, out);
    }

    fn flush_oov(&self, chars: &[char], start: Option<usize>, end: usize, out: &mut Vec<String>) {
        let Some(start) = start else { return };
        if end <= start {
            return;
        }
        let span = &chars[start..end];
        if span.len() == 1 || !self.use_hmm {
            for &c in span {
                out.push(c.to_string());
            }
        } else {
            out.extend(self.hmm.cut(span));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::PosTag;
    use proptest::prelude::*;

    fn demo_dict() -> Dictionary {
        let mut d = Dictionary::base();
        for (w, f) in [
            ("蚂蚁", 500),
            ("金服", 200),
            ("战略官", 150),
            ("战略", 300),
            ("官", 100),
            ("演员", 900),
            ("歌手", 800),
            ("香港", 700),
            ("电影", 900),
            ("金像奖", 120),
            ("最佳", 300),
            ("男主角", 250),
        ] {
            d.add_word(w, f, PosTag::Noun);
        }
        d
    }

    #[test]
    fn segments_figure3_bracket_compound() {
        // Paper Fig. 3: 蚂蚁金服首席战略官 → {蚂蚁, 金服, 首席, 战略官}
        let seg = Segmenter::new(demo_dict());
        assert_eq!(
            seg.segment("蚂蚁金服首席战略官"),
            vec!["蚂蚁", "金服", "首席", "战略官"]
        );
    }

    #[test]
    fn longer_dictionary_words_beat_char_splits() {
        let seg = Segmenter::new(demo_dict());
        assert_eq!(seg.segment("香港演员"), vec!["香港", "演员"]);
    }

    #[test]
    fn mixed_script_keeps_ascii_atomic() {
        let seg = Segmenter::new(demo_dict());
        let toks = seg.segment("刘德华Andy是演员");
        assert!(toks.contains(&"Andy".to_string()));
        assert!(toks.contains(&"演员".to_string()));
    }

    #[test]
    fn words_drops_punctuation() {
        let seg = Segmenter::new(demo_dict());
        let toks = seg.words("演员，歌手。");
        assert_eq!(toks, vec!["演员", "歌手"]);
    }

    #[test]
    fn hmm_recovers_oov_person_name() {
        // 赵小阳 is not in the dictionary: the HMM pass should not leave it
        // as three singles (default model yields 2+1 split; a trained HMM
        // keeps it whole — see hmm::tests).
        let seg = Segmenter::new(demo_dict());
        let toks = seg.segment("赵小阳是演员");
        assert!(toks.concat() == "赵小阳是演员");
        assert!(toks
            .iter()
            .any(|t| t.chars().count() >= 2 && t.contains('赵')));
    }

    #[test]
    fn without_hmm_unknowns_stay_single() {
        let seg = Segmenter::new(demo_dict()).without_hmm();
        let toks = seg.segment("赵小阳");
        assert_eq!(toks, vec!["赵", "小", "阳"]);
    }

    #[test]
    fn empty_and_punct_only_inputs() {
        let seg = Segmenter::new(demo_dict());
        assert!(seg.segment("").is_empty());
        assert_eq!(seg.segment("，。"), vec!["，。"]);
        assert!(seg.words("，。").is_empty());
    }

    #[test]
    fn tagged_segmentation_uses_dictionary_and_shape() {
        let seg = Segmenter::new(demo_dict());
        let tagged = seg.segment_tagged("演员出生于临江市。");
        let get = |w: &str| {
            tagged
                .iter()
                .find(|(t, _)| t == w)
                .map(|(_, p)| *p)
                .unwrap_or_else(|| panic!("token {w} missing from {tagged:?}"))
        };
        assert_eq!(get("演员"), crate::pos::PosTag::Noun);
        assert_eq!(get("出生于"), crate::pos::PosTag::Verb);
        // The OOV place name region produces at least one PlaceName-tagged
        // token via the shape heuristic (exact split depends on the HMM).
        assert!(tagged
            .iter()
            .any(|(_, p)| *p == crate::pos::PosTag::PlaceName));
        // Punctuation is tagged Other.
        assert_eq!(get("。"), crate::pos::PosTag::Other);
    }

    proptest! {
        /// Segmentation partitions the input text exactly.
        #[test]
        fn segmentation_is_a_partition(text in "[一-龥a-z0-9，。]{0,30}") {
            let seg = Segmenter::new(demo_dict());
            let toks = seg.segment(&text);
            prop_assert_eq!(toks.concat(), text);
        }

        /// No token is empty and Han tokens never contain punctuation.
        #[test]
        fn tokens_are_clean(text in "[一-龥]{0,25}") {
            let seg = Segmenter::new(demo_dict());
            for t in seg.segment(&text) {
                prop_assert!(!t.is_empty());
            }
        }
    }
}
