//! Pointwise mutual information between adjacent words.
//!
//! The separation algorithm (paper §II, Fig. 3) compares `PMI(x_{i-1}, x_i)`
//! with `PMI(x_i, x_{i+1})` to decide which neighbouring words of a bracket
//! compound belong to the same constituent: collocations *inside* a
//! multi-word unit (蚂蚁⊕金服) score higher than pairs that merely happen to
//! be adjacent (金服, 首席).
//!
//! ```text
//! PMI(a, b) = ln  p(a, b) / ( p(a) · p(b) )
//! ```
//!
//! with add-α smoothing on the bigram count so unseen pairs are defined and
//! strongly negative.

use crate::ngram::NgramCounter;

/// PMI model over corpus n-gram counts.
#[derive(Debug, Clone)]
pub struct PmiModel {
    counts: NgramCounter,
    /// Add-α smoothing mass given to unseen bigrams.
    alpha: f64,
}

impl PmiModel {
    /// Wraps existing n-gram counts with the default smoothing (α = 0.1).
    pub fn new(counts: NgramCounter) -> Self {
        PmiModel { counts, alpha: 0.1 }
    }

    /// Overrides the smoothing constant.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing constant must be positive");
        self.alpha = alpha;
        self
    }

    /// Builds a model by observing an iterator of segmented sentences.
    pub fn from_sentences<S: AsRef<str>, I: IntoIterator<Item = Vec<S>>>(sentences: I) -> Self {
        let mut counts = NgramCounter::new();
        for s in sentences {
            counts.observe(&s);
        }
        PmiModel::new(counts)
    }

    /// Read-only access to the underlying counts.
    pub fn counts(&self) -> &NgramCounter {
        &self.counts
    }

    /// Mutable access (to fold in additional corpus).
    pub fn counts_mut(&mut self) -> &mut NgramCounter {
        &mut self.counts
    }

    /// Smoothed pointwise mutual information of the adjacent pair `(a, b)`.
    pub fn pmi(&self, a: &str, b: &str) -> f64 {
        let n_bi = (self.counts.total_bigrams() as f64).max(1.0);
        let n_uni = (self.counts.total_unigrams() as f64).max(1.0);
        let c_ab = self.counts.bigram(a, b) as f64 + self.alpha;
        let c_a = (self.counts.unigram(a) as f64).max(self.alpha);
        let c_b = (self.counts.unigram(b) as f64).max(self.alpha);
        let p_ab = c_ab / (n_bi + self.alpha * n_uni);
        let p_a = c_a / n_uni;
        let p_b = c_b / n_uni;
        (p_ab / (p_a * p_b)).ln()
    }

    /// Normalised PMI (Bouma 2009), clamped to [-1, 1]; useful for
    /// thresholding. The clamp is needed because the smoothed joint and the
    /// marginals use different normalizations, which can push the raw ratio
    /// slightly past the theoretical bound.
    pub fn npmi(&self, a: &str, b: &str) -> f64 {
        let n_bi = (self.counts.total_bigrams() as f64).max(1.0);
        let n_uni = (self.counts.total_unigrams() as f64).max(1.0);
        let c_ab = self.counts.bigram(a, b) as f64 + self.alpha;
        let p_ab = c_ab / (n_bi + self.alpha * n_uni);
        let denom = -(p_ab.ln());
        if denom <= 0.0 {
            return 1.0;
        }
        (self.pmi(a, b) / denom).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A small corpus where 蚂蚁+金服 always co-occur but 金服+首席 only once.
    fn demo_model() -> PmiModel {
        let sentences: Vec<Vec<&str>> = vec![
            vec!["蚂蚁", "金服", "首席", "战略官"],
            vec!["蚂蚁", "金服", "成立"],
            vec!["蚂蚁", "金服", "发布", "产品"],
            vec!["蚂蚁", "金服", "上市"],
            vec!["首席", "执行官", "讲话"],
            vec!["首席", "战略官", "上任"],
            vec!["战略官", "离职"],
        ];
        PmiModel::from_sentences(sentences)
    }

    #[test]
    fn collocation_scores_higher_than_chance_pair() {
        let m = demo_model();
        // Inside-unit pair vs. cross-boundary pair (paper's step-1 test).
        assert!(m.pmi("蚂蚁", "金服") > m.pmi("金服", "首席"));
        assert!(m.pmi("首席", "战略官") > m.pmi("金服", "首席"));
    }

    #[test]
    fn unseen_pair_is_strongly_negative() {
        let m = demo_model();
        assert!(m.pmi("蚂蚁", "离职") < m.pmi("蚂蚁", "金服"));
        assert!(m.pmi("蚂蚁", "离职") < 0.0);
    }

    #[test]
    fn npmi_is_bounded() {
        let m = demo_model();
        for (a, b) in [("蚂蚁", "金服"), ("金服", "首席"), ("蚂蚁", "离职")] {
            let v = m.npmi(a, b);
            assert!((-1.0001..=1.0001).contains(&v), "npmi({a},{b}) = {v}");
        }
    }

    #[test]
    fn alpha_must_be_positive() {
        let result =
            std::panic::catch_unwind(|| PmiModel::new(NgramCounter::new()).with_alpha(0.0));
        assert!(result.is_err());
    }

    proptest! {
        /// PMI is finite for any query over any small corpus.
        #[test]
        fn pmi_is_finite(seqs in proptest::collection::vec(
            proptest::collection::vec("[a-d]", 0..6), 0..8),
            a in "[a-e]", b in "[a-e]") {
            let mut counts = NgramCounter::new();
            for s in &seqs {
                counts.observe(s);
            }
            let m = PmiModel::new(counts);
            let v = m.pmi(&a, &b);
            prop_assert!(v.is_finite());
        }

        /// More co-occurrence (all else equal) never lowers PMI.
        #[test]
        fn pmi_monotone_in_cooccurrence(extra in 1usize..5) {
            let mut base = NgramCounter::new();
            base.observe(&["p", "q"]);
            base.observe(&["p", "x"]);
            base.observe(&["q", "x"]);
            let low = PmiModel::new(base.clone()).pmi("p", "q");
            for _ in 0..extra {
                base.observe(&["p", "q"]);
            }
            // Note: observing also raises unigram counts; PMI still rises
            // because the joint grows linearly while marginals grow sublinearly
            // relative to the joint in this construction.
            let high = PmiModel::new(base).pmi("p", "q");
            prop_assert!(high >= low - 1e-9, "low={low} high={high}");
        }
    }
}
