//! Lexical-head and stem analysis for the syntax-based verification rules.
//!
//! Chinese noun compounds are right-headed: in 教育机构 (“educational
//! institution”) the head is 机构 and 教育 is a modifier. Verification rule
//! (2) of §III-C exploits this: *the stem of the lexical head of the
//! hypernym must not occur in a non-head position of the hyponym* —
//! `isA(教育机构, 教育)` is wrong because 教育 modifies the true head.

use crate::chars::char_len;
use crate::segment::Segmenter;

/// Agentive/derivational suffix characters stripped when computing a stem:
/// 科学家 → 科学, 战略官 → 战略.
pub const AGENTIVE_SUFFIXES: [char; 8] = ['家', '师', '员', '者', '手', '人', '官', '长'];

/// Head/stem analyzer over a word segmenter.
#[derive(Debug, Clone)]
pub struct HeadAnalyzer {
    seg: Segmenter,
}

impl HeadAnalyzer {
    /// Creates an analyzer that segments with `seg`.
    pub fn new(seg: Segmenter) -> Self {
        HeadAnalyzer { seg }
    }

    /// Read-only access to the segmenter.
    pub fn segmenter(&self) -> &Segmenter {
        &self.seg
    }

    /// The lexical head of a noun compound: its rightmost word.
    pub fn head_of(&self, compound: &str) -> String {
        self.seg
            .words(compound)
            .into_iter()
            .next_back()
            .unwrap_or_else(|| compound.to_string())
    }

    /// Stem of a word: the word with one trailing agentive suffix removed
    /// (only when at least two characters remain).
    pub fn stem_of(word: &str) -> String {
        let chars: Vec<char> = word.chars().collect();
        if chars.len() >= 3 {
            if let Some(&last) = chars.last() {
                if AGENTIVE_SUFFIXES.contains(&last) {
                    return chars[..chars.len() - 1].iter().collect();
                }
            }
        }
        word.to_string()
    }

    /// Rule (2) of §III-C: does the stem of the hypernym's head occur in a
    /// *non-head* position of the hyponym?
    ///
    /// Returns `true` when the isA relation should be filtered, e.g.
    /// `violates_head_stem_rule("教育机构", "教育")`.
    pub fn violates_head_stem_rule(&self, hyponym: &str, hypernym: &str) -> bool {
        if hyponym == hypernym {
            return false;
        }
        let hyper_head = self.head_of(hypernym);
        let stem = Self::stem_of(&hyper_head);
        if stem.is_empty() || char_len(&stem) < 2 {
            // Single-char stems are too ambiguous to fire a filter on.
            return false;
        }
        // Word-level test on the segmented hyponym: any non-final word
        // containing the stem is a modifier usage.
        let words = self.seg.words(hyponym);
        if words.len() >= 2 {
            let non_head = &words[..words.len() - 1];
            if non_head.iter().any(|w| w.contains(&stem)) {
                return true;
            }
            // The stem may straddle word boundaries inside the modifier
            // region; fall through to the char-level test.
        }
        // Char-level fallback: the stem occurs in the hyponym but the
        // hyponym does not *end* with it (ending = head position, fine).
        hyponym.contains(&stem) && !hyponym.ends_with(&stem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;
    use crate::pos::PosTag;

    fn analyzer() -> HeadAnalyzer {
        let mut d = Dictionary::base();
        for (w, f) in [
            ("教育", 500),
            ("机构", 400),
            ("教育机构", 120),
            ("大学", 600),
            ("大学生", 300),
            ("音乐", 500),
            ("音乐家", 200),
            ("战略官", 100),
            ("战略", 200),
        ] {
            d.add_word(w, f, PosTag::Noun);
        }
        HeadAnalyzer::new(Segmenter::new(d))
    }

    #[test]
    fn head_is_rightmost_word() {
        let a = analyzer();
        // 教育机构 is itself a dictionary word, so segmentation keeps it
        // whole and the head is the full compound — the char-level fallback
        // still catches the rule violation below.
        assert_eq!(a.head_of("首席战略官"), "战略官");
    }

    #[test]
    fn stem_strips_agentive_suffix() {
        assert_eq!(HeadAnalyzer::stem_of("科学家"), "科学");
        assert_eq!(HeadAnalyzer::stem_of("战略官"), "战略");
        assert_eq!(HeadAnalyzer::stem_of("教育"), "教育");
        // Two-char words never lose their suffix (歌手 stays 歌手).
        assert_eq!(HeadAnalyzer::stem_of("歌手"), "歌手");
    }

    #[test]
    fn paper_example_is_filtered() {
        // isA(教育机构, 教育) must violate the rule (paper §III-C).
        let a = analyzer();
        assert!(a.violates_head_stem_rule("教育机构", "教育"));
    }

    #[test]
    fn suffix_usage_is_not_filtered() {
        let a = analyzer();
        // 北京大学 isA 大学 — hypernym in head (suffix) position: keep.
        assert!(!a.violates_head_stem_rule("北京大学", "大学"));
    }

    #[test]
    fn modifier_usage_is_filtered() {
        let a = analyzer();
        // 大学生 isA 大学 — 大学 modifies 生: filter.
        assert!(a.violates_head_stem_rule("大学生", "大学"));
    }

    #[test]
    fn agentive_hypernym_stem_fires() {
        let a = analyzer();
        // isA(音乐教育机构, 音乐家): stem(音乐家) = 音乐 occurs as modifier.
        assert!(a.violates_head_stem_rule("音乐教育机构", "音乐家"));
    }

    #[test]
    fn identity_never_violates() {
        let a = analyzer();
        assert!(!a.violates_head_stem_rule("教育", "教育"));
    }

    #[test]
    fn unrelated_pair_never_violates() {
        let a = analyzer();
        assert!(!a.violates_head_stem_rule("教育机构", "机构"));
    }
}
