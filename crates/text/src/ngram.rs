//! Unigram/bigram counting over token streams.
//!
//! These counts feed two parts of CN-Probase: the PMI model behind the
//! separation algorithm (adjacent-word collocation strength) and the
//! corpus-frequency side of the NE-support statistic `s1(H)`.

use std::collections::HashMap;

/// Accumulates unigram and adjacent-bigram counts from token sequences.
#[derive(Debug, Clone, Default)]
pub struct NgramCounter {
    uni: HashMap<String, u64>,
    bi: HashMap<(String, String), u64>,
    total_uni: u64,
    total_bi: u64,
}

impl NgramCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one token sequence (a segmented sentence).
    pub fn observe<S: AsRef<str>>(&mut self, tokens: &[S]) {
        for t in tokens {
            *self.uni.entry(t.as_ref().to_string()).or_insert(0) += 1;
            self.total_uni += 1;
        }
        for w in tokens.windows(2) {
            let key = (w[0].as_ref().to_string(), w[1].as_ref().to_string());
            *self.bi.entry(key).or_insert(0) += 1;
            self.total_bi += 1;
        }
    }

    /// Unigram count of `token`.
    pub fn unigram(&self, token: &str) -> u64 {
        self.uni.get(token).copied().unwrap_or(0)
    }

    /// Adjacent-bigram count of `(a, b)`.
    pub fn bigram(&self, a: &str, b: &str) -> u64 {
        self.bi
            .get(&(a.to_string(), b.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Total observed unigram tokens.
    pub fn total_unigrams(&self) -> u64 {
        self.total_uni
    }

    /// Total observed bigram positions.
    pub fn total_bigrams(&self) -> u64 {
        self.total_bi
    }

    /// Number of distinct unigram types.
    pub fn vocab_size(&self) -> usize {
        self.uni.len()
    }

    /// Iterates `(token, count)` over unigrams in unspecified order.
    pub fn unigrams(&self) -> impl Iterator<Item = (&str, u64)> {
        self.uni.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &NgramCounter) {
        for (k, v) in &other.uni {
            *self.uni.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.bi {
            *self.bi.entry(k.clone()).or_insert(0) += v;
        }
        self.total_uni += other.total_uni;
        self.total_bi += other.total_bi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_unigrams_and_bigrams() {
        let mut c = NgramCounter::new();
        c.observe(&["蚂蚁", "金服", "蚂蚁"]);
        assert_eq!(c.unigram("蚂蚁"), 2);
        assert_eq!(c.unigram("金服"), 1);
        assert_eq!(c.bigram("蚂蚁", "金服"), 1);
        assert_eq!(c.bigram("金服", "蚂蚁"), 1);
        assert_eq!(c.bigram("金服", "金服"), 0);
        assert_eq!(c.total_unigrams(), 3);
        assert_eq!(c.total_bigrams(), 2);
    }

    #[test]
    fn empty_and_single_token_sequences() {
        let mut c = NgramCounter::new();
        c.observe::<&str>(&[]);
        c.observe(&["一"]);
        assert_eq!(c.total_unigrams(), 1);
        assert_eq!(c.total_bigrams(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = NgramCounter::new();
        a.observe(&["x", "y"]);
        let mut b = NgramCounter::new();
        b.observe(&["x", "y", "x"]);
        a.merge(&b);
        assert_eq!(a.unigram("x"), 3);
        assert_eq!(a.bigram("x", "y"), 2);
        assert_eq!(a.total_unigrams(), 5);
    }

    proptest! {
        /// Totals equal the sums of the individual counts.
        #[test]
        fn totals_are_consistent(seqs in proptest::collection::vec(
            proptest::collection::vec("[a-e]", 0..8), 0..10)) {
            let mut c = NgramCounter::new();
            for s in &seqs {
                c.observe(s);
            }
            let uni_sum: u64 = c.unigrams().map(|(_, v)| v).sum();
            prop_assert_eq!(uni_sum, c.total_unigrams());
            let expected_bi: u64 = seqs.iter().map(|s| s.len().saturating_sub(1) as u64).sum();
            prop_assert_eq!(c.total_bigrams(), expected_bi);
        }
    }
}
