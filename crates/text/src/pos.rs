//! Coarse part-of-speech tagging.
//!
//! CN-Probase needs POS information in two places: the Probase-Tran baseline
//! filters translated hypernyms that are not nouns, and the syntax-based
//! verification rules reason about noun compounds. A dictionary lookup with
//! suffix heuristics for unknown words is sufficient at that granularity
//! (this mirrors jieba's dictionary-tag approach without the full HMM
//! tagger).

use crate::dict::Dictionary;

/// Coarse part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Common noun (名词) — the only tag acceptable for hypernyms.
    Noun,
    /// Verb (动词).
    Verb,
    /// Adjective (形容词).
    Adj,
    /// Adverb (副词).
    Adverb,
    /// Pronoun (代词).
    Pronoun,
    /// Numeral (数词).
    Numeral,
    /// Measure word (量词).
    Measure,
    /// Grammatical particle (助词), e.g. 的 / 了.
    Particle,
    /// Preposition or conjunction (介词/连词).
    Function,
    /// Proper noun — person name (人名).
    PersonName,
    /// Proper noun — place name (地名).
    PlaceName,
    /// Proper noun — organization name (机构名).
    OrgName,
    /// Time word (时间词), e.g. 年 / 月份.
    Time,
    /// Unknown / other.
    Other,
}

impl PosTag {
    /// Nouns and proper nouns — the tags a hypernym candidate may carry.
    pub fn is_nominal(self) -> bool {
        matches!(
            self,
            PosTag::Noun | PosTag::PersonName | PosTag::PlaceName | PosTag::OrgName
        )
    }
}

/// Dictionary-backed POS tagger with suffix heuristics for unknown words.
#[derive(Debug, Clone)]
pub struct PosTagger {
    dict: Dictionary,
}

impl PosTagger {
    /// Creates a tagger over the given dictionary.
    pub fn new(dict: Dictionary) -> Self {
        PosTagger { dict }
    }

    /// Read-only access to the backing dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Tags one word. Known words use their dictionary tag; unknown words
    /// fall back to suffix heuristics, defaulting to `Noun` (the majority
    /// class for OOV encyclopedia vocabulary).
    pub fn tag(&self, word: &str) -> PosTag {
        if let Some(info) = self.dict.get(word) {
            if info.pos != PosTag::Other {
                return info.pos;
            }
        }
        Self::guess_by_shape(word)
    }

    /// Shape/suffix heuristics for unknown words.
    pub fn guess_by_shape(word: &str) -> PosTag {
        if word.is_empty() {
            return PosTag::Other;
        }
        if word.chars().all(|c| c.is_ascii_digit()) {
            return PosTag::Numeral;
        }
        let last = word.chars().last().unwrap();
        if crate::lexicons::PLACE_SUFFIX_CHARS.contains(&last) {
            return PosTag::PlaceName;
        }
        for suffix in crate::lexicons::ORG_SUFFIXES {
            if word.ends_with(suffix)
                && crate::chars::char_len(word) > crate::chars::char_len(suffix)
            {
                return PosTag::OrgName;
            }
        }
        if matches!(last, '年' | '月' | '日' | '时') {
            return PosTag::Time;
        }
        if matches!(last, '地' | '得') && crate::chars::char_len(word) == 1 {
            return PosTag::Particle;
        }
        PosTag::Noun
    }

    /// Tags a pre-segmented word sequence.
    pub fn tag_sequence<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> Vec<PosTag> {
        words.into_iter().map(|w| self.tag(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagger() -> PosTagger {
        PosTagger::new(Dictionary::base())
    }

    #[test]
    fn dictionary_tags_win() {
        let t = tagger();
        assert_eq!(t.tag("的"), PosTag::Particle);
        assert_eq!(t.tag("出生"), PosTag::Verb);
        assert_eq!(t.tag("非常"), PosTag::Adverb);
    }

    #[test]
    fn unknown_defaults_to_noun() {
        let t = tagger();
        assert_eq!(t.tag("战略官"), PosTag::Noun);
    }

    #[test]
    fn place_suffix_heuristic() {
        assert_eq!(PosTagger::guess_by_shape("临江市"), PosTag::PlaceName);
        assert_eq!(PosTagger::guess_by_shape("云梦县"), PosTag::PlaceName);
    }

    #[test]
    fn org_suffix_heuristic() {
        assert_eq!(PosTagger::guess_by_shape("星辰公司"), PosTag::OrgName);
        assert_eq!(PosTagger::guess_by_shape("南华大学"), PosTag::OrgName);
        // A bare suffix is not an organization name.
        assert_eq!(PosTagger::guess_by_shape("公司"), PosTag::Noun);
    }

    #[test]
    fn digits_are_numerals() {
        assert_eq!(PosTagger::guess_by_shape("1961"), PosTag::Numeral);
    }

    #[test]
    fn nominal_classification() {
        assert!(PosTag::Noun.is_nominal());
        assert!(PosTag::OrgName.is_nominal());
        assert!(!PosTag::Verb.is_nominal());
        assert!(!PosTag::Particle.is_nominal());
    }

    #[test]
    fn tag_sequence_matches_individual_tags() {
        let t = tagger();
        let tags = t.tag_sequence(["的", "出生"]);
        assert_eq!(tags, vec![PosTag::Particle, PosTag::Verb]);
    }
}
