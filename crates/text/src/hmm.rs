//! BMES hidden Markov model for out-of-vocabulary segmentation.
//!
//! The dictionary DAG cannot segment spans containing no dictionary words
//! (e.g. unseen person names). Like jieba, we run a character-level HMM over
//! such spans: states are **B**egin / **M**iddle / **E**nd / **S**ingle, and
//! the Viterbi path induces word boundaries.
//!
//! The default model encodes the robust prior that two-character words
//! dominate Chinese; [`HmmModel::train`] re-estimates all parameters from a
//! segmented corpus (the CN-Probase pipeline trains it on its own
//! bootstrapped segmentations, a form of distant supervision).

use std::collections::HashMap;

/// BMES state indices.
pub const B: usize = 0;
/// Middle state.
pub const M: usize = 1;
/// End state.
pub const E: usize = 2;
/// Single-character-word state.
pub const S: usize = 3;

const N_STATES: usize = 4;
const NEG_INF: f64 = f64::NEG_INFINITY;

/// Character-level BMES HMM with log-space parameters.
#[derive(Debug, Clone)]
pub struct HmmModel {
    /// log P(state at position 0). Only B and S are valid starts.
    start: [f64; N_STATES],
    /// log P(next_state | state).
    trans: [[f64; N_STATES]; N_STATES],
    /// log P(char | state); chars absent from the map use `emit_floor`.
    emit: [HashMap<char, f64>; N_STATES],
    /// Log-probability floor for unseen (state, char) pairs.
    emit_floor: f64,
}

impl Default for HmmModel {
    fn default() -> Self {
        // Hand-set priors: ~60% of OOV tokens are 2-char words, ~25% single
        // chars, the rest longer. Emissions are uniform until trained.
        let ln = |p: f64| p.ln();
        let mut trans = [[NEG_INF; N_STATES]; N_STATES];
        trans[B][M] = ln(0.15);
        trans[B][E] = ln(0.85);
        trans[M][M] = ln(0.30);
        trans[M][E] = ln(0.70);
        trans[E][B] = ln(0.60);
        trans[E][S] = ln(0.40);
        trans[S][B] = ln(0.55);
        trans[S][S] = ln(0.45);
        let mut start = [NEG_INF; N_STATES];
        start[B] = ln(0.70);
        start[S] = ln(0.30);
        HmmModel {
            start,
            trans,
            emit: Default::default(),
            emit_floor: ln(1.0 / 6000.0),
        }
    }
}

impl HmmModel {
    /// Trains all parameters from `(sentence, word_boundaries)` examples,
    /// where each example is a sequence of already-segmented words.
    ///
    /// Uses add-one smoothing on transitions and starts; emission floors are
    /// set to one count below the rarest observed emission.
    pub fn train<S1, I, J>(examples: I) -> Self
    where
        S1: AsRef<str>,
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = S1>,
    {
        let mut start_c = [1.0f64; N_STATES];
        let mut trans_c = [[0.0f64; N_STATES]; N_STATES];
        // Structural zeros: only BM, BE, MM, ME, EB, ES, SB, SS are legal.
        for (a, b) in [
            (B, M),
            (B, E),
            (M, M),
            (M, E),
            (E, B),
            (E, S),
            (S, B),
            (S, S),
        ] {
            trans_c[a][b] = 1.0;
        }
        let mut emit_c: [HashMap<char, f64>; N_STATES] = Default::default();
        let mut emit_tot = [0.0f64; N_STATES];

        for sentence in examples {
            let mut prev: Option<usize> = None;
            let mut first = true;
            for word in sentence {
                let chars: Vec<char> = word.as_ref().chars().collect();
                if chars.is_empty() {
                    continue;
                }
                let states = word_states(chars.len());
                for (i, (&c, &st)) in chars.iter().zip(states.iter()).enumerate() {
                    if first && i == 0 {
                        start_c[st] += 1.0;
                    }
                    if let Some(p) = prev {
                        if is_legal(p, st) {
                            trans_c[p][st] += 1.0;
                        }
                    }
                    *emit_c[st].entry(c).or_insert(0.0) += 1.0;
                    emit_tot[st] += 1.0;
                    prev = Some(st);
                }
                first = false;
            }
        }

        let start_tot: f64 = start_c[B] + start_c[S];
        let mut start = [NEG_INF; N_STATES];
        start[B] = (start_c[B] / start_tot).ln();
        start[S] = (start_c[S] / start_tot).ln();

        let mut trans = [[NEG_INF; N_STATES]; N_STATES];
        for a in 0..N_STATES {
            let row_tot: f64 = trans_c[a].iter().sum();
            if row_tot > 0.0 {
                for b in 0..N_STATES {
                    if trans_c[a][b] > 0.0 {
                        trans[a][b] = (trans_c[a][b] / row_tot).ln();
                    }
                }
            }
        }

        let mut emit: [HashMap<char, f64>; N_STATES] = Default::default();
        let mut min_p = 1.0f64;
        for st in 0..N_STATES {
            let tot = emit_tot[st].max(1.0);
            for (&c, &cnt) in &emit_c[st] {
                let p = cnt / tot;
                min_p = min_p.min(p);
                emit[st].insert(c, p.ln());
            }
        }
        HmmModel {
            start,
            trans,
            emit,
            emit_floor: (min_p * 0.5).max(1e-9).ln(),
        }
    }

    fn emit_lp(&self, st: usize, c: char) -> f64 {
        self.emit[st].get(&c).copied().unwrap_or(self.emit_floor)
    }

    /// Viterbi-decodes `chars` into the most likely BMES state sequence.
    pub fn viterbi(&self, chars: &[char]) -> Vec<usize> {
        if chars.is_empty() {
            return Vec::new();
        }
        let n = chars.len();
        let mut dp = vec![[NEG_INF; N_STATES]; n];
        let mut back = vec![[0usize; N_STATES]; n];
        for (st, cell) in dp[0].iter_mut().enumerate() {
            *cell = self.start[st] + self.emit_lp(st, chars[0]);
        }
        for i in 1..n {
            for st in 0..N_STATES {
                let e = self.emit_lp(st, chars[i]);
                let mut best = NEG_INF;
                let mut arg = 0usize;
                for (prev, (&prev_score, trans_row)) in
                    dp[i - 1].iter().zip(self.trans.iter()).enumerate()
                {
                    let score = prev_score + trans_row[st];
                    if score > best {
                        best = score;
                        arg = prev;
                    }
                }
                dp[i][st] = best + e;
                back[i][st] = arg;
            }
        }
        // A word cannot end mid-token: final state must be E or S.
        let mut last = if dp[n - 1][E] >= dp[n - 1][S] { E } else { S };
        if dp[n - 1][last] == NEG_INF {
            last = (0..N_STATES)
                .max_by(|&a, &b| dp[n - 1][a].partial_cmp(&dp[n - 1][b]).unwrap())
                .unwrap();
        }
        let mut states = vec![0usize; n];
        states[n - 1] = last;
        for i in (1..n).rev() {
            states[i - 1] = back[i][states[i]];
        }
        states
    }

    /// Segments a char span into words via Viterbi decoding.
    pub fn cut(&self, chars: &[char]) -> Vec<String> {
        let states = self.viterbi(chars);
        let mut words = Vec::new();
        let mut cur = String::new();
        for (&c, &st) in chars.iter().zip(states.iter()) {
            cur.push(c);
            if st == E || st == S {
                words.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            words.push(cur);
        }
        words
    }
}

/// BMES states for a word of length `n`.
fn word_states(n: usize) -> Vec<usize> {
    match n {
        0 => Vec::new(),
        1 => vec![S],
        _ => {
            let mut v = vec![B];
            v.extend(std::iter::repeat(M).take(n - 2));
            v.push(E);
            v
        }
    }
}

fn is_legal(a: usize, b: usize) -> bool {
    matches!(
        (a, b),
        (B, M) | (B, E) | (M, M) | (M, E) | (E, B) | (E, S) | (S, B) | (S, S)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn word_states_shapes() {
        assert_eq!(word_states(1), vec![S]);
        assert_eq!(word_states(2), vec![B, E]);
        assert_eq!(word_states(4), vec![B, M, M, E]);
    }

    #[test]
    fn default_model_prefers_two_char_words() {
        let m = HmmModel::default();
        let chars: Vec<char> = "阿里巴巴".chars().collect();
        let words = m.cut(&chars);
        assert_eq!(words, vec!["阿里", "巴巴"]);
    }

    #[test]
    fn cut_covers_input_exactly() {
        let m = HmmModel::default();
        let text = "王小明李大龙";
        let chars: Vec<char> = text.chars().collect();
        let rejoined: String = m.cut(&chars).concat();
        assert_eq!(rejoined, text);
    }

    #[test]
    fn trained_model_learns_three_char_names() {
        // Train on a corpus where 3-char person names are the norm.
        let corpus: Vec<Vec<&str>> = vec![
            vec!["王小明", "是", "演员"],
            vec!["李大龙", "是", "歌手"],
            vec!["张文博", "是", "作家"],
            vec!["刘天昊", "是", "导演"],
            vec!["陈雨晨", "是", "医生"],
            vec!["杨志远", "是", "教师"],
        ];
        let m = HmmModel::train(corpus.iter().map(|s| s.iter().copied()));
        let chars: Vec<char> = "赵小阳".chars().collect();
        let words = m.cut(&chars);
        assert_eq!(
            words,
            vec!["赵小阳"],
            "trained HMM should keep 3-char names whole"
        );
    }

    #[test]
    fn viterbi_ends_in_e_or_s() {
        let m = HmmModel::default();
        for text in ["中", "中文", "中文分", "中文分词器"] {
            let chars: Vec<char> = text.chars().collect();
            let states = m.viterbi(&chars);
            let last = *states.last().unwrap();
            assert!(last == E || last == S, "text {text} ended in state {last}");
        }
    }

    #[test]
    fn empty_input() {
        let m = HmmModel::default();
        assert!(m.viterbi(&[]).is_empty());
        assert!(m.cut(&[]).is_empty());
    }

    proptest! {
        /// cut() must partition the input: concatenation equals the original,
        /// and no word is empty.
        #[test]
        fn cut_is_a_partition(text in "[一-龥]{1,20}") {
            let m = HmmModel::default();
            let chars: Vec<char> = text.chars().collect();
            let words = m.cut(&chars);
            prop_assert!(words.iter().all(|w| !w.is_empty()));
            prop_assert_eq!(words.concat(), text);
        }

        /// State sequences obey BMES grammar (B/M followed by M/E; E/S followed by B/S).
        #[test]
        fn viterbi_states_are_grammatical(text in "[一-龥]{2,15}") {
            let m = HmmModel::default();
            let chars: Vec<char> = text.chars().collect();
            let states = m.viterbi(&chars);
            for w in states.windows(2) {
                prop_assert!(is_legal(w[0], w[1]), "illegal transition {:?}", w);
            }
        }
    }
}
