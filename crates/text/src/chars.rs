//! Character-class utilities for Chinese text.
//!
//! Chinese has no word spaces, so tokenization decisions start at the
//! character level: which characters are Han ideographs (candidates for
//! dictionary words), which are punctuation (hard segment boundaries), and
//! which are Latin/digit runs (kept as single tokens).

/// Returns `true` for characters in the main CJK unified ideograph blocks.
pub fn is_han(c: char) -> bool {
    matches!(c,
        '\u{4E00}'..='\u{9FFF}'        // CJK Unified Ideographs
        | '\u{3400}'..='\u{4DBF}'      // Extension A
        | '\u{F900}'..='\u{FAFF}'      // Compatibility Ideographs
    )
}

/// Returns `true` for CJK and general punctuation that terminates a segment.
pub fn is_punct(c: char) -> bool {
    matches!(
        c,
        '，' | '。'
            | '、'
            | '；'
            | '：'
            | '？'
            | '！'
            | '（'
            | '）'
            | '《'
            | '》'
            | '“'
            | '”'
            | '‘'
            | '’'
            | '—'
            | '…'
            | '·'
            | '【'
            | '】'
            | '「'
            | '」'
    ) || c.is_ascii_punctuation()
        || c.is_whitespace()
}

/// Returns `true` for ASCII alphanumeric characters (kept as atomic runs).
pub fn is_alnum(c: char) -> bool {
    c.is_ascii_alphanumeric()
}

/// A maximal run of characters sharing one coarse class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Run<'a> {
    /// A run of Han ideographs, to be segmented by the dictionary DAG.
    Han(&'a str),
    /// A run of ASCII letters/digits, kept as one token (e.g. `iPhone`, `63KG`).
    Alnum(&'a str),
    /// A run of punctuation / whitespace; a hard boundary.
    Punct(&'a str),
}

/// Splits text into maximal runs of one character class.
///
/// This is the pre-pass of the segmenter: dictionary segmentation only ever
/// happens inside a single [`Run::Han`].
pub fn class_runs(text: &str) -> Vec<Run<'_>> {
    #[derive(PartialEq, Clone, Copy)]
    enum Class {
        Han,
        Alnum,
        Punct,
    }
    fn class_of(c: char) -> Class {
        if is_han(c) {
            Class::Han
        } else if is_alnum(c) {
            Class::Alnum
        } else {
            Class::Punct
        }
    }

    let mut runs = Vec::new();
    let mut start = 0usize;
    let mut cur: Option<Class> = None;
    for (idx, ch) in text.char_indices() {
        let cl = class_of(ch);
        match cur {
            None => {
                cur = Some(cl);
                start = idx;
            }
            Some(prev) if prev == cl => {}
            Some(prev) => {
                runs.push(make_run(prev, &text[start..idx]));
                cur = Some(cl);
                start = idx;
            }
        }
    }
    if let Some(prev) = cur {
        runs.push(make_run(prev, &text[start..]));
    }
    return runs;

    fn make_run(class: Class, s: &str) -> Run<'_> {
        match class {
            Class::Han => Run::Han(s),
            Class::Alnum => Run::Alnum(s),
            Class::Punct => Run::Punct(s),
        }
    }
}

/// Number of `char`s in a string (CJK-safe length).
pub fn char_len(s: &str) -> usize {
    s.chars().count()
}

/// Substring by `char` offsets (inclusive start, exclusive end).
///
/// Panics if the offsets are out of range or reversed, mirroring slice
/// indexing semantics.
pub fn char_slice(s: &str, start: usize, end: usize) -> &str {
    assert!(start <= end, "char_slice: start {start} > end {end}");
    let mut iter = s.char_indices();
    let byte_start = iter.nth(start).map(|(b, _)| b).unwrap_or_else(|| s.len());
    if start == end {
        return &s[byte_start..byte_start];
    }
    let byte_end = s.char_indices().nth(end).map(|(b, _)| b).unwrap_or(s.len());
    &s[byte_start..byte_end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn han_detection() {
        assert!(is_han('中'));
        assert!(is_han('龙'));
        assert!(!is_han('a'));
        assert!(!is_han('，'));
        assert!(!is_han('1'));
    }

    #[test]
    fn punct_detection() {
        assert!(is_punct('，'));
        assert!(is_punct('。'));
        assert!(is_punct('('));
        assert!(is_punct(' '));
        assert!(!is_punct('中'));
    }

    #[test]
    fn runs_split_mixed_text() {
        let runs = class_runs("刘德华Andy，1961年");
        assert_eq!(
            runs,
            vec![
                Run::Han("刘德华"),
                Run::Alnum("Andy"),
                Run::Punct("，"),
                Run::Alnum("1961"),
                Run::Han("年"),
            ]
        );
    }

    #[test]
    fn runs_empty_input() {
        assert!(class_runs("").is_empty());
    }

    #[test]
    fn runs_single_class() {
        assert_eq!(class_runs("测试文本"), vec![Run::Han("测试文本")]);
    }

    #[test]
    fn char_len_counts_chars_not_bytes() {
        assert_eq!(char_len("蚂蚁金服"), 4);
        assert_eq!("蚂蚁金服".len(), 12);
    }

    #[test]
    fn char_slice_cjk() {
        assert_eq!(char_slice("蚂蚁金服首席", 2, 4), "金服");
        assert_eq!(char_slice("蚂蚁", 0, 2), "蚂蚁");
        assert_eq!(char_slice("蚂蚁", 1, 1), "");
        assert_eq!(char_slice("蚂蚁", 2, 2), "");
    }
}
