//! Line-based dump format (the CN-DBpedia-dump stand-in).
//!
//! The real pipeline consumes a CN-DBpedia dump file; ours reads/writes the
//! same information in a simple tab-separated line format, one record block
//! per page:
//!
//! ```text
//! P<TAB>name<TAB>bracket            (bracket column empty when absent)
//! A<TAB>abstract text
//! I<TAB>predicate<TAB>value         (repeated)
//! T<TAB>tag1<TAB>tag2<TAB>…
//! L<TAB>alias1<TAB>alias2<TAB>…     (optional)
//! .                                 (record terminator)
//! ```
//!
//! Gold labels are *not* part of the dump — like the real dump, it carries
//! only observable page data. [`write_pages`]/[`read_pages`] round-trip the
//! page list exactly.

use crate::page::{InfoboxTriple, Page};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from dump parsing.
#[derive(Debug)]
pub enum DumpError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Malformed(usize, String),
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::Io(e) => write!(f, "dump I/O error: {e}"),
            DumpError::Malformed(line, text) => {
                write!(f, "malformed dump line {line}: {text}")
            }
        }
    }
}

impl std::error::Error for DumpError {}

impl From<std::io::Error> for DumpError {
    fn from(e: std::io::Error) -> Self {
        DumpError::Io(e)
    }
}

/// Writes pages to `w` in dump format.
pub fn write_pages<W: Write>(pages: &[Page], w: W) -> Result<(), DumpError> {
    let mut out = BufWriter::new(w);
    for p in pages {
        writeln!(out, "P\t{}\t{}", p.name, p.bracket.as_deref().unwrap_or(""))?;
        writeln!(out, "A\t{}", p.abstract_text.replace(['\t', '\n'], " "))?;
        for t in &p.infobox {
            writeln!(out, "I\t{}\t{}", t.predicate, t.value)?;
        }
        if !p.tags.is_empty() {
            writeln!(out, "T\t{}", p.tags.join("\t"))?;
        }
        if !p.aliases.is_empty() {
            writeln!(out, "L\t{}", p.aliases.join("\t"))?;
        }
        writeln!(out, ".")?;
    }
    out.flush()?;
    Ok(())
}

/// Reads pages from `r` (inverse of [`write_pages`]).
pub fn read_pages<R: Read>(r: R) -> Result<Vec<Page>, DumpError> {
    let reader = BufReader::new(r);
    let mut pages = Vec::new();
    let mut current: Option<Page> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if line == "." {
            match current.take() {
                Some(p) => pages.push(p),
                None => return Err(DumpError::Malformed(lineno, line)),
            }
            continue;
        }
        let mut fields = line.split('\t');
        let kind = fields.next().unwrap_or("");
        match kind {
            "P" => {
                if current.is_some() {
                    return Err(DumpError::Malformed(lineno, "unterminated record".into()));
                }
                let name = fields
                    .next()
                    .ok_or_else(|| DumpError::Malformed(lineno, line.clone()))?
                    .to_string();
                let bracket = fields.next().unwrap_or("");
                current = Some(Page {
                    name,
                    bracket: if bracket.is_empty() {
                        None
                    } else {
                        Some(bracket.to_string())
                    },
                    ..Default::default()
                });
            }
            "A" => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| DumpError::Malformed(lineno, line.clone()))?;
                p.abstract_text = fields.collect::<Vec<_>>().join("\t");
            }
            "I" => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| DumpError::Malformed(lineno, line.clone()))?;
                let pred = fields
                    .next()
                    .ok_or_else(|| DumpError::Malformed(lineno, line.clone()))?;
                let value = fields.collect::<Vec<_>>().join("\t");
                p.infobox.push(InfoboxTriple::new(pred, value));
            }
            "T" => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| DumpError::Malformed(lineno, line.clone()))?;
                p.tags = fields.map(str::to_string).collect();
            }
            "L" => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| DumpError::Malformed(lineno, line.clone()))?;
                p.aliases = fields.map(str::to_string).collect();
            }
            _ => return Err(DumpError::Malformed(lineno, line.clone())),
        }
    }
    if current.is_some() {
        return Err(DumpError::Malformed(
            usize::MAX,
            "unterminated final record".into(),
        ));
    }
    Ok(pages)
}

/// Writes pages to a file.
pub fn write_to_file(pages: &[Page], path: &std::path::Path) -> Result<(), DumpError> {
    write_pages(pages, std::fs::File::create(path)?)
}

/// Reads pages from a file.
pub fn read_from_file(path: &std::path::Path) -> Result<Vec<Page>, DumpError> {
    read_pages(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, CorpusGenerator};

    #[test]
    fn roundtrip_generated_corpus() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(3)).generate();
        let mut buf = Vec::new();
        write_pages(&corpus.pages, &mut buf).expect("write");
        let loaded = read_pages(&buf[..]).expect("read");
        assert_eq!(corpus.pages.len(), loaded.len());
        for (a, b) in corpus.pages.iter().zip(&loaded) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_minimal_page() {
        let page = Page {
            name: "测试".into(),
            ..Default::default()
        };
        let mut buf = Vec::new();
        write_pages(std::slice::from_ref(&page), &mut buf).unwrap();
        let loaded = read_pages(&buf[..]).unwrap();
        assert_eq!(loaded, vec![page]);
    }

    #[test]
    fn malformed_orphan_line_rejected() {
        let input = "A\t孤儿摘要\n.\n";
        assert!(read_pages(input.as_bytes()).is_err());
    }

    #[test]
    fn unterminated_record_rejected() {
        let input = "P\t名字\t\nA\t摘要\n";
        assert!(read_pages(input.as_bytes()).is_err());
    }

    #[test]
    fn unknown_record_kind_rejected() {
        let input = "P\t名字\t\nX\t乱\n.\n";
        assert!(read_pages(input.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(5)).generate();
        let dir = std::env::temp_dir().join("cnp_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.tsv");
        write_to_file(&corpus.pages, &path).unwrap();
        let loaded = read_from_file(&path).unwrap();
        assert_eq!(corpus.pages, loaded);
        std::fs::remove_file(&path).ok();
    }
}
