//! Gold labels: the ground truth the generator records while it writes
//! pages.
//!
//! The paper estimates precision by manually labelling 2 000 sampled isA
//! pairs. Our corpus is synthetic, so the generator *knows* the truth and
//! records it here; evaluation then judges any extracted pair exactly. The
//! gold store answers three questions:
//!
//! * is `hypernym` correct for entity `key`? (entity isA judgement)
//! * is `(sub, sup)` a correct subconcept pair?
//! * is a string a legitimate concept at all? (ontology ∪ open modified
//!   concepts such as 首席战略官 or 香港男演员)

use std::collections::{HashMap, HashSet};

/// Ground-truth labels for one generated corpus.
#[derive(Debug, Clone, Default)]
pub struct GoldLabels {
    entity_isa: HashMap<String, HashSet<String>>,
    concept_isa: HashSet<(String, String)>,
    concepts: HashSet<String>,
}

impl GoldLabels {
    /// Creates an empty label store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a correct hypernym for an entity key.
    pub fn add_entity_hypernym(&mut self, entity_key: &str, hypernym: &str) {
        self.entity_isa
            .entry(entity_key.to_string())
            .or_default()
            .insert(hypernym.to_string());
        self.concepts.insert(hypernym.to_string());
    }

    /// Registers a correct subconcept→concept pair.
    pub fn add_concept_pair(&mut self, sub: &str, sup: &str) {
        self.concept_isa.insert((sub.to_string(), sup.to_string()));
        self.concepts.insert(sub.to_string());
        self.concepts.insert(sup.to_string());
    }

    /// Judges an entity-level isA pair.
    pub fn is_correct_entity_isa(&self, entity_key: &str, hypernym: &str) -> bool {
        self.entity_isa
            .get(entity_key)
            .is_some_and(|set| set.contains(hypernym))
    }

    /// Judges a concept-level isA pair.
    pub fn is_correct_concept_isa(&self, sub: &str, sup: &str) -> bool {
        self.concept_isa
            .contains(&(sub.to_string(), sup.to_string()))
    }

    /// Is `s` a legitimate concept (gold ontology or open modified concept)?
    pub fn is_concept(&self, s: &str) -> bool {
        self.concepts.contains(s)
    }

    /// Correct hypernym set of an entity key (empty when unknown).
    pub fn hypernyms_of(&self, entity_key: &str) -> Option<&HashSet<String>> {
        self.entity_isa.get(entity_key)
    }

    /// Number of labelled entities.
    pub fn num_entities(&self) -> usize {
        self.entity_isa.len()
    }

    /// Total gold entity-isA pairs.
    pub fn num_entity_pairs(&self) -> usize {
        self.entity_isa.values().map(|s| s.len()).sum()
    }

    /// Number of gold subconcept pairs.
    pub fn num_concept_pairs(&self) -> usize {
        self.concept_isa.len()
    }

    /// Iterates all labelled entity keys.
    pub fn entity_keys(&self) -> impl Iterator<Item = &str> {
        self.entity_isa.keys().map(|s| s.as_str())
    }

    /// Iterates gold concept pairs.
    pub fn concept_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.concept_isa
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_judgement() {
        let mut g = GoldLabels::new();
        g.add_entity_hypernym("刘德华（男演员）", "男演员");
        g.add_entity_hypernym("刘德华（男演员）", "演员");
        assert!(g.is_correct_entity_isa("刘德华（男演员）", "演员"));
        assert!(!g.is_correct_entity_isa("刘德华（男演员）", "歌手"));
        assert!(!g.is_correct_entity_isa("无名氏", "演员"));
        assert_eq!(g.num_entities(), 1);
        assert_eq!(g.num_entity_pairs(), 2);
    }

    #[test]
    fn concept_judgement() {
        let mut g = GoldLabels::new();
        g.add_concept_pair("男演员", "演员");
        assert!(g.is_correct_concept_isa("男演员", "演员"));
        assert!(!g.is_correct_concept_isa("演员", "男演员"));
        assert_eq!(g.num_concept_pairs(), 1);
    }

    #[test]
    fn concept_membership_tracks_both_kinds() {
        let mut g = GoldLabels::new();
        g.add_entity_hypernym("e", "首席战略官");
        g.add_concept_pair("首席战略官", "战略官");
        assert!(g.is_concept("首席战略官"));
        assert!(g.is_concept("战略官"));
        assert!(!g.is_concept("音乐"));
    }
}
